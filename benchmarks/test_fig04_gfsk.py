"""Bench: regenerate Fig. 4 (GFSK settling, random vs batched bits)."""

from __future__ import annotations

from repro.experiments import fig04_gfsk


def test_fig04_gfsk_settling(benchmark, report_sink):
    result = benchmark.pedantic(
        fig04_gfsk.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    random_fraction = result.measured(
        "stable-frequency fraction, random bits"
    )
    batched_fraction = result.measured(
        "stable-frequency fraction, 5-bit runs"
    )
    # Shape: batching must create substantially more stable tone time.
    assert batched_fraction > random_fraction * 1.5
    assert batched_fraction > 60.0
