"""Bench: regenerate Fig. 10 (median error vs stitched bandwidth).

Paper targets: 160 / 134 / 110 / 86 cm at 2 / 20 / 40 / 80 MHz -- error
decreasing monotonically and roughly halving across the sweep.
"""

from __future__ import annotations

from repro.experiments import fig10_bandwidth


def test_fig10_bandwidth_sweep(benchmark, report_sink):
    result = benchmark.pedantic(
        fig10_bandwidth.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    medians = [
        result.measured(f"BLoc median @ {label}")
        for label in ("2 MHz", "20 MHz", "40 MHz", "80 MHz")
    ]
    # Shape: wider stitched bandwidth must help substantially end to end,
    # and the sweep must trend downward (small non-monotonic jitter
    # between adjacent points is statistical).
    assert medians[-1] < medians[0] * 0.75
    assert medians[1] < medians[0] * 1.1
    assert medians[2] < medians[1] * 1.1
    assert medians[3] < medians[2] * 1.1
    ratio = result.measured("median ratio 2 MHz / 80 MHz")
    assert ratio > 1.3  # paper: 1.86
