"""Bench: regenerate Fig. 13 (error vs tag location: corners are worst).

Paper target: RMSE is "particularly high in the corner locations" due to
the flattening of sin(theta) near +-90 deg, with no other consistent
spatial pattern.
"""

from __future__ import annotations

from repro.experiments import fig13_location


def test_fig13_spatial_error_map(benchmark, report_sink):
    result = benchmark.pedantic(
        fig13_location.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    ratio = result.measured("corner / interior RMSE ratio")
    # Shape: corners are worse than the interior.
    assert ratio > 1.0
