"""Bench: ablations of BLoc's design choices (DESIGN.md Section 5).

Covers the entropy sign convention, the Eq. 18 weight sweep, the
peak-selection strategies and the Eq. 10 correction on/off comparison.
"""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_selection_strategies(benchmark, report_sink):
    result = benchmark.pedantic(
        ablations.run_selection_strategies,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    report_sink.append(result.format_report())
    score = result.measured("median, Eq. 18 score (BLoc)")
    shortest = result.measured("median, shortest-distance peak")
    assert score < shortest


def test_ablation_entropy_sign(benchmark, report_sink):
    result = benchmark.pedantic(
        ablations.run_entropy_sign, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    paper_sign = result.measured("median, b = +0.05 (paper, negentropy)")
    flipped = result.measured("median, b = -0.05 (flipped sign)")
    # Shape: the negentropy reading of the paper must not lose to the
    # flipped sign.
    assert paper_sign <= flipped * 1.05


def test_ablation_weight_sweep(benchmark, report_sink):
    result = benchmark.pedantic(
        ablations.run_score_weights, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    at_paper = result.measured("median, a = 0.1 (b = 0.05)")
    no_distance = result.measured("median, a = 0.0 (b = 0.05)")
    # Shape: the distance term carries real signal.
    assert at_paper < no_distance * 1.05


def test_ablation_correction_off(benchmark, report_sink):
    result = benchmark.pedantic(
        ablations.run_correction_off, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    factor = result.measured("degradation factor")
    # Shape: the Eq. 10 correction is load-bearing.
    assert factor > 1.5
