"""Bench: raw throughput of the pipeline's hot components.

Not a paper figure -- these timings put the figure-regeneration costs in
context and guard against performance regressions in the DSP kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ble.gfsk import GfskModulator
from repro.ble.localization import localization_pdu
from repro.ble.pdu import assemble_packet
from repro.core import BlocLocalizer, correct_phase_offsets
from repro.experiments.common import default_testbed, make_bloc
from repro.sim import ChannelMeasurementModel
from repro.utils.geometry2d import Point


@pytest.fixture(scope="module")
def observations():
    model = ChannelMeasurementModel(testbed=default_testbed(), seed=3)
    return model.measure(Point(0.5, 0.5))


def test_throughput_gfsk_modulation(benchmark):
    modulator = GfskModulator()
    pdu = localization_pdu(channel_index=5)
    packet = assemble_packet(pdu, access_address=0x5A3B9C71, channel_index=5)
    iq = benchmark(modulator.modulate, packet.bits)
    assert iq.size == packet.num_bits * modulator.samples_per_symbol


def test_throughput_channel_measurement(benchmark):
    model = ChannelMeasurementModel(testbed=default_testbed(), seed=4)
    obs = benchmark(model.measure, Point(-0.7, 0.9))
    assert obs.num_bands == 37


def test_throughput_phase_correction(benchmark, observations):
    corrected = benchmark(correct_phase_offsets, observations)
    assert corrected.alpha.shape == observations.tag_to_anchor.shape


def test_throughput_full_localization(benchmark, observations):
    localizer = make_bloc()
    result = benchmark.pedantic(
        localizer.locate,
        args=(observations,),
        kwargs={"keep_map": False},
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.position is not None
