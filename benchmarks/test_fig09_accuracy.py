"""Bench: regenerate Fig. 9 (accuracy CDFs; anchors and antennas sweeps).

Paper targets: BLoc 86 cm vs AoA 242 cm median (a 2.8x gap); 3 anchors
degrade BLoc mildly, 2 anchors significantly; 3 antennas degrade BLoc
minimally.
"""

from __future__ import annotations

from repro.experiments import fig09_accuracy


def test_fig09a_bloc_vs_aoa(benchmark, report_sink):
    result = benchmark.pedantic(
        fig09_accuracy.run_accuracy, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    bloc_median = result.measured("BLoc median")
    aoa_median = result.measured("AoA median")
    # Shape: BLoc beats the AoA baseline by a large factor and reaches
    # (near-)sub-metre accuracy.
    assert bloc_median < aoa_median / 2.0
    assert bloc_median < 120.0
    assert aoa_median > 150.0


def test_fig09b_anchor_sweep(benchmark, report_sink):
    result = benchmark.pedantic(
        fig09_accuracy.run_anchor_sweep,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    report_sink.append(result.format_report())
    bloc4 = result.measured("bloc median, 4 anchors")
    bloc3 = result.measured("bloc median, 3 anchors")
    bloc2 = result.measured("bloc median, 2 anchors")
    # Shape: monotone degradation, with 2 anchors clearly worst.  Our
    # simulated 4 -> 3 drop is steeper than the paper's 86 -> 91.5 cm
    # (see EXPERIMENTS.md); the ordering is the asserted shape.
    assert bloc4 <= bloc3 * 1.15  # allow statistical slack
    assert bloc2 > bloc4
    aoa4 = result.measured("aoa median, 4 anchors")
    assert bloc3 < aoa4  # even 3-anchor BLoc beats the 4-anchor baseline


def test_fig09c_antenna_sweep(benchmark, report_sink):
    result = benchmark.pedantic(
        fig09_accuracy.run_antenna_sweep,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    report_sink.append(result.format_report())
    bloc4 = result.measured("bloc median, 4 antennas")
    bloc3 = result.measured("bloc median, 3 antennas")
    # Shape: the antenna reduction has a minimal effect on BLoc --
    # bandwidth compensates (paper: 86 -> 90 cm).
    assert bloc3 < bloc4 * 1.5
