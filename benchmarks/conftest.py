"""Shared fixtures for the figure-reproduction benchmarks.

The expensive artefact -- the measured evaluation dataset -- is cached by
``repro.experiments.common`` at module level, so every benchmark in one
pytest session reuses the same dataset and the same per-scheme evaluation
runs, exactly like the paper evaluates every scheme on one recorded
dataset.

Scale knobs: ``REPRO_EVAL_POINTS`` (default 60, paper scale 1700) and
``REPRO_GRID_RES`` (default 0.06 m).
"""

from __future__ import annotations

import os

import pytest


def pytest_configure(config):
    """Opt-in stage-level tracing for benchmark runs.

    Setting ``REPRO_BENCH_TRACE`` (to a path, or to ``1`` for summary
    only) installs a live observer for the whole pytest session; at
    session end the per-stage span timing breakdown is printed and, when
    the value looks like a path, the full NDJSON export is written there.
    Unset (the default) nothing is installed and the benchmarks run with
    the zero-overhead no-op observer.
    """
    target = os.environ.get("REPRO_BENCH_TRACE")
    profile = os.environ.get("REPRO_BENCH_PROFILE")
    if not target and not profile:
        return
    from repro.obs import Observability, install

    observer = Observability(enabled=True).preregister()
    config._repro_observer = observer
    config._repro_trace_path = (
        target if target and target != "1" else None
    )
    install(observer)
    if profile:
        from repro.obs import SamplingProfiler

        profiler = SamplingProfiler(observer.tracer)
        profiler.start()
        config._repro_profiler = profiler
        config._repro_profile_prefix = profile


def pytest_unconfigure(config):
    observer = getattr(config, "_repro_observer", None)
    if observer is None:
        return
    import sys

    from repro.obs import export_ndjson, install, summary

    profiler = getattr(config, "_repro_profiler", None)
    if profiler is not None:
        from repro.obs import export_folded, export_speedscope

        profiler.stop()
        prefix = config._repro_profile_prefix
        export_folded(f"{prefix}.folded", profiler.report)
        export_speedscope(f"{prefix}.speedscope.json", profiler.report)
        sys.__stdout__.write(
            f"\n[obs] profiler: {profiler.report.samples_total} samples "
            f"-> {prefix}.folded, {prefix}.speedscope.json\n"
        )
    install(None)
    path = config._repro_trace_path
    if path:
        export_ndjson(path, observer)
        sys.__stdout__.write(f"\n[obs] NDJSON trace written to {path}\n")
    sys.__stdout__.write(
        "\n[obs] benchmark stage breakdown\n" + summary(observer) + "\n"
    )
    sys.__stdout__.flush()


def pytest_report_header(config):
    from repro.experiments.common import eval_points, grid_resolution

    return (
        f"BLoc reproduction benches: {eval_points()} placements, "
        f"{grid_resolution() * 100:.0f} cm grid "
        "(REPRO_EVAL_POINTS / REPRO_GRID_RES to change)"
    )


@pytest.fixture(scope="session")
def report_sink():
    """Collects experiment reports; emits them at session end.

    The emission bypasses pytest's output capture (teardown prints are
    otherwise swallowed on success) and is also written to
    ``bench_report.txt`` next to the invocation directory.
    """
    import sys
    from pathlib import Path

    reports = []
    yield reports
    if not reports:
        return
    lines = [
        "",
        "=" * 72,
        "PAPER vs MEASURED (see EXPERIMENTS.md for the full record)",
        "=" * 72,
    ]
    for report in reports:
        lines.append(report)
        lines.append("-" * 72)
    text = "\n".join(lines)
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    Path("bench_report.txt").write_text(text + "\n", encoding="utf-8")
