"""Shared fixtures for the figure-reproduction benchmarks.

The expensive artefact -- the measured evaluation dataset -- is cached by
``repro.experiments.common`` at module level, so every benchmark in one
pytest session reuses the same dataset and the same per-scheme evaluation
runs, exactly like the paper evaluates every scheme on one recorded
dataset.

Scale knobs: ``REPRO_EVAL_POINTS`` (default 60, paper scale 1700) and
``REPRO_GRID_RES`` (default 0.06 m).
"""

from __future__ import annotations

import pytest


def pytest_report_header(config):
    from repro.experiments.common import eval_points, grid_resolution

    return (
        f"BLoc reproduction benches: {eval_points()} placements, "
        f"{grid_resolution() * 100:.0f} cm grid "
        "(REPRO_EVAL_POINTS / REPRO_GRID_RES to change)"
    )


@pytest.fixture(scope="session")
def report_sink():
    """Collects experiment reports; emits them at session end.

    The emission bypasses pytest's output capture (teardown prints are
    otherwise swallowed on success) and is also written to
    ``bench_report.txt`` next to the invocation directory.
    """
    import sys
    from pathlib import Path

    reports = []
    yield reports
    if not reports:
        return
    lines = [
        "",
        "=" * 72,
        "PAPER vs MEASURED (see EXPERIMENTS.md for the full record)",
        "=" * 72,
    ]
    for report in reports:
        lines.append(report)
        lines.append("-" * 72)
    text = "\n".join(lines)
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()
    Path("bench_report.txt").write_text(text + "\n", encoding="utf-8")
