"""Bench: regenerate Fig. 12 (multipath rejection vs shortest distance).

Paper target: replacing the Eq. 18 score with naive shortest-distance
peak picking roughly doubles the median error (86 -> 195 cm).
"""

from __future__ import annotations

from repro.experiments import fig12_multipath


def test_fig12_multipath_rejection(benchmark, report_sink):
    result = benchmark.pedantic(
        fig12_multipath.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    bloc_median = result.measured("BLoc median")
    shortest_median = result.measured("shortest-distance median")
    # Shape: the multipath-rejection score must be a large win.
    assert shortest_median > bloc_median * 1.5
    factor = result.measured("median degradation factor")
    assert factor > 1.5  # paper: 2.27
