"""Bench: ablations of the extension modules (DESIGN.md Section 4b).

Covers multi-round fusion (accuracy vs rounds), the MUSIC vs Bartlett
angle estimator inside the AoA baseline, and Wi-Fi collision losses vs
adaptive blacklisting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import AoaLocalizer
from repro.core import BlocConfig, BlocLocalizer
from repro.core.fusion import locate_fused
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    ExperimentRow,
    default_dataset,
    default_testbed,
    grid_resolution,
)
from repro.sim import (
    ChannelMeasurementModel,
    InterferedMeasurementModel,
    WifiNetwork,
    blacklist_map,
    evaluate,
    sample_tag_positions,
)


def run_fusion_sweep(num_positions: int = 16) -> ExperimentResult:
    """Median error vs number of fused measurement rounds."""
    testbed = default_testbed()
    model = ChannelMeasurementModel(testbed=testbed, seed=DEFAULT_SEED)
    localizer = BlocLocalizer(
        config=BlocConfig(grid_resolution_m=grid_resolution())
    )
    positions = sample_tag_positions(testbed, num_positions, seed=99)
    result = ExperimentResult(
        experiment_id="ablation-fusion",
        title="Multi-round fusion: accuracy vs fused rounds",
    )
    for num_rounds in (1, 2, 4):
        errors = []
        for t_index, tag in enumerate(positions):
            rounds = [
                model.measure(tag, round_index=100 * t_index + r)
                for r in range(num_rounds)
            ]
            fix = locate_fused(localizer, rounds)
            errors.append((fix.position - tag).norm())
        result.rows.append(
            ExperimentRow(
                f"median, {num_rounds} fused round(s)",
                100 * float(np.median(errors)),
                None,
            )
        )
    return result


def run_music_vs_bartlett() -> ExperimentResult:
    """AoA baseline with MUSIC vs the paper's Bartlett beamformer."""
    dataset = default_dataset()
    result = ExperimentResult(
        experiment_id="ablation-music",
        title="AoA baseline: MUSIC vs Bartlett angle spectra",
    )
    for method in ("bartlett", "music"):
        run = evaluate(
            AoaLocalizer(spectrum_method=method), dataset, label=method
        )
        result.rows.append(
            ExperimentRow(
                f"AoA median, {method}",
                100 * run.stats().median_m(),
                None,
            )
        )
    return result


def run_interference_modes(num_positions: int = 16) -> ExperimentResult:
    """Collision losses vs adaptive blacklisting under busy Wi-Fi."""
    testbed = default_testbed()
    networks = [WifiNetwork(channel=6, duty_cycle=0.8)]
    localizer = BlocLocalizer(
        config=BlocConfig(grid_resolution_m=grid_resolution())
    )
    positions = sample_tag_positions(testbed, num_positions, seed=98)
    base = ChannelMeasurementModel(testbed=testbed, seed=DEFAULT_SEED)
    collided = InterferedMeasurementModel(
        base=base, networks=networks, seed=1
    )
    adaptive = ChannelMeasurementModel(
        testbed=testbed, seed=DEFAULT_SEED, channel_map=blacklist_map(networks)
    )
    result = ExperimentResult(
        experiment_id="ablation-interference",
        title="Wi-Fi interference: collisions vs adaptive blacklisting",
    )
    for label, model in (
        ("no Wi-Fi", base),
        ("collisions (ch 6, 80% duty)", collided),
        ("adaptive blacklist", adaptive),
    ):
        errors = []
        for t_index, tag in enumerate(positions):
            observations = model.measure(tag, round_index=t_index)
            fix = localizer.locate(observations, keep_map=False)
            errors.append((fix.position - tag).norm())
        result.rows.append(
            ExperimentRow(
                f"median, {label}", 100 * float(np.median(errors)), None
            )
        )
    return result


def test_ablation_fusion(benchmark, report_sink):
    result = benchmark.pedantic(
        run_fusion_sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    one = result.measured("median, 1 fused round(s)")
    four = result.measured("median, 4 fused round(s)")
    # Shape: fusing rounds must not hurt, and typically helps.
    assert four <= one * 1.1


def test_ablation_music_vs_bartlett(benchmark, report_sink):
    result = benchmark.pedantic(
        run_music_vs_bartlett, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    bartlett = result.measured("AoA median, bartlett")
    music = result.measured("AoA median, music")
    # Shape: both are AoA-only baselines; neither should collapse, and
    # both must stay clearly worse than BLoc's headline (sub-metre).
    assert bartlett > 80.0
    assert music > 80.0


def test_ablation_interference_modes(benchmark, report_sink):
    result = benchmark.pedantic(
        run_interference_modes, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    clean = result.measured("median, no Wi-Fi")
    collided = result.measured("median, collisions (ch 6, 80% duty)")
    adaptive = result.measured("median, adaptive blacklist")
    # Shape (Section 8.6): losing one Wi-Fi channel's worth of bands is
    # almost free, whether by collisions or by blacklisting.
    assert collided < clean * 2.0
    assert adaptive < clean * 2.0
