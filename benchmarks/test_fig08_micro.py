"""Bench: regenerate Fig. 8 (CSI stability, offset cancellation, profile)."""

from __future__ import annotations

from repro.experiments import fig08_micro


def test_fig08a_csi_stability(benchmark, report_sink):
    result = benchmark.pedantic(
        fig08_micro.run_csi_stability, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    worst_std = result.measured("worst per-band phase std over 9 repeats")
    # Shape: the paper's Fig. 8a shows visually constant phase over time.
    assert worst_std < 10.0


def test_fig08b_offset_cancellation(benchmark, report_sink):
    result = benchmark.pedantic(
        fig08_micro.run_offset_cancellation,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    report_sink.append(result.format_report())
    raw = result.measured("phase-increment spread, no correction")
    corrected = result.measured("phase-increment spread, BLoc correction")
    # Shape: correction turns random per-band phase into near-linear.
    assert corrected < raw / 3.0
    assert raw > 60.0


def test_fig08c_multipath_profile(benchmark, report_sink):
    result = benchmark.pedantic(
        fig08_micro.run_multipath_profile,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    report_sink.append(result.format_report())
    num_peaks = result.measured("candidate peaks in the combined profile")
    winner_error = result.measured("error of the best-scored peak")
    # Shape: multipath creates several candidates; scoring picks one in
    # the true peak's neighbourhood.
    assert num_peaks >= 2
    assert winner_error < 100.0
