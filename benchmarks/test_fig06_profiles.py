"""Bench: regenerate Fig. 6 (angle / hyperbola / joint likelihood views)."""

from __future__ import annotations

from repro.experiments import fig06_profiles


def test_fig06_likelihood_profiles(benchmark, report_sink):
    result = benchmark.pedantic(
        fig06_profiles.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    joint_error = result.measured("argmax error, joint map (c)")
    # Shape: the joint map localises; the ambiguous single views need not.
    assert joint_error < 150.0
