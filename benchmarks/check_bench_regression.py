"""Bench-regression guard: compare a fresh BENCH_localize.json to the
committed baseline and fail on a warm-path slowdown.

Raw seconds are not comparable across machines (CI runners vs the
laptop that committed the baseline) or across scenarios (CI shrinks the
grid via ``REPRO_GRID_RES``), so the guard checks two normalized
quantities:

* **warm/direct ratio** -- ``warm_s_per_fix / direct_s_per_fix``.  Both
  paths run in the same process on the same grid, so the ratio cancels
  machine speed and grid size; a warm-path regression (cache miss on
  the hot path, lost vectorisation) inflates it directly.
* **warm seconds per fix per grid point** -- only when the baseline and
  current scenario match exactly (same anchors/bands/grid points), as
  in a local re-run against the committed file.  Guarded by
  ``--absolute`` because wall-clock comparisons across different
  machines are meaningless.

Exit status 0 = within tolerance, 1 = regression, 2 = bad input.

Usage::

    python benchmarks/check_bench_regression.py /tmp/BENCH_localize.json
    python benchmarks/check_bench_regression.py current.json \
        --baseline BENCH_localize.json --tolerance 0.25 --absolute
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Scenario keys that must match for absolute timings to be comparable.
SCENARIO_KEYS = ("anchors", "antennas", "bands", "grid_points", "fixes")

#: Repository root (this script lives in ``benchmarks/``).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default committed baseline, relative to the repository root.
DEFAULT_BASELINE = REPO_ROOT / "BENCH_localize.json"

#: Default SLO spec carrying the [bench] tolerances.
DEFAULT_SPEC = REPO_ROOT / "slo.toml"

#: Fallback tolerance when no spec and no --tolerance is given.
FALLBACK_TOLERANCE = 0.25


def spec_tolerances(spec_path: Path):
    """``(tolerance, absolute_tolerance)`` from an SLO spec file.

    Returns ``(None, None)`` when the spec does not exist, so callers can
    fall back to :data:`FALLBACK_TOLERANCE`.  The spec is the single
    source of truth shared with ``python -m repro obs slo``.
    """
    if not spec_path.exists():
        return None, None
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.errors import ConfigurationError
    from repro.obs.slo import load_slo_spec

    try:
        spec = load_slo_spec(spec_path)
    except ConfigurationError as exc:
        raise ValueError(f"{spec_path}: {exc}")
    return spec.bench_tolerance, spec.bench_absolute_tolerance


def load_bench(path: Path) -> dict:
    """Load and shape-check one BENCH_localize.json payload."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: cannot read benchmark JSON: {exc}")
    if payload.get("benchmark") != "localize":
        raise ValueError(f"{path}: not a localize benchmark payload")
    cache = payload.get("steering_cache") or {}
    for key in ("warm_s_per_fix", "direct_s_per_fix"):
        value = cache.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"{path}: steering_cache.{key} missing or <= 0")
    return payload


def warm_ratio(payload: dict) -> float:
    """Warm-path cost as a fraction of the direct path (lower = better)."""
    cache = payload["steering_cache"]
    return cache["warm_s_per_fix"] / cache["direct_s_per_fix"]


def scenarios_match(baseline: dict, current: dict) -> bool:
    """Whether absolute per-fix timings are comparable at all."""
    b = baseline.get("scenario") or {}
    c = current.get("scenario") or {}
    return all(b.get(k) == c.get(k) for k in SCENARIO_KEYS)


def check(
    baseline: dict,
    current: dict,
    tolerance: float,
    absolute: bool = False,
    absolute_tolerance: float = None,
) -> list:
    """All regressions found, as human-readable strings (empty = pass).

    ``absolute_tolerance`` bounds the absolute warm_s_per_fix comparison
    separately (it is noisier than the ratio); it defaults to
    ``tolerance``.
    """
    problems = []
    base_ratio = warm_ratio(baseline)
    cur_ratio = warm_ratio(current)
    limit = base_ratio * (1.0 + tolerance)
    if cur_ratio > limit:
        problems.append(
            f"warm/direct ratio regressed: {cur_ratio:.5f} > "
            f"{limit:.5f} (baseline {base_ratio:.5f} "
            f"+{tolerance * 100:.0f}% tolerance)"
        )
    if absolute:
        abs_tol = tolerance if absolute_tolerance is None else absolute_tolerance
        if not scenarios_match(baseline, current):
            problems.append(
                "--absolute requested but scenarios differ; regenerate "
                "the baseline with the same REPRO_* settings"
            )
        else:
            base_warm = baseline["steering_cache"]["warm_s_per_fix"]
            cur_warm = current["steering_cache"]["warm_s_per_fix"]
            if cur_warm > base_warm * (1.0 + abs_tol):
                problems.append(
                    f"warm_s_per_fix regressed: {cur_warm:.6f}s > "
                    f"{base_warm * (1.0 + abs_tol):.6f}s "
                    f"(baseline {base_warm:.6f}s "
                    f"+{abs_tol * 100:.0f}% tolerance)"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current", type=Path, help="freshly generated BENCH_localize.json"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline to compare against "
        "(default: repository BENCH_localize.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional slowdown before failing (default: the "
        "[bench] tolerance of --spec, or 0.25 without a spec)",
    )
    parser.add_argument(
        "--spec",
        type=Path,
        default=DEFAULT_SPEC,
        help="SLO spec supplying the [bench] tolerances "
        "(default: repository slo.toml)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also compare absolute warm_s_per_fix (requires identical "
        "scenarios; only meaningful on the machine that produced the "
        "baseline)",
    )
    args = parser.parse_args(argv)
    try:
        spec_tol, spec_abs_tol = spec_tolerances(args.spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = spec_tol if spec_tol is not None else FALLBACK_TOLERANCE
    absolute_tolerance = spec_abs_tol if args.tolerance is None else None
    if tolerance < 0:
        print("error: tolerance must be >= 0", file=sys.stderr)
        return 2
    try:
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = check(
        baseline,
        current,
        tolerance,
        args.absolute,
        absolute_tolerance=absolute_tolerance,
    )
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    print(
        f"bench guard ok: warm/direct {warm_ratio(current):.5f} vs "
        f"baseline {warm_ratio(baseline):.5f} "
        f"(+{tolerance * 100:.0f}% allowed)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
