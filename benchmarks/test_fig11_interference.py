"""Bench: regenerate Fig. 11 (channel subsampling has almost no effect).

Paper target: halving or quartering the number of subbands -- while
keeping the full 80 MHz span -- leaves the median error essentially
unchanged, because aliasing only appears beyond indoor distances.
"""

from __future__ import annotations

from repro.experiments import fig11_interference


def test_fig11_subsampling(benchmark, report_sink):
    result = benchmark.pedantic(
        fig11_interference.run, rounds=1, iterations=1, warmup_rounds=0
    )
    report_sink.append(result.format_report())
    full = result.measured("BLoc median, all 37 subbands")
    sub2 = result.measured("BLoc median, every 2nd subband (19)")
    sub4 = result.measured("BLoc median, every 4th subband (10)")
    # Shape: subsampling costs little (the paper attributes the slight
    # change to SNR, not aliasing).
    assert sub2 < full * 1.5
    assert sub4 < full * 1.8
    # And the theory row: the aliasing distance for the subsampled comb
    # exceeds the room diagonal, so no indoor ghost appears.
    assert result.measured("aliasing distance for 8 MHz gaps") > 8.0
