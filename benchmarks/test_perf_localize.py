"""Bench: steering-engine cold/warm cost and serial/parallel sweep rates.

Not a paper figure -- this tracks the localization hot path itself, on
the default 4-anchor / 4-antenna / 37-band scenario:

* direct Eq. 17 path (rebuild geometry every fix) vs a cold steering
  cache (first fix pays the build) vs a warm cache (matvecs only);
* serial ``evaluate()`` vs ``evaluate(workers=N)``.

Each test folds its measurements into ``BENCH_localize.json`` (path
overridable via ``REPRO_BENCH_JSON``), so successive runs keep the perf
trajectory comparable.  Scale with ``REPRO_EVAL_POINTS`` /
``REPRO_GRID_RES`` like the figure benchmarks.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import BlocConfig, BlocLocalizer
from repro.experiments.common import (
    default_dataset,
    eval_points,
    grid_resolution,
)
from repro.obs import SamplingProfiler, get_observer, observed
from repro.obs.ledger import RunLedger, build_run_record
from repro.sim import evaluate

#: Output file accumulating the perf numbers of both tests.
BENCH_JSON_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_localize.json")

#: Thread-pool size of the parallel sweep measurement.
PARALLEL_WORKERS = 4

#: Cap on sweep size: enough fixes to time a sweep, cheap enough for CI.
MAX_BENCH_FIXES = 12


@pytest.fixture(scope="module")
def dataset():
    return default_dataset(min(eval_points(), MAX_BENCH_FIXES))


@pytest.fixture(scope="module", autouse=True)
def bench_ledger_record():
    """Append one RunRecord per bench session to the run ledger.

    Runs after the module's tests so the record carries the sections they
    just folded into ``BENCH_localize.json``.  The ledger path honours
    ``REPRO_RUNS_LEDGER`` (default ``runs.ndjson``, git-ignored).
    """
    yield
    path = Path(BENCH_JSON_PATH)
    if not path.exists():
        return
    payload = json.loads(path.read_text(encoding="utf-8"))
    results = {}
    sections = ("steering_cache", "evaluate", "process", "batched", "profiler")
    for section in sections:
        for key, value in payload.get(section, {}).items():
            if value is None:
                # Explicit null (e.g. a speedup on a 1-cpu host) is
                # data: the report renders it as "n/a (1 cpu)".
                results[f"{section}.{key}"] = None
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            results[f"{section}.{key}"] = value
    ledger = RunLedger(None)
    record = build_run_record(
        "bench",
        get_observer(),
        label="localize",
        config=payload.get("scenario", {}),
        results=results,
        artifacts=[str(path)],
    )
    ledger.append(record)


def _bloc_config() -> BlocConfig:
    return BlocConfig(grid_resolution_m=grid_resolution())


def _best_locate_s(localizer, observations, rounds: int) -> float:
    """Best-of-``rounds`` wall-clock of one ``locate`` call."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        localizer.locate(observations, keep_map=False)
        best = min(best, time.perf_counter() - start)
    return best


def _update_bench_json(scenario: dict, section: str, data: dict) -> dict:
    """Read-merge-write one section of the benchmark JSON."""
    path = Path(BENCH_JSON_PATH)
    payload = (
        json.loads(path.read_text(encoding="utf-8"))
        if path.exists()
        else {"benchmark": "localize"}
    )
    payload["benchmark"] = "localize"
    payload["scenario"] = scenario
    payload[section] = data
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def _scenario(dataset, localizer) -> dict:
    observations = dataset.observations[0]
    return {
        "anchors": observations.num_anchors,
        "antennas": observations.num_antennas,
        "bands": observations.num_bands,
        "grid_points": localizer.grid_for(observations).size,
        "grid_resolution_m": grid_resolution(),
        "fixes": len(dataset),
    }


def test_perf_steering_cache(dataset, report_sink):
    """Warm-cache locate must be >= 3x faster than the direct path."""
    observations = dataset.observations[0]
    direct = BlocLocalizer(config=_bloc_config(), engine=None)
    cached = BlocLocalizer(config=_bloc_config())

    direct_s = _best_locate_s(direct, observations, rounds=3)
    start = time.perf_counter()
    cold_result = cached.locate(observations, keep_map=False)
    cold_s = time.perf_counter() - start
    warm_s = _best_locate_s(cached, observations, rounds=5)

    direct_result = direct.locate(observations, keep_map=False)
    assert np.allclose(
        tuple(direct_result.position),
        tuple(cold_result.position),
        atol=1e-6,
    )
    assert cached.engine.misses == 1 and cached.engine.hits >= 5

    speedup = direct_s / warm_s
    entry = cached.engine.info()
    data = {
        "direct_s_per_fix": direct_s,
        "cold_first_fix_s": cold_s,
        "warm_s_per_fix": warm_s,
        "speedup_warm_vs_direct": speedup,
        "cache_bytes": entry["bytes"],
        "cache_entries": entry["entries"],
    }
    _update_bench_json(_scenario(dataset, cached), "steering_cache", data)
    report_sink.append(
        "[perf] steering cache\n"
        f"  direct path       {direct_s * 1000:8.1f} ms/fix\n"
        f"  cold cache        {cold_s * 1000:8.1f} ms (first fix, incl. "
        "build)\n"
        f"  warm cache        {warm_s * 1000:8.1f} ms/fix "
        f"({speedup:.1f}x vs direct)\n"
        f"  cache size        {entry['bytes'] / 1e6:8.1f} MB"
    )
    assert speedup >= 3.0, (
        f"warm cache only {speedup:.2f}x faster than the direct path "
        f"(direct {direct_s:.4f}s, warm {warm_s:.4f}s)"
    )


def test_perf_parallel_evaluate(dataset, report_sink):
    """Parallel sweep: identical records, measured throughput."""
    serial_localizer = BlocLocalizer(config=_bloc_config())
    parallel_localizer = BlocLocalizer(config=_bloc_config())

    start = time.perf_counter()
    serial_run = evaluate(serial_localizer, dataset, label="serial")
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_run = evaluate(
        parallel_localizer,
        dataset,
        label="parallel",
        workers=PARALLEL_WORKERS,
    )
    parallel_s = time.perf_counter() - start

    assert [r.error_m for r in serial_run.records] == [
        r.error_m for r in parallel_run.records
    ], "parallel evaluation must be record-for-record identical to serial"

    fixes = len(dataset)
    cpus = os.cpu_count() or 1
    effective_workers = min(PARALLEL_WORKERS, fixes)
    unreliable = cpus < effective_workers
    serial_rate = fixes / serial_s
    parallel_rate = fixes / parallel_s
    data = {
        "fixes": fixes,
        "cpus": cpus,
        "serial_s": serial_s,
        "serial_fixes_per_s": serial_rate,
        "workers": PARALLEL_WORKERS,
        "effective_workers": effective_workers,
        "unreliable_single_core": unreliable,
        "parallel_s": parallel_s,
        "parallel_fixes_per_s": parallel_rate,
        # On a host with fewer cores than workers the ratio measures
        # scheduler noise, not parallelism: record null, not a lie.
        "speedup_parallel_vs_serial": (
            None if unreliable else serial_s / parallel_s
        ),
    }
    _update_bench_json(
        _scenario(dataset, serial_localizer), "evaluate", data
    )
    report_sink.append(
        "[perf] evaluation sweep\n"
        f"  serial            {serial_rate:8.1f} fixes/s\n"
        f"  workers={PARALLEL_WORKERS}         {parallel_rate:8.1f} "
        f"fixes/s ({serial_s / parallel_s:.1f}x)"
        + ("\n  [speedup not meaningful: "
           f"{cpus} cpu(s) < {effective_workers} workers]"
           if unreliable else "")
    )
    assert Path(BENCH_JSON_PATH).exists()
    if not unreliable:
        # With real cores behind the workers the thread pool must at
        # least not halve throughput (NumPy releases the GIL in the
        # likelihood kernels, so some overlap is expected).
        assert parallel_rate >= 0.5 * serial_rate, (
            f"parallel sweep slower than half of serial on {cpus} cpus: "
            f"{parallel_rate:.1f} vs {serial_rate:.1f} fixes/s"
        )


def test_perf_process_backend(dataset, report_sink):
    """Process backend: identical errors, GIL-free sweep throughput."""
    serial_localizer = BlocLocalizer(config=_bloc_config())
    process_localizer = BlocLocalizer(config=_bloc_config())

    start = time.perf_counter()
    serial_run = evaluate(serial_localizer, dataset, label="serial")
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    process_run = evaluate(
        process_localizer,
        dataset,
        label="process",
        workers=PARALLEL_WORKERS,
        backend="process",
    )
    process_s = time.perf_counter() - start

    assert [r.error_m for r in serial_run.records] == [
        r.error_m for r in process_run.records
    ], "process backend must be record-for-record identical to serial"

    fixes = len(dataset)
    cpus = os.cpu_count() or 1
    effective = process_run.effective_workers
    unreliable = cpus < effective
    rate = fixes / process_s
    speedup = serial_s / process_s
    data = {
        "fixes": fixes,
        "cpus": cpus,
        "workers": PARALLEL_WORKERS,
        "effective_workers": effective,
        "unreliable_single_core": unreliable,
        "serial_fixes_per_s": fixes / serial_s,
        "process_s": process_s,
        "fixes_per_s": rate,
        "speedup_process_vs_serial": None if unreliable else speedup,
    }
    _update_bench_json(
        _scenario(dataset, serial_localizer), "process", data
    )
    report_sink.append(
        "[perf] process backend\n"
        f"  serial            {fixes / serial_s:8.1f} fixes/s\n"
        f"  process x{effective}        {rate:8.1f} fixes/s"
        + (f" ({speedup:.1f}x)" if not unreliable else "")
        + ("\n  [speedup not meaningful: "
           f"{cpus} cpu(s) < {effective} workers]"
           if unreliable else "")
    )
    if not unreliable:
        assert speedup >= 1.7, (
            f"process backend only {speedup:.2f}x serial at "
            f"workers={effective} on {cpus} cpus "
            f"(serial {serial_s:.3f}s, process {process_s:.3f}s)"
        )


def test_perf_batched_evaluate(dataset, report_sink):
    """Batched Eq. 17: one (B, antennas, grid) matmul serves a batch."""
    serial_localizer = BlocLocalizer(config=_bloc_config())

    start = time.perf_counter()
    serial_run = evaluate(serial_localizer, dataset, label="serial")
    serial_s = time.perf_counter() - start

    fixes = len(dataset)
    curve = {}
    batched_run = None
    batched_s = serial_s
    for size in (2, 4, 8):
        localizer = BlocLocalizer(config=_bloc_config())
        start = time.perf_counter()
        run = evaluate(
            localizer, dataset, label=f"batch{size}", batch_size=size
        )
        elapsed = time.perf_counter() - start
        curve[str(size)] = fixes / elapsed
        batched_run, batched_s = run, elapsed

    for ours, ref in zip(batched_run.records, serial_run.records):
        if ref.estimate is None:
            assert ours.estimate is None
        else:
            # Stacked-matmul reductions reorder float sums; the
            # documented tolerance is nanometres (DESIGN.md).
            assert abs(ours.error_m - ref.error_m) < 1e-6

    cpus = os.cpu_count() or 1
    unreliable = cpus < 2  # timer noise swamps a loaded single core
    serial_rate = fixes / serial_s
    batched_rate = fixes / batched_s
    speedup = serial_s / batched_s
    data = {
        "fixes": fixes,
        "cpus": cpus,
        "batch_size": 8,
        "unreliable_single_core": unreliable,
        "serial_fixes_per_s": serial_rate,
        "batched_s": batched_s,
        "fixes_per_s": batched_rate,
        "fixes_per_s_by_batch": curve,
        "speedup_batched_vs_serial": None if unreliable else speedup,
    }
    _update_bench_json(
        _scenario(dataset, serial_localizer), "batched", data
    )
    report_sink.append(
        "[perf] batched localizer\n"
        f"  serial            {serial_rate:8.1f} fixes/s\n"
        + "".join(
            f"  batch={size}           {rate:8.1f} fixes/s\n"
            for size, rate in curve.items()
        )
        + (f"  speedup (B=8)     {speedup:8.1f}x"
           if not unreliable
           else f"  [speedup not meaningful: {cpus} cpu(s)]")
    )
    if not unreliable:
        rates = [serial_rate] + list(curve.values())
        assert all(
            later >= 0.9 * earlier
            for earlier, later in zip(rates, rates[1:])
        ), f"batched throughput curve is not monotone: {rates}"
        assert speedup >= 3.0, (
            f"batch_size=8 only {speedup:.2f}x unbatched serial "
            f"(serial {serial_s:.3f}s, batched {batched_s:.3f}s)"
        )


def _best_batch_s(localizer, observations, fixes: int, rounds: int) -> float:
    """Best-of-``rounds`` seconds per fix over a ``fixes``-call batch.

    Batching amortises timer granularity and scheduler noise that would
    dwarf the profiler's few-microsecond sampling cost on a single
    warm fix.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(fixes):
            localizer.locate(observations, keep_map=False)
        best = min(best, time.perf_counter() - start)
    return best / fixes


#: Interleaved baseline/profiled measurement pairs for the overhead
#: bench; the reported fraction is the *median* over these repeats, so
#: one scheduler hiccup (the historical source of gate flakes -- a
#: recorded 10.3% against the 5% ceiling on a loaded 1-cpu host) cannot
#: swing the verdict.
PROFILER_OVERHEAD_REPEATS = 3


def test_perf_profiler_overhead(dataset, report_sink):
    """The sampling profiler must cost < 5% of warm-fix wall time.

    The overhead fraction is measured ``PROFILER_OVERHEAD_REPEATS``
    times (baseline and profiled runs interleaved, so slow drift hits
    both sides) and the median is reported.  On a single-core host the
    profiler thread and the workload fight for the one CPU, so the
    measurement is scheduler noise: the JSON then records
    ``overhead_frac = null`` with ``unreliable_single_core = true`` --
    the same treatment the sweep benches give their speedups -- and the
    assertion is skipped, which makes the downstream
    ``profiler_overhead_frac`` SLO skip instead of flaking CI.
    """
    localizer = BlocLocalizer(config=_bloc_config())
    observations = dataset.observations[0]
    localizer.locate(observations, keep_map=False)  # warm the cache

    repeats = []
    baselines = []
    profileds = []
    with observed() as obs:
        for _ in range(PROFILER_OVERHEAD_REPEATS):
            baseline_s = _best_batch_s(
                localizer, observations, fixes=25, rounds=2
            )
            profiler = SamplingProfiler(obs.tracer, interval_s=0.005)
            with profiler:
                profiled_s = _best_batch_s(
                    localizer, observations, fixes=25, rounds=2
                )
            baselines.append(baseline_s)
            profileds.append(profiled_s)
            repeats.append(max(0.0, profiled_s / baseline_s - 1.0))
        report = profiler.report

    cpus = os.cpu_count() or 1
    unreliable = cpus < 2
    overhead_frac = float(np.median(repeats))
    baseline_s = float(np.median(baselines))
    profiled_s = float(np.median(profileds))
    data = {
        "interval_s": report.interval_s,
        "baseline_warm_s": baseline_s,
        "profiled_warm_s": profiled_s,
        "cpus": cpus,
        "unreliable_single_core": unreliable,
        "repeats": len(repeats),
        "overhead_frac_repeats": repeats,
        # On one core the profiler thread steals cycles from the very
        # workload it times: record null, not a flaky lie.
        "overhead_frac": None if unreliable else overhead_frac,
        "samples": report.samples_total,
    }
    _update_bench_json(_scenario(dataset, localizer), "profiler", data)
    report_sink.append(
        "[perf] sampling profiler\n"
        f"  warm fix          {baseline_s * 1000:8.1f} ms (no profiler)\n"
        f"  warm fix          {profiled_s * 1000:8.1f} ms (profiled, "
        f"{report.samples_total} samples @ {report.interval_s * 1000:.0f} "
        "ms)\n"
        f"  overhead          {overhead_frac * 100:8.1f} % "
        f"(median of {len(repeats)})"
        + (f"\n  [overhead not meaningful: {cpus} cpu(s)]"
           if unreliable else "")
    )
    if not unreliable:
        assert overhead_frac < 0.05, (
            f"profiler overhead {overhead_frac:.1%} (median of "
            f"{repeats}) exceeds the 5% budget "
            f"(baseline {baseline_s:.4f}s, profiled {profiled_s:.4f}s)"
        )
