"""Legacy setup shim so editable installs work without the wheel package
(offline environments); all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
