#!/usr/bin/env python3
"""Interference survey: localizing while avoiding Wi-Fi channels.

BLE coexists with Wi-Fi (Section 8.6): a deployment commonly blacklists
the BLE data channels overlapping busy Wi-Fi channels.  This example
blacklists the channels under Wi-Fi channels 1, 6 and 11, runs BLoc on
the remaining comb, and shows the accuracy barely moves -- the span, not
the count, of channels sets the resolution.

Run:  python examples/interference_survey.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BlocLocalizer,
    ChannelMeasurementModel,
    build_dataset,
    evaluate,
    vicon_testbed,
)
from repro.ble.channels import ChannelMap, data_channel_to_frequency
from repro.core.steering import aliasing_distance_m

#: 2.4 GHz Wi-Fi channel centres [Hz] for channels 1, 6, 11.
WIFI_CENTRES = (2.412e9, 2.437e9, 2.462e9)

#: Half-width of a 20 MHz Wi-Fi channel.
WIFI_HALF_WIDTH = 10e6


def blacklist_under_wifi() -> ChannelMap:
    """BLE data channels whose band overlaps an active Wi-Fi channel."""
    blacklisted = []
    for channel in range(37):
        f = data_channel_to_frequency(channel)
        if any(abs(f - c) < WIFI_HALF_WIDTH for c in WIFI_CENTRES):
            blacklisted.append(channel)
    return ChannelMap.from_blacklist(blacklisted)


def main() -> None:
    testbed = vicon_testbed()
    reduced_map = blacklist_under_wifi()
    print(
        f"Wi-Fi channels 1/6/11 active: {37 - reduced_map.num_used} BLE "
        f"data channels blacklisted, {reduced_map.num_used} remain"
    )
    survivors = ", ".join(str(c) for c in reduced_map.used)
    print(f"Surviving channels: {survivors}")

    freqs = np.array(reduced_map.frequencies())
    largest_gap = float(np.max(np.diff(np.sort(freqs))))
    print(
        f"Largest spectral gap: {largest_gap / 1e6:.0f} MHz -> aliasing "
        f"distance {aliasing_distance_m(largest_gap):.0f} m "
        "(far beyond the room, so no indoor ghosts)"
    )

    num_positions = 25
    bloc = BlocLocalizer()
    full_model = ChannelMeasurementModel(testbed=testbed, seed=31)
    full_dataset = build_dataset(
        testbed, num_positions, seed=31, model=full_model
    )
    reduced_model = ChannelMeasurementModel(
        testbed=testbed, seed=31, channel_map=reduced_map
    )
    reduced_dataset = build_dataset(
        testbed, num_positions, seed=31, model=reduced_model
    )

    full_run = evaluate(bloc, full_dataset, label="all channels")
    reduced_run = evaluate(bloc, reduced_dataset, label="Wi-Fi avoided")

    print(f"\nAccuracy over {num_positions} placements:")
    print(f"  all 37 channels : {full_run.stats().summary()}")
    print(f"  Wi-Fi avoided   : {reduced_run.stats().summary()}")
    ratio = (
        reduced_run.stats().median_m() / max(full_run.stats().median_m(), 1e-9)
    )
    print(
        f"  median ratio    : {ratio:.2f}x "
        "(paper Sec. 8.6: gaps cost little as long as the span remains; "
        "losing 3 Wi-Fi channels' worth of bands costs a bit of SNR)"
    )


if __name__ == "__main__":
    main()
