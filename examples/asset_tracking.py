#!/usr/bin/env python3
"""Factory-floor asset tracking: follow a moving BLE tag.

The paper's industrial motivation (Section 1): "higher accuracy and
robustness in industrial localization can automate processing pipelines".
A tagged asset travels along a transport path across a factory cell full
of metal machinery; BLoc produces a fix per localization round and the
track is compared against ground truth and against RSSI trilateration.

Run:  python examples/asset_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro import BlocLocalizer, ChannelMeasurementModel, Point
from repro.baselines import RssiTrilateration
from repro.core.tracking import TagTracker, track_errors_m
from repro.rf.antenna import default_anchor_ring
from repro.rf.environment import Environment
from repro.rf.materials import METAL
from repro.sim.scenario import sample_tag_positions
from repro.sim.testbed import Testbed


def build_factory_cell() -> Testbed:
    """An 8 m x 6 m cell ringed by metal machinery."""
    env = Environment(width=8.0, height=6.0, origin=Point(-4.0, -3.0))
    # Machinery occupies the cell corners, leaving the anchors (mid-edge,
    # facing inwards) a clear view of the transport area while keeping
    # the cell multipath-rich.
    machines = [
        (Point(-3.7, -2.0), Point(-2.6, -2.9), "press"),
        (Point(2.6, -2.9), Point(3.7, -2.0), "conveyor-frame"),
        (Point(3.7, 2.0), Point(2.6, 2.9), "lathe"),
        (Point(-2.6, 2.9), Point(-3.7, 2.0), "crane-rail"),
    ]
    for a, b, name in machines:
        env.add_reflector(a, b, METAL, name=name)
    anchors = default_anchor_ring(8.0, 6.0, origin=Point(-4.0, -3.0))
    return Testbed(environment=env, anchors=anchors, master_index=0)


def transport_path(num_points: int = 24) -> list:
    """A U-shaped route through the cell (load -> process -> unload)."""
    south = [Point(-3.0 + 6.0 * t, -1.8) for t in np.linspace(0, 1, 10)]
    east = [Point(3.0, -1.8 + 3.2 * t) for t in np.linspace(0, 1, 7)[1:]]
    north = [Point(3.0 - 5.5 * t, 1.4) for t in np.linspace(0, 1, 8)[1:]]
    return (south + east + north)[:num_points]


def main() -> None:
    testbed = build_factory_cell()
    # An industrial deployment gets a professional install: calibrated
    # arrays (small residual element/phase errors) and per-fix averaging
    # (higher effective SNR) compared to the paper's research testbed.
    model = ChannelMeasurementModel(
        testbed=testbed,
        seed=5,
        snr_db=25.0,
        oscillator_drift_std=15.0,
        calibration_error_m=0.01,
        element_phase_error_deg=15.0,
        element_gain_error_db=0.5,
    )

    rssi = RssiTrilateration()
    rssi.calibrate(
        [
            model.measure(p, round_index=500 + k)
            for k, p in enumerate(sample_tag_positions(testbed, 20, seed=9))
        ]
    )
    bloc = BlocLocalizer()

    # The asset moves ~0.5 m between fixes; a constant-velocity Kalman
    # filter over the raw fixes smooths noise and gates ghost fixes.
    tracker = TagTracker(measurement_std_m=0.35, acceleration_std=2.0)
    fix_interval_s = 1.0  # one localization sweep per second while moving

    print("Tracking a tagged asset along the transport path:\n")
    print(f"{'true position':>18} {'BLoc fix':>18} {'err':>6}"
          f" {'RSSI fix':>18} {'err':>6}")
    truths, bloc_errors, rssi_errors = [], [], []
    states = []
    for step, asset in enumerate(transport_path()):
        observations = model.measure(asset, round_index=step)
        bloc_fix = bloc.locate(observations, keep_map=False).position
        rssi_fix = rssi.locate(observations).position
        states.append(tracker.update(bloc_fix, dt=fix_interval_s))
        bloc_err = (bloc_fix - asset).norm()
        rssi_err = (rssi_fix - asset).norm()
        truths.append(asset)
        bloc_errors.append(bloc_err)
        rssi_errors.append(rssi_err)
        print(
            f"  ({asset.x:+5.2f}, {asset.y:+5.2f})"
            f"   ({bloc_fix.x:+5.2f}, {bloc_fix.y:+5.2f}) {bloc_err * 100:4.0f}cm"
            f"   ({rssi_fix.x:+5.2f}, {rssi_fix.y:+5.2f}) {rssi_err * 100:4.0f}cm"
        )

    filtered_errors = track_errors_m(states, truths)
    print("\nTrack summary:")
    print(
        f"  BLoc raw      : median {np.median(bloc_errors) * 100:4.0f} cm,"
        f" worst {np.max(bloc_errors) * 100:4.0f} cm"
    )
    print(
        f"  BLoc filtered : median {np.median(filtered_errors) * 100:4.0f} cm,"
        f" worst {np.max(filtered_errors) * 100:4.0f} cm"
        f" ({sum(s.gated for s in states)} ghost fixes gated)"
    )
    print(
        f"  RSSI          : median {np.median(rssi_errors) * 100:4.0f} cm,"
        f" worst {np.max(rssi_errors) * 100:4.0f} cm"
    )


if __name__ == "__main__":
    main()
