#!/usr/bin/env python3
"""Quickstart: localize one BLE tag with BLoc in a simulated room.

Builds the paper's VICON-room testbed (four 4-antenna anchors, metal
clutter), runs one measurement round -- a full 37-channel hop sweep with
two-way packets, random oscillator offsets and noise -- and feeds it to
the BLoc pipeline.  Prints the estimate, the error, and the stage-by-stage
story of Section 5.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BlocLocalizer,
    ChannelMeasurementModel,
    Point,
    vicon_testbed,
)
from repro.core import correct_phase_offsets


def main() -> None:
    # 1. Deploy the testbed: a 6 m x 5 m room, anchors mid-edge (Fig. 7c).
    testbed = vicon_testbed()
    print("Deployed anchors:")
    for anchor in testbed.anchors:
        role = " (master)" if anchor is testbed.master else ""
        print(
            f"  {anchor.name}: {anchor.num_antennas} antennas at "
            f"({anchor.position.x:+.2f}, {anchor.position.y:+.2f}){role}"
        )

    # 2. Place the tag and measure one localization round.
    tag = Point(0.8, 0.4)
    model = ChannelMeasurementModel(testbed=testbed, seed=42)
    observations = model.measure(tag)
    print(
        f"\nMeasured CSI: {observations.num_anchors} anchors x "
        f"{observations.num_antennas} antennas x "
        f"{observations.num_bands} frequency bands "
        f"({observations.bandwidth_hz() / 1e6:.0f} MHz stitched span)"
    )

    # Peek at the Section 5.1 problem: raw cross-band phase is garbled.
    raw_phase = np.degrees(np.angle(observations.tag_to_anchor[1, 0, :5]))
    print(f"Raw per-band phase (garbled): {np.round(raw_phase, 1)}")

    # 3. The Eq. 10 correction removes the per-hop oscillator offsets.
    corrected = correct_phase_offsets(observations)
    corrected_phase = np.degrees(np.angle(corrected.alpha[1, 0, :5]))
    print(f"Corrected per-band phase:     {np.round(corrected_phase, 1)}")

    # 4. Localize: likelihood map (Eq. 17) + multipath rejection (Eq. 18).
    localizer = BlocLocalizer()
    result = localizer.locate(observations)
    error_cm = result.error_m(tag) * 100
    print(f"\nTrue position:      ({tag.x:+.2f}, {tag.y:+.2f})")
    print(
        f"BLoc estimate:      ({result.position.x:+.2f}, "
        f"{result.position.y:+.2f})   error = {error_cm:.0f} cm"
    )

    # 5. Show the multipath candidates Eq. 18 had to choose between.
    print("\nCandidate peaks (multipath rejection, Section 5.4):")
    for scored in result.scored_peaks[:5]:
        p = scored.peak.position
        print(
            f"  ({p.x:+.2f}, {p.y:+.2f})  likelihood={scored.peak.value:.2f}"
            f"  entropy={scored.entropy:.3f}"
            f"  sum-dist={scored.distance_sum_m:.1f} m"
            f"  score={scored.score:.3f}"
        )

    # 6. The likelihood map over the room (the paper's Fig. 8c, in ASCII):
    # T = true position, E = estimate, brighter = more likely.
    from repro.viz import render_map

    print("\nCombined likelihood over the room:")
    print(
        render_map(
            result.likelihood.combined,
            result.likelihood.grid,
            width=66,
            markers=[(tag, "T"), (result.position, "E")],
        )
    )


if __name__ == "__main__":
    main()
