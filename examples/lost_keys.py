#!/usr/bin/env python3
"""Lost keys: the paper's motivating home scenario.

"One can predict whether you left the keys in the cupboard or on the
table, rather than just telling you that the keys are at home" (Section 1).
This example builds a small living room with named furniture zones, drops
a BLE key fob in one of them, and compares what three systems report:

* RSSI trilateration (today's practice) -- often names the wrong zone;
* the AoA-combining baseline;
* BLoc -- sub-metre, so the zone is almost always right.

Run:  python examples/lost_keys.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import BlocLocalizer, ChannelMeasurementModel, Point
from repro.baselines import AoaLocalizer, RssiTrilateration
from repro.rf.antenna import default_anchor_ring
from repro.rf.environment import Environment
from repro.rf.materials import DRYWALL, METAL
from repro.sim.testbed import Testbed


@dataclass(frozen=True)
class Zone:
    """A named rectangular furniture zone."""

    name: str
    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def contains(self, p: Point) -> bool:
        return (
            self.x_min <= p.x <= self.x_max
            and self.y_min <= p.y <= self.y_max
        )

    def centre(self) -> Point:
        return Point(
            (self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2
        )


ZONES = [
    Zone("kitchen table", -2.4, -1.2, 0.6, 1.6),
    Zone("sofa", 0.4, 2.2, 1.2, 1.9),
    Zone("cupboard shelf", 1.9, 2.6, -1.5, -0.6),
    Zone("desk", -2.5, -1.5, -1.6, -0.9),
    Zone("doorway dresser", -0.5, 0.5, -1.7, -1.2),
]


def build_home() -> Testbed:
    """A 6 m x 4 m living room with drywall and one metal fridge face."""
    env = Environment(width=6.0, height=4.0, origin=Point(-3.0, -2.0),
                      wall_material=DRYWALL)
    # Metal furniture sits in the corners, clear of the anchors'
    # sightlines into the zones (anchors are mid-edge).
    env.add_reflector(Point(2.75, -1.7), Point(2.75, -0.9), METAL,
                      name="fridge")
    env.add_reflector(Point(-2.7, 1.0), Point(-1.9, 1.7), METAL,
                      name="oven")
    env.add_reflector(Point(1.2, 1.85), Point(2.4, 1.85), METAL,
                      name="wall-mounted TV")
    env.add_reflector(Point(-2.0, -1.85), Point(-0.8, -1.85), METAL,
                      name="radiator")
    anchors = default_anchor_ring(6.0, 4.0, origin=Point(-3.0, -2.0))
    return Testbed(environment=env, anchors=anchors, master_index=0)


def zone_of(position: Point) -> Optional[Zone]:
    for zone in ZONES:
        if zone.contains(position):
            return zone
    return None


def nearest_zone(position: Point) -> Zone:
    return min(ZONES, key=lambda z: (z.centre() - position).norm())


def main() -> None:
    testbed = build_home()
    # A small home with drywall is gentler than the paper's metal-filled
    # lab; model a consumer kit with factory-calibrated arrays.
    model = ChannelMeasurementModel(
        testbed=testbed,
        seed=7,
        snr_db=22.0,
        oscillator_drift_std=20.0,
        calibration_error_m=0.012,
        element_phase_error_deg=20.0,
        element_gain_error_db=0.8,
    )

    # Calibrate the RSSI baseline once, like an installer would.
    from repro.sim.scenario import sample_tag_positions

    survey = [
        model.measure(p, round_index=100 + k)
        for k, p in enumerate(sample_tag_positions(testbed, 20, seed=3))
    ]
    rssi = RssiTrilateration()
    rssi.calibrate(survey)

    bloc = BlocLocalizer()
    aoa = AoaLocalizer()

    rng = np.random.default_rng(11)
    trials = 12
    correct = {"BLoc": 0, "AoA": 0, "RSSI": 0}
    print(f"Dropping the keys into random zones, {trials} times:\n")
    for trial in range(trials):
        zone = ZONES[int(rng.integers(0, len(ZONES)))]
        keys = Point(
            float(rng.uniform(zone.x_min, zone.x_max)),
            float(rng.uniform(zone.y_min, zone.y_max)),
        )
        observations = model.measure(keys, round_index=trial)
        reports = {
            "BLoc": bloc.locate(observations, keep_map=False).position,
            "AoA": aoa.locate(observations).position,
            "RSSI": rssi.locate(observations).position,
        }
        line = [f"keys in {zone.name:<16}"]
        for name, estimate in reports.items():
            guess = nearest_zone(estimate)
            hit = guess.name == zone.name
            correct[name] += hit
            error_cm = (estimate - keys).norm() * 100
            line.append(
                f"{name}: {guess.name:<16} ({error_cm:4.0f} cm)"
                f" {'OK ' if hit else 'MISS'}"
            )
        print("  " + " | ".join(line))

    print("\nZone-identification accuracy:")
    for name, hits in correct.items():
        print(f"  {name:5}: {hits}/{trials} ({100 * hits / trials:.0f}%)")


if __name__ == "__main__":
    main()
