"""Compared schemes: AoA-combining, naive shortest distance, RSSI.

Every baseline consumes the same observations as BLoc so comparisons use
"the same set of channel measurements" (paper Section 7).
"""

from repro.baselines.aoa import AoaLocalizer, AoaResult
from repro.baselines.rssi import (
    RssiFingerprinting,
    RssiResult,
    RssiTrilateration,
    observation_rssi_dbm,
)
from repro.baselines.shortest import (
    ShortestDistanceLocalizer,
    shortest_distance_localizer,
)

__all__ = [
    "AoaLocalizer",
    "AoaResult",
    "RssiFingerprinting",
    "RssiResult",
    "RssiTrilateration",
    "ShortestDistanceLocalizer",
    "observation_rssi_dbm",
    "shortest_distance_localizer",
]
