"""RSSI baselines: what BLE localization looked like before BLoc.

Section 2.2 and Section 9.2 describe the pre-BLoc state of the art: use
``|h|`` as a proxy for distance.  Two classic variants are implemented:

* :class:`RssiTrilateration` -- fit a log-distance path-loss model and
  trilaterate; no training, but multipath fading corrupts the distances.
* :class:`RssiFingerprinting` -- k-nearest-neighbour matching against a
  recorded RSSI survey (the paper's [7] reaches 1.2 m median this way but
  "requires finger printing of the environment").

Both read only the channel magnitudes of the observations -- phase, the
thing BLoc adds, is deliberately ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.observations import ChannelObservations
from repro.errors import ConfigurationError, LocalizationError
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D


def observation_rssi_dbm(
    observations: ChannelObservations, tx_power_dbm: float = 0.0
) -> np.ndarray:
    """Per-anchor received power [dBm]: mean over antennas and bands."""
    power = np.mean(
        np.abs(observations.tag_to_anchor) ** 2, axis=(1, 2)
    )  # (I,)
    with np.errstate(divide="ignore"):
        return tx_power_dbm + 10.0 * np.log10(power)


@dataclass
class RssiResult:
    """Result of an RSSI fix.

    Attributes:
        position: the estimate.
        distances_m: per-anchor distance estimates (trilateration only).
    """

    position: Point
    distances_m: Optional[np.ndarray] = None


@dataclass
class RssiTrilateration:
    """Log-distance path-loss trilateration.

    ``RSSI(d) = rssi_at_1m - 10 * n * log10(d)`` with path-loss exponent
    ``n``; the estimated distances are combined by a grid search over the
    squared range residuals.

    Attributes:
        rssi_at_1m_dbm: calibration intercept.
        path_loss_exponent: the model's ``n`` (2 = free space; indoor
            fitted values run 1.6..3.5).
        grid_resolution_m: search grid spacing.
        bounds: optional fixed search bounds.
    """

    rssi_at_1m_dbm: float = 0.0
    path_loss_exponent: float = 2.0
    grid_resolution_m: float = 0.1
    grid_margin_m: float = 0.25
    bounds: Optional[Tuple[float, float, float, float]] = None

    def __post_init__(self):
        if self.path_loss_exponent <= 0:
            raise ConfigurationError("path-loss exponent must be > 0")

    def distances_from_rssi(self, rssi_dbm: np.ndarray) -> np.ndarray:
        """Invert the path-loss model into distances [m]."""
        exponent = (self.rssi_at_1m_dbm - np.asarray(rssi_dbm)) / (
            10.0 * self.path_loss_exponent
        )
        return np.power(10.0, exponent)

    def calibrate(
        self, observations_list: Sequence[ChannelObservations]
    ) -> None:
        """Least-squares fit of intercept and exponent from ground-truth
        tagged observations (a one-time deployment calibration)."""
        rows = []
        targets = []
        for obs in observations_list:
            if obs.ground_truth is None:
                raise ConfigurationError("calibration needs ground truth")
            rssi = observation_rssi_dbm(obs)
            for i, anchor in enumerate(obs.anchors):
                d = (obs.ground_truth - anchor.position).norm()
                if d <= 0:
                    continue
                rows.append([1.0, -10.0 * np.log10(d)])
                targets.append(rssi[i])
        if len(rows) < 2:
            raise ConfigurationError("not enough calibration samples")
        solution, *_ = np.linalg.lstsq(
            np.asarray(rows), np.asarray(targets), rcond=None
        )
        self.rssi_at_1m_dbm = float(solution[0])
        self.path_loss_exponent = float(max(solution[1], 0.1))

    def _grid_for(self, observations: ChannelObservations) -> Grid2D:
        if self.bounds is not None:
            return Grid2D.from_bounds(self.bounds, self.grid_resolution_m)
        xs = [a.position.x for a in observations.anchors]
        ys = [a.position.y for a in observations.anchors]
        m = self.grid_margin_m
        return Grid2D(
            min(xs) - m, max(xs) + m, min(ys) - m, max(ys) + m,
            self.grid_resolution_m,
        )

    def locate(
        self, observations: ChannelObservations, keep_map: bool = True
    ) -> RssiResult:
        """Trilaterate from per-anchor RSSI."""
        rssi = observation_rssi_dbm(observations)
        if not np.all(np.isfinite(rssi)):
            raise LocalizationError("RSSI unavailable at some anchor")
        distances = self.distances_from_rssi(rssi)
        grid = self._grid_for(observations)
        points = grid.points()
        residual = np.zeros(points.shape[0])
        for i, anchor in enumerate(observations.anchors):
            deltas = points - np.array(tuple(anchor.position))[None, :]
            ranges = np.linalg.norm(deltas, axis=1)
            residual += (ranges - distances[i]) ** 2
        best = int(np.argmin(residual))
        row, col = divmod(best, grid.num_x)
        return RssiResult(
            position=grid.point_at(row, col), distances_m=distances
        )


@dataclass
class RssiFingerprinting:
    """k-NN fingerprinting over per-anchor RSSI vectors.

    Attributes:
        k: neighbours averaged for the estimate.
    """

    k: int = 3
    _fingerprints: List[np.ndarray] = field(
        init=False, default_factory=list, repr=False
    )
    _positions: List[Point] = field(
        init=False, default_factory=list, repr=False
    )

    def __post_init__(self):
        if self.k < 1:
            raise ConfigurationError("k must be >= 1")

    @property
    def num_fingerprints(self) -> int:
        """Size of the trained survey."""
        return len(self._fingerprints)

    def train(
        self, observations_list: Sequence[ChannelObservations]
    ) -> None:
        """Record the survey (the costly manual step the paper criticises)."""
        for obs in observations_list:
            if obs.ground_truth is None:
                raise ConfigurationError("fingerprints need ground truth")
            self._fingerprints.append(observation_rssi_dbm(obs))
            self._positions.append(obs.ground_truth)

    def locate(
        self, observations: ChannelObservations, keep_map: bool = True
    ) -> RssiResult:
        """Weighted k-NN estimate in RSSI space."""
        if len(self._fingerprints) < self.k:
            raise LocalizationError(
                "fingerprint database smaller than k; call train() first"
            )
        query = observation_rssi_dbm(observations)
        database = np.asarray(self._fingerprints)
        distances = np.linalg.norm(database - query[None, :], axis=1)
        nearest = np.argsort(distances)[: self.k]
        weights = 1.0 / np.maximum(distances[nearest], 1e-6)
        weights = weights / weights.sum()
        x = sum(w * self._positions[i].x for w, i in zip(weights, nearest))
        y = sum(w * self._positions[i].y for w, i in zip(weights, nearest))
        return RssiResult(position=Point(float(x), float(y)))
