"""Shortest-distance baseline: BLoc without its multipath score.

Section 8.7's ablation: "replace the multipath rejection with a naive
baseline that just picks the shortest distance path as the direct path".
The pipeline is identical to BLoc up to and including peak detection; the
selection simply takes the peak minimising the summed anchor distances,
ignoring both the likelihood value and the spatial entropy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.localizer import BlocConfig, BlocLocalizer


@dataclass
class ShortestDistanceLocalizer(BlocLocalizer):
    """BLoc with naive shortest-distance peak selection (Section 8.7)."""

    def __post_init__(self):
        self.config = BlocConfig(
            grid_resolution_m=self.config.grid_resolution_m,
            grid_margin_m=self.config.grid_margin_m,
            peak=self.config.peak,
            scoring=self.config.scoring,
            selection="shortest",
            refine_peaks=self.config.refine_peaks,
        )


def shortest_distance_localizer(**kwargs) -> BlocLocalizer:
    """Convenience constructor mirroring :class:`BlocLocalizer`'s API."""
    config = kwargs.pop("config", BlocConfig())
    config = BlocConfig(
        grid_resolution_m=config.grid_resolution_m,
        grid_margin_m=config.grid_margin_m,
        peak=config.peak,
        scoring=config.scoring,
        selection="shortest",
        refine_peaks=config.refine_peaks,
    )
    return BlocLocalizer(config=config, **kwargs)
