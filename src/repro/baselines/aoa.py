"""AoA-combining baseline (the paper's compared scheme, Section 7).

State-of-the-art Wi-Fi localizers the paper compares to (ArrayTrack,
SpotFi) are built on angle-of-arrival: each anchor computes an angle
spectrum from the relative phases across its antennas -- which survive the
per-hop oscillator offsets because one oscillator drives the whole array
-- and the anchors' estimates are combined by triangulation.  No
cross-band phase is usable without BLoc's correction, so each band
contributes an independent (non-coherently combined) spectrum.

Two combination modes are provided:

* ``"triangulation"`` (default, the paper's scheme): each anchor commits
  to its strongest arrival angle and the bearings are intersected by
  least squares.  This is what "least ToF based AoA localization" reduces
  to on BLE, where 2 MHz of bandwidth gives no usable ToF to pick the
  direct path -- one multipath-corrupted anchor drags the intersection
  away, which is exactly why the paper measures 2.42 m median for it.
* ``"spectrum"`` -- a stronger soft variant that sums full per-anchor
  angle spectra over a grid before taking the argmax (an extension
  beyond the paper's baseline; useful as an upper bound).

The baseline consumes the *same* :class:`~repro.core.observations.
ChannelObservations` as BLoc, matching Section 7: "using the same number
of antennas and the same set of channel measurements".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.observations import ChannelObservations
from repro.core.steering import angle_spectrum
from repro.errors import ConfigurationError, LocalizationError
from repro.utils.complexutils import normalize_peak
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D

#: Valid spectrum-combination modes.
AOA_MODES = ("triangulation", "spectrum")


@dataclass
class AoaResult:
    """Result of an AoA-combining fix.

    Attributes:
        position: estimated tag position.
        per_anchor_angles_rad: each anchor's strongest arrival angle.
        likelihood: the combined spatial map (spectrum mode only).
    """

    position: Point
    per_anchor_angles_rad: List[float]
    likelihood: Optional[np.ndarray] = None


@dataclass
class AoaLocalizer:
    """Angle-of-arrival combining baseline.

    Attributes:
        grid_resolution_m: spacing of the combination grid (spectrum mode).
        grid_margin_m: grid extension beyond the anchor hull.
        num_angles: resolution of each anchor's angle spectrum.
        mode: "triangulation" (paper baseline) or "spectrum" (soft).
        bounds: optional fixed grid / clamp bounds.
    """

    grid_resolution_m: float = 0.05
    grid_margin_m: float = 0.25
    num_angles: int = 361
    mode: str = "triangulation"
    spectrum_method: str = "bartlett"
    bounds: Optional[Tuple[float, float, float, float]] = None

    def __post_init__(self):
        if self.grid_resolution_m <= 0:
            raise ConfigurationError("grid resolution must be > 0")
        if self.num_angles < 11:
            raise ConfigurationError("num_angles must be >= 11")
        if self.mode not in AOA_MODES:
            raise ConfigurationError(
                f"mode must be one of {AOA_MODES}, got {self.mode!r}"
            )
        if self.spectrum_method not in ("bartlett", "music"):
            raise ConfigurationError(
                "spectrum_method must be 'bartlett' or 'music', "
                f"got {self.spectrum_method!r}"
            )

    def _grid_for(self, observations: ChannelObservations) -> Grid2D:
        if self.bounds is not None:
            return Grid2D.from_bounds(self.bounds, self.grid_resolution_m)
        xs = [a.position.x for a in observations.anchors]
        ys = [a.position.y for a in observations.anchors]
        m = self.grid_margin_m
        return Grid2D(
            min(xs) - m, max(xs) + m, min(ys) - m, max(ys) + m,
            self.grid_resolution_m,
        )

    def anchor_spectrum(
        self, observations: ChannelObservations, anchor_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One anchor's multi-band angle spectrum ``Pa(theta)``.

        ``spectrum_method = "bartlett"`` is the paper's Eq. 3 beamformer;
        ``"music"`` is the ArrayTrack-style subspace estimator using the
        frequency bands as snapshots.
        """
        anchor = observations.anchors[anchor_index]
        angles = np.linspace(-np.pi / 2.0, np.pi / 2.0, self.num_angles)
        channels = observations.tag_to_anchor[anchor_index]  # (J, K)
        if self.spectrum_method == "music":
            from repro.core.music import music_spectrum

            centre = float(np.mean(observations.frequencies_hz))
            return music_spectrum(
                channels,
                spacing_m=anchor.spacing_m,
                frequency_hz=centre,
                angles_rad=angles,
            )
        return angle_spectrum(
            channels,
            spacing_m=anchor.spacing_m,
            frequency_hz=observations.frequencies_hz,
            angles_rad=angles,
        )

    def _clamp_bounds(self, observations: ChannelObservations):
        if self.bounds is not None:
            return self.bounds
        xs = [a.position.x for a in observations.anchors]
        ys = [a.position.y for a in observations.anchors]
        m = self.grid_margin_m
        return (min(xs) - m, max(xs) + m, min(ys) - m, max(ys) + m)

    def _triangulate(
        self, observations: ChannelObservations
    ) -> AoaResult:
        """Least-squares intersection of per-anchor bearing lines."""
        best_angles: List[float] = []
        normal_matrix = np.zeros((2, 2))
        rhs = np.zeros(2)
        for i, anchor in enumerate(observations.anchors):
            angles, spectrum = self.anchor_spectrum(observations, i)
            theta = float(angles[int(np.argmax(spectrum))])
            best_angles.append(theta)
            bearing = anchor.boresight_rad + theta
            direction = np.array([np.cos(bearing), np.sin(bearing)])
            projector = np.eye(2) - np.outer(direction, direction)
            normal_matrix += projector
            rhs += projector @ np.array(tuple(anchor.position))
        try:
            solution = np.linalg.solve(normal_matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise LocalizationError(
                "bearing lines are (numerically) parallel"
            ) from exc
        x_min, x_max, y_min, y_max = self._clamp_bounds(observations)
        position = Point(
            float(np.clip(solution[0], x_min, x_max)),
            float(np.clip(solution[1], y_min, y_max)),
        )
        return AoaResult(
            position=position, per_anchor_angles_rad=best_angles
        )

    def locate(
        self, observations: ChannelObservations, keep_map: bool = True
    ) -> AoaResult:
        """Combine per-anchor angle estimates into a position.

        Raises:
            LocalizationError: when the combination is degenerate.
        """
        if self.mode == "triangulation":
            return self._triangulate(observations)
        grid = self._grid_for(observations)
        points = grid.points()
        combined = np.zeros(points.shape[0])
        best_angles: List[float] = []
        for i, anchor in enumerate(observations.anchors):
            angles, spectrum = self.anchor_spectrum(observations, i)
            best_angles.append(float(angles[int(np.argmax(spectrum))]))
            # Angle of every grid point as seen by this anchor.
            deltas = points - np.array(tuple(anchor.position))[None, :]
            bearings = np.arctan2(deltas[:, 1], deltas[:, 0])
            relative = np.angle(
                np.exp(1j * (bearings - anchor.boresight_rad))
            )
            in_front = np.abs(relative) <= np.pi / 2.0
            contribution = np.zeros(points.shape[0])
            contribution[in_front] = np.interp(
                relative[in_front], angles, spectrum
            )
            combined += contribution
        if combined.max() <= 0:
            raise LocalizationError("AoA combination produced a flat map")
        best = int(np.argmax(combined))
        row, col = divmod(best, grid.num_x)
        return AoaResult(
            position=grid.point_at(row, col),
            per_anchor_angles_rad=best_angles,
            likelihood=(
                normalize_peak(grid.reshape(combined)) if keep_map else None
            ),
        )
