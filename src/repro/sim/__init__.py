"""Evaluation harness: testbeds, scenarios, measurements, metrics, runs.

Reproduces the paper's Section 7 methodology: the VICON-room testbed, the
1700-placement dataset, and the error statistics of Section 8.
"""

from repro.sim.dataset import EvaluationDataset, build_dataset
from repro.sim.interference import (
    InterferedMeasurementModel,
    WifiNetwork,
    affected_data_channels,
    blacklist_map,
    inject_band_outage,
)
from repro.sim.measurement import ChannelMeasurementModel, IqMeasurementModel
from repro.sim.metrics import (
    ErrorStats,
    cdf_table,
    errors_from_fixes,
    format_comparison_row,
    spatial_rmse_map,
)
from repro.sim.runner import (
    BACKENDS,
    DiagnosticsCapture,
    EvaluationRecord,
    EvaluationRun,
    evaluate,
    evaluate_anchor_subsets,
)
from repro.sim.scenario import (
    grid_tag_positions,
    sample_tag_positions,
    walking_path,
)
from repro.sim.testbed import Testbed, open_room_testbed, vicon_testbed

__all__ = [
    "BACKENDS",
    "ChannelMeasurementModel",
    "DiagnosticsCapture",
    "ErrorStats",
    "EvaluationDataset",
    "EvaluationRecord",
    "EvaluationRun",
    "InterferedMeasurementModel",
    "IqMeasurementModel",
    "Testbed",
    "WifiNetwork",
    "affected_data_channels",
    "blacklist_map",
    "build_dataset",
    "cdf_table",
    "errors_from_fixes",
    "evaluate",
    "evaluate_anchor_subsets",
    "format_comparison_row",
    "grid_tag_positions",
    "inject_band_outage",
    "open_room_testbed",
    "sample_tag_positions",
    "spatial_rmse_map",
    "vicon_testbed",
    "walking_path",
]
