"""Evaluation runner: sweep a localizer over a dataset, collect errors.

Any object with a ``locate(observations) -> result`` method where the
result exposes ``.position`` qualifies as a localizer -- BLoc, the AoA
baseline and the RSSI baseline all satisfy this protocol, so every
Section 8 experiment is one :func:`evaluate` call per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence

import numpy as np

from repro.core.observations import ChannelObservations
from repro.errors import LocalizationError
from repro.sim.dataset import EvaluationDataset
from repro.sim.metrics import ErrorStats
from repro.utils.geometry2d import Point


class Localizer(Protocol):
    """Structural interface every evaluated scheme implements."""

    def locate(self, observations: ChannelObservations, keep_map: bool = True):
        """Produce a result with a ``.position`` attribute."""
        ...


@dataclass
class EvaluationRecord:
    """One fix of an evaluation run.

    Attributes:
        truth: ground-truth tag position.
        estimate: the localizer's estimate (None when it failed).
        error_m: Euclidean error (infinite when the fix failed).
    """

    truth: Point
    estimate: Optional[Point]
    error_m: float


@dataclass
class EvaluationRun:
    """Outcome of sweeping one localizer over one dataset.

    Attributes:
        label: configuration name for reports.
        records: per-fix outcomes.
    """

    label: str
    records: List[EvaluationRecord] = field(default_factory=list)

    @property
    def num_failed(self) -> int:
        """Count of fixes where the localizer raised."""
        return sum(1 for r in self.records if r.estimate is None)

    def stats(self, failure_error_m: float = 10.0) -> ErrorStats:
        """Error statistics; failed fixes count as ``failure_error_m``."""
        errors = [
            r.error_m if np.isfinite(r.error_m) else failure_error_m
            for r in self.records
        ]
        return ErrorStats(np.array(errors))

    def truths(self) -> List[Point]:
        """Ground-truth positions, record order."""
        return [r.truth for r in self.records]

    def errors(self, failure_error_m: float = 10.0) -> List[float]:
        """Per-fix errors, record order (failures as ``failure_error_m``)."""
        return [
            r.error_m if np.isfinite(r.error_m) else failure_error_m
            for r in self.records
        ]


def evaluate(
    localizer: Localizer,
    dataset: EvaluationDataset,
    label: str = "",
    transform: Optional[
        Callable[[ChannelObservations], ChannelObservations]
    ] = None,
    limit: Optional[int] = None,
) -> EvaluationRun:
    """Run a localizer over every dataset entry.

    Args:
        localizer: the scheme under test.
        dataset: ground-truth-tagged observations.
        label: report name.
        transform: optional per-entry observation transform (antenna /
            anchor / bandwidth subsetting).
        limit: evaluate only the first ``limit`` entries.

    A fix that raises :class:`~repro.errors.LocalizationError` is recorded
    as failed rather than aborting the run -- a localizer that cannot
    produce a fix is a (bad) data point, not a crash.
    """
    run = EvaluationRun(label=label)
    entries = dataset.observations[:limit] if limit else dataset.observations
    for observations in entries:
        if transform is not None:
            observations = transform(observations)
        truth = observations.ground_truth
        try:
            result = localizer.locate(observations, keep_map=False)
            estimate = result.position
            error = (estimate - truth).norm()
        except LocalizationError:
            estimate = None
            error = float("inf")
        run.records.append(
            EvaluationRecord(truth=truth, estimate=estimate, error_m=error)
        )
    return run


def evaluate_anchor_subsets(
    localizer: Localizer,
    dataset: EvaluationDataset,
    subset_size: int,
    label: str = "",
    limit: Optional[int] = None,
) -> EvaluationRun:
    """Average over all anchor subsets of a given size (Section 8.3).

    The paper reports, for 3 of 4 anchors, "all possible subsets of the 4
    deployed anchors and ... the average of those errors for each data
    point"; this reproduces that protocol.  Subsets must contain the
    master (its packets anchor the Eq. 10 correction).
    """
    from itertools import combinations

    run = EvaluationRun(label=label)
    entries = dataset.observations[:limit] if limit else dataset.observations
    for observations in entries:
        truth = observations.ground_truth
        master = observations.master_index
        others = [
            i for i in range(observations.num_anchors) if i != master
        ]
        errors = []
        estimate = None
        for chosen in combinations(others, subset_size - 1):
            subset = observations.select_anchors([master, *chosen])
            try:
                result = localizer.locate(subset, keep_map=False)
                estimate = result.position
                errors.append((estimate - truth).norm())
            except LocalizationError:
                errors.append(float("inf"))
        mean_error = (
            float(np.mean([e for e in errors if np.isfinite(e)]))
            if any(np.isfinite(e) for e in errors)
            else float("inf")
        )
        run.records.append(
            EvaluationRecord(
                truth=truth,
                estimate=estimate,
                error_m=mean_error,
            )
        )
    return run
