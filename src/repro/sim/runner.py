"""Evaluation runner: sweep a localizer over a dataset, collect errors.

Any object with a ``locate(observations) -> result`` method where the
result exposes ``.position`` qualifies as a localizer -- BLoc, the AoA
baseline and the RSSI baseline all satisfy this protocol, so every
Section 8 experiment is one :func:`evaluate` call per configuration.

Sweeps parallelize across fixes with ``workers=N``: entries are fanned
out over a thread pool (the hot path is numpy, which releases the GIL),
records come back in dataset order regardless of completion order, and
with observability enabled each worker thread accumulates its per-fix
metrics in a private registry that is merged into the session observer
once the sweep finishes -- so parallel runs report the same totals as
serial ones without contending on one registry per fix.

Two further levers trade layout for speed without changing results (see
DESIGN.md's backend matrix):

* ``backend="process"`` fans fixes out over worker *processes* (module
  :mod:`repro.sim.procpool`), sharing one steering cache through POSIX
  shared memory -- the escape hatch from the GIL for the pure-Python
  part of a sweep;
* ``batch_size=B`` stacks B fixes into one batched Eq. 17 evaluation
  (:meth:`~repro.core.localizer.BlocLocalizer.locate_batch`), turning
  per-fix matvecs into one matmul per antenna.

Both keep dataset order, per-fix failure containment and merged
observability, and combine with each other.
"""

from __future__ import annotations

import inspect
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.analysis.runtime_locks import LockLike, guarded_by, make_lock
from repro.core.observations import ChannelObservations
from repro.errors import ConfigurationError, LocalizationError
from repro.obs import LATENCY_BUCKETS_S, MetricsRegistry, get_observer
from repro.obs.diag import (
    FixDiagnostics,
    bundle_filename,
    bundle_from_fix,
    save_fix_bundle,
)
from repro.obs.health import AnchorHealthMonitor
from repro.sim.dataset import EvaluationDataset
from repro.sim.metrics import ErrorStats
from repro.utils.geometry2d import Point


class Localizer(Protocol):
    """Structural interface every evaluated scheme implements."""

    def locate(self, observations: ChannelObservations, keep_map: bool = True):
        """Produce a result with a ``.position`` attribute."""
        ...


@dataclass
class EvaluationRecord:
    """One fix of an evaluation run.

    Attributes:
        truth: ground-truth tag position.
        estimate: the localizer's estimate (None when it failed).
        error_m: Euclidean error (infinite when the fix failed).
        failure_reason: the localizer's error message when the fix
            failed, None otherwise.
    """

    truth: Point
    estimate: Optional[Point]
    error_m: float
    failure_reason: Optional[str] = None


@dataclass
class EvaluationRun:
    """Outcome of sweeping one localizer over one dataset.

    Attributes:
        label: configuration name for reports.
        records: per-fix outcomes.
        backend: execution backend the sweep ran on (``"serial"``,
            ``"thread"`` or ``"process"``).
        effective_workers: worker count actually used after clamping to
            the entry count (what capacity planning should read, not the
            requested ``workers``).
        batch_size: Eq. 17 batch size, None for the unbatched path.
    """

    label: str
    records: List[EvaluationRecord] = field(default_factory=list)
    backend: str = "serial"
    effective_workers: int = 1
    batch_size: Optional[int] = None

    @property
    def num_failed(self) -> int:
        """Count of fixes that produced no error (the localizer raised).

        Keyed on the error being non-finite rather than the estimate
        being absent: anchor-subset records aggregate several sub-fixes
        and may carry a finite mean error without any single estimate.
        """
        return sum(1 for r in self.records if not np.isfinite(r.error_m))

    def failure_reasons(self) -> List[Optional[str]]:
        """Per-record failure reasons (None for successful fixes)."""
        return [r.failure_reason for r in self.records]

    def stats(self, failure_error_m: float = 10.0) -> ErrorStats:
        """Error statistics; failed fixes count as ``failure_error_m``."""
        errors = [
            r.error_m if np.isfinite(r.error_m) else failure_error_m
            for r in self.records
        ]
        return ErrorStats(np.array(errors))

    def truths(self) -> List[Point]:
        """Ground-truth positions, record order."""
        return [r.truth for r in self.records]

    def errors(self, failure_error_m: float = 10.0) -> List[float]:
        """Per-fix errors, record order (failures as ``failure_error_m``)."""
        return [
            r.error_m if np.isfinite(r.error_m) else failure_error_m
            for r in self.records
        ]


@guarded_by("_lock", "_collected")
@dataclass
class DiagnosticsCapture:
    """Opt-in per-fix diagnostics collection for :func:`evaluate`.

    When passed to :func:`evaluate` (and the localizer supports
    ``locate(..., diagnostics=True)``, which BLoc does), every fix's
    :class:`~repro.obs.diag.FixDiagnostics` is collected; after the
    sweep they are fed -- in dataset order -- to the optional
    :class:`~repro.obs.health.AnchorHealthMonitor`, and the interesting
    fixes (every failure, plus the ``worst_n`` largest finite errors)
    are frozen to replayable fix bundles under ``directory``.

    Attributes:
        directory: where to write ``<label>-<index>.npz`` bundles; None
            collects diagnostics (for the health monitor) without
            writing any files.
        worst_n: bundle the N worst successful fixes (0: none).
        capture_failures: bundle every failed fix.
        health: optional anchor health monitor to feed.
        written: paths of the bundles written, filled by the sweep.
    """

    directory: Optional[Union[str, Path]] = None
    worst_n: int = 0
    capture_failures: bool = True
    health: Optional[AnchorHealthMonitor] = None
    written: List[Path] = field(default_factory=list)
    _collected: Dict[
        int, Tuple[ChannelObservations, Optional[FixDiagnostics]]
    ] = field(default_factory=dict, repr=False)
    _lock: LockLike = field(
        default_factory=lambda: make_lock("DiagnosticsCapture._lock"),
        repr=False,
    )

    def collect(
        self,
        fix_index: int,
        observations: ChannelObservations,
        diagnostics: Optional[FixDiagnostics],
    ) -> None:
        """Record one fix's material (thread-safe; workers call this)."""
        with self._lock:
            self._collected[fix_index] = (observations, diagnostics)

    def diagnostics_for(self, fix_index: int) -> Optional[FixDiagnostics]:
        """The captured diagnostics of one fix (None if not captured).

        Read under the lock: the sweep's worker threads may still be
        collecting when a health monitor asks mid-run.
        """
        with self._lock:
            entry = self._collected.get(fix_index)
        return entry[1] if entry is not None else None


def _accepts_diagnostics(localizer: Localizer) -> bool:
    """Whether ``localizer.locate`` takes a ``diagnostics`` keyword."""
    try:
        return "diagnostics" in inspect.signature(localizer.locate).parameters
    except (TypeError, ValueError):
        return False


def _finalize_capture(
    capture: DiagnosticsCapture,
    localizer: Localizer,
    label: str,
    records: List["EvaluationRecord"],
) -> None:
    """Post-sweep: feed the health monitor, write the chosen bundles."""
    observer = get_observer()
    if capture.health is not None:
        for index in sorted(capture._collected):
            diag = capture._collected[index][1]
            if diag is not None:
                capture.health.observe(diag, index)
    if capture.directory is None:
        return
    # Bundles replay through the bundled config, so only a localizer
    # exposing one (BLoc) can be frozen; stubs just skip this step.
    if not (hasattr(localizer, "config") and hasattr(localizer, "engine")):
        return
    chosen = set()
    if capture.capture_failures:
        chosen |= {
            i
            for i, r in enumerate(records)
            if not np.isfinite(r.error_m)
        }
    if capture.worst_n > 0:
        finite = sorted(
            (
                (r.error_m, i)
                for i, r in enumerate(records)
                if np.isfinite(r.error_m)
            ),
            reverse=True,
        )
        chosen |= {i for _, i in finite[: capture.worst_n]}
    chosen &= set(capture._collected)
    if not chosen:
        return
    directory = Path(capture.directory)
    directory.mkdir(parents=True, exist_ok=True)
    for index in sorted(chosen):
        observations, diag = capture._collected[index]
        record = records[index]
        bundle = bundle_from_fix(
            observations,
            localizer,
            label=label,
            fix_index=index,
            estimate=record.estimate,
            error_m=(
                record.error_m if np.isfinite(record.error_m) else None
            ),
            failure_reason=record.failure_reason,
            diagnostics=diag,
        )
        path = directory / bundle_filename(label, index)
        save_fix_bundle(path, bundle)
        capture.written.append(path)
        if observer.enabled:
            observer.metrics.counter("diag.bundles_written").inc()


#: Recognised evaluation backends (see the module docstring).
BACKENDS = ("serial", "thread", "process")


def _resolve_workers(
    workers: Optional[int], num_entries: Optional[int] = None
) -> int:
    """Validate, default and clamp the worker count (None means serial).

    When the entry count is known the request is clamped to it: workers
    beyond one-per-fix only sit idle (or, for the process backend, pay
    a fork for nothing).  The clamped value is what sweeps record as
    ``EvaluationRun.effective_workers``.
    """
    if workers is None:
        return 1
    count = int(workers)
    if count < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if num_entries is not None:
        count = min(count, max(1, int(num_entries)))
    return count


def _resolve_limit(
    limit: Optional[int], observations: Sequence[ChannelObservations]
) -> Sequence[ChannelObservations]:
    """Apply the documented ``limit`` contract to a dataset's entries.

    ``None`` evaluates everything, ``0`` evaluates nothing and positive
    values take the first ``limit`` entries.  Negative values raise: the
    Python slice they used to fall into (``observations[:-1]``) silently
    evaluated all-but-the-last entries, which no caller ever means.
    """
    if limit is None:
        return observations
    count = int(limit)
    if count < 0:
        raise ConfigurationError(
            f"limit must be >= 0 (0 means none, None means all), "
            f"got {limit}"
        )
    return observations[:count]


def _resolve_backend(
    backend: Optional[str],
    workers: int,
    batch_size: Optional[int],
    capture: Optional["DiagnosticsCapture"] = None,
) -> str:
    """Validate and default the backend choice.

    ``None`` picks ``"thread"`` when ``workers > 1`` and ``"serial"``
    otherwise, so existing call sites keep their behaviour.  An explicit
    ``"serial"`` with ``workers > 1`` is a contradiction and raises.
    Diagnostics capture pins the sweep to the in-process, unbatched
    path: process workers would have to ship every fix's observations
    and diagnostics back over IPC, and per-fix diagnostics need per-fix
    ``locate`` calls.
    """
    if backend is None:
        backend = "thread" if workers > 1 else "serial"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    if backend == "serial" and workers > 1:
        raise ConfigurationError(
            f"backend='serial' cannot run with workers={workers}; "
            f"use backend='thread' or 'process'"
        )
    if capture is not None and backend == "process":
        raise ConfigurationError(
            "diagnostics capture requires an in-process backend "
            "(serial or thread)"
        )
    if capture is not None and batch_size is not None:
        raise ConfigurationError(
            "diagnostics capture requires the unbatched path "
            "(batch_size=None)"
        )
    return backend


def _execute_fix(
    localizer: Localizer,
    observations: ChannelObservations,
    fix_index: int,
    label: str,
    transform: Optional[
        Callable[[ChannelObservations], ChannelObservations]
    ] = None,
    with_diagnostics: bool = False,
    capture: Optional["DiagnosticsCapture"] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> EvaluationRecord:
    """One fix of an :func:`evaluate` sweep.

    Module-level rather than a closure so the process backend
    (:mod:`repro.sim.procpool`) can run the exact same body in pool
    workers; ``metrics`` is the calling worker's private registry (None
    when observability is off, in which case the span is a no-op too).
    """
    observer = get_observer()
    if transform is not None:
        observations = transform(observations)
    truth = observations.ground_truth
    failure_reason = None
    diagnostics = None
    with observer.span("fix", index=fix_index, label=label) as span:
        try:
            if with_diagnostics:
                result = localizer.locate(
                    observations, keep_map=False, diagnostics=True
                )
                diagnostics = result.diagnostics
            else:
                result = localizer.locate(observations, keep_map=False)
            estimate = result.position
            error = (estimate - truth).norm()
        except LocalizationError as exc:
            estimate = None
            error = float("inf")
            failure_reason = str(exc)
            # A failing locate() attaches the stages it completed.
            diagnostics = getattr(exc, "diagnostics", None)
            if metrics is not None:
                metrics.counter(
                    f"eval.failures.{type(exc).__name__}"
                ).inc()
    if capture is not None:
        capture.collect(fix_index, observations, diagnostics)
    if metrics is not None:
        metrics.counter("eval.fixes_total").inc()
        metrics.histogram(
            "eval.fix_latency_s", LATENCY_BUCKETS_S
        ).observe(span.duration_s)
    return EvaluationRecord(
        truth=truth,
        estimate=estimate,
        error_m=error,
        failure_reason=failure_reason,
    )


def _execute_batch(
    localizer: Localizer,
    observations_batch: Sequence[ChannelObservations],
    start_index: int,
    label: str,
    transform: Optional[
        Callable[[ChannelObservations], ChannelObservations]
    ] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> List[EvaluationRecord]:
    """One batch of fixes through the batched Eq. 17 path.

    Localizers without a ``locate_batch`` (the AoA / RSSI baselines,
    protocol stubs) fall back to per-fix :func:`_execute_fix` -- batching
    is a BLoc fast path, not a protocol requirement.  Per-fix failures
    come back from ``locate_batch`` as contained exceptions and turn
    into failure records exactly as in the unbatched path.  The per-fix
    latency histogram sees the batch wall time amortized over its fixes,
    so latency totals stay comparable across backends.
    """
    observer = get_observer()
    locate_batch = getattr(localizer, "locate_batch", None)
    if locate_batch is None:
        return [
            _execute_fix(
                localizer,
                observations,
                start_index + offset,
                label,
                transform=transform,
                metrics=metrics,
            )
            for offset, observations in enumerate(observations_batch)
        ]
    batch = (
        [transform(obs) for obs in observations_batch]
        if transform is not None
        else list(observations_batch)
    )
    with observer.span(
        "fix_batch", start=start_index, size=len(batch), label=label
    ) as span:
        outcomes = locate_batch(batch, keep_map=False)
    records = []
    for observations, outcome in zip(batch, outcomes):
        truth = observations.ground_truth
        if isinstance(outcome, LocalizationError):
            estimate = None
            error = float("inf")
            failure_reason = str(outcome)
            if metrics is not None:
                metrics.counter(
                    f"eval.failures.{type(outcome).__name__}"
                ).inc()
        else:
            estimate = outcome.position
            error = (estimate - truth).norm()
            failure_reason = None
        if metrics is not None:
            metrics.counter("eval.fixes_total").inc()
            metrics.histogram(
                "eval.fix_latency_s", LATENCY_BUCKETS_S
            ).observe(span.duration_s / len(batch))
        records.append(
            EvaluationRecord(
                truth=truth,
                estimate=estimate,
                error_m=error,
                failure_reason=failure_reason,
            )
        )
    return records


def _execute_subset_fix(
    localizer: Localizer,
    observations: ChannelObservations,
    fix_index: int,
    label: str,
    subset_size: int,
    metrics: Optional[MetricsRegistry] = None,
) -> EvaluationRecord:
    """One entry of an :func:`evaluate_anchor_subsets` sweep.

    Module-level for the same reason as :func:`_execute_fix`: the
    process backend runs it in pool workers.
    """
    from itertools import combinations

    observer = get_observer()
    truth = observations.ground_truth
    master = observations.master_index
    others = [
        i for i in range(observations.num_anchors) if i != master
    ]
    outcomes = []  # (estimate or None, error) per subset
    failure_reason = None
    with observer.span(
        "fix", index=fix_index, label=label, subset_size=subset_size
    ):
        for chosen in combinations(others, subset_size - 1):
            subset = observations.select_anchors([master, *chosen])
            try:
                result = localizer.locate(subset, keep_map=False)
                outcomes.append(
                    (result.position, (result.position - truth).norm())
                )
            except LocalizationError as exc:
                outcomes.append((None, float("inf")))
                failure_reason = str(exc)
                if metrics is not None:
                    metrics.counter("eval.subset_failures").inc()
                    metrics.counter(
                        f"eval.failures.{type(exc).__name__}"
                    ).inc()
    finite = [e for _, e in outcomes if np.isfinite(e)]
    mean_error = float(np.mean(finite)) if finite else float("inf")
    # The record's error is an aggregate over subsets, so a single
    # "the" estimate usually does not exist; report one only when a
    # subset's own error equals the aggregate (e.g. exactly one
    # subset succeeded), instead of leaking whichever subset ran last.
    estimate = next(
        (est for est, err in outcomes if err == mean_error), None
    )
    return EvaluationRecord(
        truth=truth,
        estimate=estimate,
        error_m=mean_error,
        failure_reason=None if finite else failure_reason,
    )


@guarded_by("_lock", "_registries")
class _WorkerRegistries:
    """One private :class:`MetricsRegistry` per worker thread.

    Workers write their per-fix counters and latency histograms into a
    thread-local registry; :meth:`merge_into` folds every worker registry
    into the session observer after the sweep, so totals match a serial
    run exactly while the hot loop never contends on shared instruments.
    """

    def __init__(self):
        self._local = threading.local()
        self._lock = make_lock("_WorkerRegistries._lock")
        self._registries: List[MetricsRegistry] = []

    def current(self) -> MetricsRegistry:
        """The calling thread's registry (thread-safe; created on
        first use and tracked for the final merge)."""
        registry = getattr(self._local, "registry", None)
        if registry is None:
            registry = MetricsRegistry()
            with self._lock:
                self._registries.append(registry)
            self._local.registry = registry
        return registry

    def merge_into(self, target: MetricsRegistry) -> None:
        """Fold every worker registry into ``target``."""
        with self._lock:
            registries = list(self._registries)
        for registry in registries:
            target.merge(registry)


def _sweep(entries: Sequence, run_fix, workers: int) -> List[EvaluationRecord]:
    """Run ``run_fix(index, entry, metrics)`` over all entries.

    Serial when ``workers == 1``; otherwise entries fan out over a thread
    pool.  ``pool.map`` preserves submission order, so the returned
    records are in dataset order either way.
    """
    observer = get_observer()
    if workers == 1 or len(entries) <= 1:
        metrics = observer.metrics if observer.enabled else None
        return [
            run_fix(index, entry, metrics)
            for index, entry in enumerate(entries)
        ]
    worker_metrics = _WorkerRegistries() if observer.enabled else None
    # The active-span stack is thread-local: without re-attaching the
    # caller's span in each worker, every per-fix span under workers=N
    # would be an orphaned root instead of a child of the evaluation
    # span.  The parent crosses the worker boundary as a picklable
    # SpanHandle (span id + depth), not as the Span object -- the same
    # propagation contract a process-pool backend will use -- and
    # tracer.attached() materialises it as a borrowed placeholder.
    parent = observer.tracer.active() if observer.enabled else None
    handle = parent.handle() if parent is not None else None

    def job(item):
        index, entry = item
        metrics = worker_metrics.current() if worker_metrics else None
        if handle is not None:
            with observer.tracer.attached(handle):
                return run_fix(index, entry, metrics)
        return run_fix(index, entry, metrics)

    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="eval-worker"
    ) as pool:
        records = list(pool.map(job, enumerate(entries)))
    if worker_metrics is not None:
        worker_metrics.merge_into(observer.metrics)
    return records


def evaluate(
    localizer: Localizer,
    dataset: EvaluationDataset,
    label: str = "",
    transform: Optional[
        Callable[[ChannelObservations], ChannelObservations]
    ] = None,
    limit: Optional[int] = None,
    workers: Optional[int] = None,
    capture: Optional[DiagnosticsCapture] = None,
    backend: Optional[str] = None,
    batch_size: Optional[int] = None,
) -> EvaluationRun:
    """Run a localizer over every dataset entry.

    Args:
        localizer: the scheme under test.
        dataset: ground-truth-tagged observations.
        label: report name.
        transform: optional per-entry observation transform (antenna /
            anchor / bandwidth subsetting).
        limit: evaluate only the first ``limit`` entries (0 means none,
            None means all; negative values raise
            :class:`~repro.errors.ConfigurationError`).
        workers: worker count for parallel evaluation (None or 1 runs
            serially), clamped to the entry count.  Records keep dataset
            order and per-worker metrics are merged into the active
            observer (see module docstring); the localizer must tolerate
            concurrent ``locate`` calls, which BLoc and the baselines do.
        capture: opt-in per-fix diagnostics collection; see
            :class:`DiagnosticsCapture`.  Fix bundles for failures and
            the worst-N fixes are written after the sweep, and the
            capture's health monitor (when set) sees every fix's
            diagnostics in dataset order.  Requires the in-process
            unbatched path (``backend`` serial/thread, no
            ``batch_size``).
        backend: ``"serial"``, ``"thread"`` or ``"process"`` (None picks
            thread when ``workers > 1``, serial otherwise).  The process
            backend runs fixes in worker processes sharing one
            steering cache through shared memory; see
            :mod:`repro.sim.procpool`.
        batch_size: stack B fixes into one batched Eq. 17 evaluation
            per task (localizers without ``locate_batch`` silently fall
            back to per-fix calls).  Results match the unbatched path up
            to BLAS reduction reordering.

    A fix that raises :class:`~repro.errors.LocalizationError` is recorded
    as failed rather than aborting the run -- a localizer that cannot
    produce a fix is a (bad) data point, not a crash.  Under the process
    backend a fix lost to a *worker crash* is likewise a failure record,
    with the worker death named in ``failure_reason``.
    """
    observer = get_observer()
    entries = _resolve_limit(limit, dataset.observations)
    workers = _resolve_workers(workers, len(entries))
    if batch_size is not None and int(batch_size) < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}"
        )
    backend = _resolve_backend(backend, workers, batch_size, capture)
    with_diagnostics = capture is not None and _accepts_diagnostics(
        localizer
    )

    def run_fix(
        fix_index: int,
        observations: ChannelObservations,
        metrics: Optional[MetricsRegistry],
    ) -> EvaluationRecord:
        return _execute_fix(
            localizer,
            observations,
            fix_index,
            label,
            transform=transform,
            with_diagnostics=with_diagnostics,
            capture=capture,
            metrics=metrics,
        )

    def run_batch(
        task_index: int,
        task: Tuple[int, List[ChannelObservations]],
        metrics: Optional[MetricsRegistry],
    ) -> List[EvaluationRecord]:
        start, chunk = task
        return _execute_batch(
            localizer,
            chunk,
            start,
            label,
            transform=transform,
            metrics=metrics,
        )

    # The evaluate root span is what per-fix spans merge back under when
    # workers fan out (thread pools via _sweep's handle propagation,
    # process pools via procpool's span absorption); it also gives the
    # sampling profiler a stable outermost frame for sweep time.  As a
    # root span it mints the sweep's trace_id, which the propagated
    # handles carry into every worker -- one sweep, one trace, so
    # `repro obs trace` reconstructs the whole fan-out from the export.
    with observer.span(
        "evaluate",
        label=label,
        workers=workers,
        fixes=len(entries),
        backend=backend,
        batch_size=batch_size or 0,
    ):
        if backend == "process":
            from repro.sim.procpool import process_sweep

            records = process_sweep(
                localizer,
                entries,
                label=label,
                transform=transform,
                workers=workers,
                batch_size=batch_size,
            )
        elif batch_size is not None:
            tasks = [
                (start, entries[start:start + batch_size])
                for start in range(0, len(entries), batch_size)
            ]
            nested = _sweep(tasks, run_batch, workers)
            records = [
                record for task_records in nested for record in task_records
            ]
        else:
            records = _sweep(entries, run_fix, workers)
    if capture is not None:
        _finalize_capture(capture, localizer, label, records)
    return EvaluationRun(
        label=label,
        records=records,
        backend=backend,
        effective_workers=workers,
        batch_size=batch_size,
    )


def evaluate_anchor_subsets(
    localizer: Localizer,
    dataset: EvaluationDataset,
    subset_size: int,
    label: str = "",
    limit: Optional[int] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    batch_size: Optional[int] = None,
) -> EvaluationRun:
    """Average over all anchor subsets of a given size (Section 8.3).

    The paper reports, for 3 of 4 anchors, "all possible subsets of the 4
    deployed anchors and ... the average of those errors for each data
    point"; this reproduces that protocol.  Subsets must contain the
    master (its packets anchor the Eq. 10 correction).

    ``workers`` parallelizes across dataset entries (each entry's subset
    loop stays serial inside its worker), with the same ordering and
    metric-merging guarantees as :func:`evaluate`; ``backend`` picks the
    thread or process pool as there.  Subset geometries differ per
    sub-fix, so the process backend skips the shared-memory steering
    publication and lets each worker build its own cache.

    ``batch_size`` is accepted for signature parity with
    :func:`evaluate` but must stay None: every sub-fix of an entry runs
    on a *different* anchor geometry, so there is no shared steering
    matrix for a batched Eq. 17 pass to reuse -- requesting one is a
    configuration error, not a silent no-op.
    """
    observer = get_observer()
    if batch_size is not None:
        raise ConfigurationError(
            "anchor-subset sweeps cannot batch: each subset evaluates "
            "a different anchor geometry, so batch_size must be None "
            f"(got {batch_size})"
        )
    entries = _resolve_limit(limit, dataset.observations)
    workers = _resolve_workers(workers, len(entries))
    backend = _resolve_backend(backend, workers, None)

    def run_fix(
        fix_index: int,
        observations: ChannelObservations,
        metrics: Optional[MetricsRegistry],
    ) -> EvaluationRecord:
        return _execute_subset_fix(
            localizer, observations, fix_index, label, subset_size, metrics
        )

    with observer.span(
        "evaluate",
        label=label,
        workers=workers,
        fixes=len(entries),
        subset_size=subset_size,
        backend=backend,
    ):
        if backend == "process":
            from repro.sim.procpool import process_sweep

            records = process_sweep(
                localizer,
                entries,
                label=label,
                transform=None,
                workers=workers,
                batch_size=None,
                mode="subsets",
                subset_size=subset_size,
            )
        else:
            records = _sweep(entries, run_fix, workers)
    return EvaluationRun(
        label=label,
        records=records,
        backend=backend,
        effective_workers=workers,
    )
