"""Testbeds: an environment plus a deployed anchor ring.

The default testbed mirrors the paper's Section 7 setup: a 5 m x 6 m room
(we use the paper's plot coordinates, x in [-3, 3] and y in [-2, 3]),
anchors at the centre of each edge facing inwards, and clutter -- "robotic
equipment, large metal cupboards" -- that makes the room multipath-rich and
creates NLOS pockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.constants import (
    BLOC_DEFAULT_NUM_ANTENNAS,
    BLOC_ROOM_HEIGHT_M,
    BLOC_ROOM_WIDTH_M,
)
from repro.errors import ConfigurationError
from repro.rf.antenna import Anchor, default_anchor_ring
from repro.rf.channel_model import ChannelSimulator
from repro.rf.environment import Environment
from repro.rf.imaging import ImagingConfig
from repro.rf.materials import ABSORBER, GLASS, METAL
from repro.utils.geometry2d import Point
from repro.utils.rng import RngLike, derive_rng


@dataclass
class Testbed:
    """A deployable evaluation setup.

    Attributes:
        environment: the room and clutter.
        anchors: deployed anchor points.
        master_index: which anchor acts as the BLE master.
        channel_simulator: shared propagation model over the environment.
    """

    environment: Environment
    anchors: List[Anchor]
    master_index: int = 0
    channel_simulator: ChannelSimulator = field(init=False, repr=False)
    imaging: ImagingConfig = field(default_factory=ImagingConfig)

    def __post_init__(self):
        if not self.anchors:
            raise ConfigurationError("a testbed needs at least one anchor")
        if not 0 <= self.master_index < len(self.anchors):
            raise ConfigurationError("master index out of range")
        self.channel_simulator = ChannelSimulator(
            self.environment, imaging=self.imaging
        )

    @property
    def master(self) -> Anchor:
        """The master anchor."""
        return self.anchors[self.master_index]

    def tag_area_bounds(self, margin: float = 0.35):
        """Rectangle tags may occupy: the room minus a wall margin."""
        x_min, x_max, y_min, y_max = self.environment.bounds()
        return (x_min + margin, x_max - margin, y_min + margin, y_max - margin)

    def with_antennas(self, num_antennas: int) -> "Testbed":
        """Same testbed with every anchor truncated to fewer antennas."""
        return Testbed(
            environment=self.environment,
            anchors=[a.truncated(num_antennas) for a in self.anchors],
            master_index=self.master_index,
            imaging=self.imaging,
        )


def vicon_testbed(
    num_antennas: int = BLOC_DEFAULT_NUM_ANTENNAS,
    clutter_seed: RngLike = 7,
    num_extra_clutter: int = 2,
) -> Testbed:
    """The paper's VICON-room testbed (Fig. 7c), with multipath clutter.

    The fixed clutter models the shared lab space: a large metal cupboard
    near the north-east area, robotic equipment (metal) in the south-west,
    a glass screen panel, and an absorbing divider.  ``num_extra_clutter``
    additional small metal faces are placed pseudo-randomly from
    ``clutter_seed`` to de-idealise the geometry.

    Anchors: AP1 south, AP2 east, AP3 north, AP4 west; AP1 is the master.
    """
    env = Environment(
        width=BLOC_ROOM_WIDTH_M,
        height=BLOC_ROOM_HEIGHT_M,
        origin=Point(-3.0, -2.0),
    )
    # The paper's clutter (robot equipment, metal cupboards) surrounds the
    # VICON capture volume: it sits near the walls, so the room is rich in
    # multipath while the tag area itself keeps line of sight most of the
    # time.  Faces are placed just outside the tag margin.
    env.add_reflector(
        Point(2.72, 0.6), Point(2.72, 2.2), METAL, name="cupboard"
    )
    env.add_reflector(
        Point(-2.4, -1.72), Point(-1.3, -1.72), METAL, name="robot-a"
    )
    env.add_reflector(
        Point(-2.72, -1.2), Point(-2.72, -0.3), METAL, name="robot-b"
    )
    env.add_reflector(
        Point(-0.8, 2.72), Point(0.6, 2.72), GLASS, name="screen"
    )
    env.add_reflector(
        Point(0.9, -1.74), Point(1.7, -1.74), ABSORBER, name="divider"
    )
    # One interior obstruction: a narrow equipment rack that occasionally
    # blocks a tag-anchor pair (the paper's room is shared lab space).
    env.add_reflector(
        Point(1.55, 0.15), Point(1.9, 0.4), METAL, name="rack"
    )
    rng = derive_rng(clutter_seed, "testbed-clutter")
    x_min, x_max, y_min, y_max = env.bounds()
    perimeter = [
        ("south", lambda u: Point(x_min + 0.8 + u * (x_max - x_min - 1.6), y_min + 0.28), Point(1.0, 0.0)),
        ("east", lambda u: Point(x_max - 0.28, y_min + 0.8 + u * (y_max - y_min - 1.6)), Point(0.0, 1.0)),
        ("north", lambda u: Point(x_min + 0.8 + u * (x_max - x_min - 1.6), y_max - 0.28), Point(1.0, 0.0)),
        ("west", lambda u: Point(x_min + 0.28, y_min + 0.8 + u * (y_max - y_min - 1.6)), Point(0.0, 1.0)),
    ]
    for k in range(num_extra_clutter):
        side_name, side, direction = perimeter[k % 4]
        centre = side(float(rng.uniform(0.1, 0.9)))
        half = float(rng.uniform(0.15, 0.3))
        # Cabinets and racks stand parallel to their wall, so the extra
        # clutter never intrudes into the tag area.
        env.add_reflector(
            Point(centre.x - direction.x * half, centre.y - direction.y * half),
            Point(centre.x + direction.x * half, centre.y + direction.y * half),
            METAL,
            name=f"clutter-{side_name}-{k}",
        )
    anchors = default_anchor_ring(
        room_width=BLOC_ROOM_WIDTH_M,
        room_height=BLOC_ROOM_HEIGHT_M,
        origin=Point(-3.0, -2.0),
        num_antennas=num_antennas,
    )
    return Testbed(environment=env, anchors=anchors, master_index=0)


def open_room_testbed(
    num_antennas: int = BLOC_DEFAULT_NUM_ANTENNAS,
) -> Testbed:
    """A clutter-free room: the near-LOS setting of the microbenchmarks
    (Fig. 8b places "the target and two APs in line of sight in a
    relatively multipath free environment")."""
    env = Environment(
        width=BLOC_ROOM_WIDTH_M,
        height=BLOC_ROOM_HEIGHT_M,
        origin=Point(-3.0, -2.0),
    )
    anchors = default_anchor_ring(
        room_width=BLOC_ROOM_WIDTH_M,
        room_height=BLOC_ROOM_HEIGHT_M,
        origin=Point(-3.0, -2.0),
        num_antennas=num_antennas,
    )
    return Testbed(environment=env, anchors=anchors, master_index=0)
