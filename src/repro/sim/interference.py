"""Wi-Fi interference: collisions that cost BLoc channel measurements.

Section 8.6's premise made physical: 2.4 GHz Wi-Fi traffic occupies 20 MHz
blocks, and a BLE connection event landing inside an active block while a
Wi-Fi frame is on air is lost (CRC failure at the anchors), so that band's
CSI is missing from the sweep.  BLoc degrades gracefully -- the remaining
comb of channels still spans most of the 80 MHz -- and adaptive channel
maps (blacklisting) trade lost events for fewer, reliable channels.

:class:`InterferedMeasurementModel` wraps a channel-fidelity model and
deletes the affected bands per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence

import numpy as np

from repro.ble.channels import ChannelMap, data_channel_to_frequency
from repro.core.observations import ChannelObservations
from repro.errors import ConfigurationError, MeasurementError
from repro.sim.measurement import ChannelMeasurementModel
from repro.utils.geometry2d import Point
from repro.utils.rng import RngLike, derive_rng

#: Centre frequencies [Hz] of the non-overlapping 2.4 GHz Wi-Fi channels.
WIFI_CHANNEL_CENTRES = {1: 2.412e9, 6: 2.437e9, 11: 2.462e9}

#: Occupied half-bandwidth of a 20 MHz Wi-Fi transmission.
WIFI_HALF_WIDTH_HZ = 10e6


@dataclass(frozen=True)
class WifiNetwork:
    """One interfering Wi-Fi network.

    Attributes:
        channel: Wi-Fi channel number (1, 6 or 11).
        duty_cycle: fraction of airtime the network transmits (0..1).
    """

    channel: int
    duty_cycle: float

    def __post_init__(self):
        if self.channel not in WIFI_CHANNEL_CENTRES:
            raise ConfigurationError(
                f"Wi-Fi channel must be one of "
                f"{sorted(WIFI_CHANNEL_CENTRES)}, got {self.channel}"
            )
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ConfigurationError("duty cycle must be in [0, 1]")

    def overlaps(self, frequency_hz: float) -> bool:
        """Whether a BLE band centre falls inside this network's block."""
        centre = WIFI_CHANNEL_CENTRES[self.channel]
        return abs(frequency_hz - centre) < WIFI_HALF_WIDTH_HZ


def affected_data_channels(networks: Sequence[WifiNetwork]) -> List[int]:
    """BLE data channels overlapped by any of the given networks."""
    out = []
    for channel in range(37):
        frequency = data_channel_to_frequency(channel)
        if any(network.overlaps(frequency) for network in networks):
            out.append(channel)
    return out


def blacklist_map(networks: Sequence[WifiNetwork]) -> ChannelMap:
    """Channel map avoiding every listed network (adaptive hopping)."""
    return ChannelMap.from_blacklist(affected_data_channels(networks))


def inject_band_outage(
    observations: ChannelObservations,
    anchor_index: int,
    band_indices: Sequence[int],
) -> ChannelObservations:
    """Knock out specific bands at *one* anchor (fault injection).

    Unlike the Wi-Fi model above -- which deletes a lost band for every
    anchor, as a real collision at the tag's transmission does -- this
    simulates a receive-side fault: anchor ``anchor_index`` records
    nothing usable on the given bands (front-end desense, a wedged
    radio) while the other anchors keep theirs.  The affected cells are
    zeroed, which :func:`repro.core.correction.usable_band_mask` and the
    diagnostics layer treat as missing; the health monitor's
    ``band_outage`` detector exists to catch exactly this signature.

    Returns:
        A new :class:`ChannelObservations`; the input is not modified.
    """
    if not 0 <= anchor_index < observations.num_anchors:
        raise ConfigurationError(
            f"anchor index {anchor_index} out of range "
            f"[0, {observations.num_anchors})"
        )
    bands = np.asarray(list(band_indices), dtype=int)
    if bands.size and (
        bands.min() < 0 or bands.max() >= observations.num_bands
    ):
        raise ConfigurationError("band index out of range")
    tag = observations.tag_to_anchor.copy()
    master = observations.master_to_anchor.copy()
    tag[anchor_index, :, bands] = 0.0
    master[anchor_index, :, bands] = 0.0
    snr = observations.band_snr_db
    if snr is not None:
        snr = snr.copy()
        snr[anchor_index, bands] = np.nan
    return replace(
        observations,
        tag_to_anchor=tag,
        master_to_anchor=master,
        band_snr_db=snr,
    )


@dataclass
class InterferedMeasurementModel:
    """A measurement model whose sweeps lose events to Wi-Fi collisions.

    Attributes:
        base: the underlying channel-fidelity measurement model.
        networks: active Wi-Fi networks.
        min_surviving_bands: a sweep that keeps fewer bands than this
            raises :class:`~repro.errors.MeasurementError` (the real
            system would retry the sweep).
        seed: RNG seed for the per-event collision draws.
    """

    base: ChannelMeasurementModel
    networks: List[WifiNetwork] = field(default_factory=list)
    min_surviving_bands: int = 4
    seed: RngLike = 0

    def __post_init__(self):
        if self.min_surviving_bands < 2:
            raise ConfigurationError("need at least 2 surviving bands")

    def collision_probability(self, frequency_hz: float) -> float:
        """Probability one event at this frequency is lost."""
        survival = 1.0
        for network in self.networks:
            if network.overlaps(frequency_hz):
                survival *= 1.0 - network.duty_cycle
        return 1.0 - survival

    def measure(
        self, tag: Point, round_index: int = 0
    ) -> ChannelObservations:
        """One sweep with per-event collision losses applied.

        Raises:
            MeasurementError: when too few bands survive.
        """
        observations = self.base.measure(tag, round_index=round_index)
        rng = derive_rng(self.seed, "wifi", round_index)
        survivors = [
            k
            for k, frequency in enumerate(observations.frequencies_hz)
            if rng.uniform() >= self.collision_probability(frequency)
        ]
        if len(survivors) < self.min_surviving_bands:
            raise MeasurementError(
                f"only {len(survivors)} bands survived interference"
            )
        return observations.select_bands(survivors)

    def expected_loss_fraction(self) -> float:
        """Mean fraction of sweep events lost to collisions."""
        freqs = self.base.frequencies()
        return float(
            np.mean([self.collision_probability(f) for f in freqs])
        )
