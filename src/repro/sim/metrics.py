"""Localization-error metrics: CDFs, percentiles, spatial error maps.

Everything Section 8 reports is computed here: median and 90th-percentile
errors, full CDFs (Fig. 9a/9b/9c, Fig. 12), and the spatially binned RMSE
map of Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.geometry2d import Point


@dataclass
class ErrorStats:
    """Summary statistics of a localization-error sample.

    Attributes:
        errors_m: the raw per-fix errors.
    """

    errors_m: np.ndarray

    def __post_init__(self):
        self.errors_m = np.sort(np.asarray(self.errors_m, dtype=float))
        if self.errors_m.size == 0:
            raise ConfigurationError("no errors to summarise")
        if np.any(self.errors_m < 0):
            raise ConfigurationError("errors must be non-negative")

    @property
    def count(self) -> int:
        """Number of fixes."""
        return int(self.errors_m.size)

    def median_m(self) -> float:
        """Median error [m]."""
        return float(np.median(self.errors_m))

    def percentile_m(self, q: float) -> float:
        """q-th percentile error [m] (q in [0, 100])."""
        return float(np.percentile(self.errors_m, q))

    def mean_m(self) -> float:
        """Mean error [m]."""
        return float(np.mean(self.errors_m))

    def rmse_m(self) -> float:
        """Root-mean-square error [m]."""
        return float(np.sqrt(np.mean(self.errors_m**2)))

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF as ``(errors, cumulative probability)``."""
        n = self.errors_m.size
        return self.errors_m, np.arange(1, n + 1) / n

    def fraction_below(self, threshold_m: float) -> float:
        """Fraction of fixes with error below a threshold."""
        return float(np.mean(self.errors_m < threshold_m))

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"n={self.count} median={self.median_m() * 100:.0f}cm "
            f"p90={self.percentile_m(90) * 100:.0f}cm "
            f"mean={self.mean_m() * 100:.0f}cm"
        )


def errors_from_fixes(
    estimates: Sequence[Point], truths: Sequence[Point]
) -> ErrorStats:
    """Per-fix Euclidean errors from paired estimate/truth positions."""
    if len(estimates) != len(truths):
        raise ConfigurationError("estimate/truth counts differ")
    errors = [
        (estimate - truth).norm()
        for estimate, truth in zip(estimates, truths)
    ]
    return ErrorStats(np.array(errors))


def spatial_rmse_map(
    truths: Sequence[Point],
    errors_m: Sequence[float],
    bounds: Tuple[float, float, float, float],
    bin_size_m: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Spatially binned RMSE (Fig. 13).

    Args:
        truths: true tag positions.
        errors_m: matching localization errors.
        bounds: ``(x_min, x_max, y_min, y_max)`` of the map.
        bin_size_m: bin side.

    Returns:
        ``(x_edges, y_edges, rmse)`` where rmse has shape
        ``(len(y_edges) - 1, len(x_edges) - 1)`` and NaN in empty bins.
    """
    if len(truths) != len(errors_m):
        raise ConfigurationError("truth/error counts differ")
    if bin_size_m <= 0:
        raise ConfigurationError("bin size must be > 0")
    x_min, x_max, y_min, y_max = bounds
    x_edges = np.arange(x_min, x_max + bin_size_m, bin_size_m)
    y_edges = np.arange(y_min, y_max + bin_size_m, bin_size_m)
    sums = np.zeros((y_edges.size - 1, x_edges.size - 1))
    counts = np.zeros_like(sums)
    for point, error in zip(truths, errors_m):
        col = int(np.clip((point.x - x_min) // bin_size_m, 0, sums.shape[1] - 1))
        row = int(np.clip((point.y - y_min) // bin_size_m, 0, sums.shape[0] - 1))
        sums[row, col] += float(error) ** 2
        counts[row, col] += 1
    with np.errstate(invalid="ignore", divide="ignore"):
        rmse = np.sqrt(sums / counts)
    rmse[counts == 0] = np.nan
    return x_edges, y_edges, rmse


def cdf_table(
    stats: ErrorStats, thresholds_m: Sequence[float]
) -> List[Tuple[float, float]]:
    """``(threshold, fraction below)`` rows for printing CDF curves."""
    return [(t, stats.fraction_below(t)) for t in thresholds_m]


def format_comparison_row(
    label: str,
    paper_median_cm: Optional[float],
    stats: ErrorStats,
    paper_p90_cm: Optional[float] = None,
) -> str:
    """A paper-vs-measured row used by every benchmark's report."""
    parts = [f"{label:<34}"]
    if paper_median_cm is not None:
        parts.append(f"paper median={paper_median_cm:6.0f}cm")
    parts.append(f"measured median={stats.median_m() * 100:6.1f}cm")
    if paper_p90_cm is not None:
        parts.append(f"paper p90={paper_p90_cm:6.0f}cm")
    parts.append(f"measured p90={stats.percentile_m(90) * 100:6.1f}cm")
    return "  ".join(parts)
