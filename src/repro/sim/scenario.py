"""Scenario sampling: where the tag goes during an evaluation.

The paper measures 1700 pseudo-random tag placements covering the whole
room with ~10 cm nearest-neighbour spacing (Section 7).  We reproduce the
coverage with seeded uniform sampling plus an optional minimum-separation
constraint, and also provide grid sweeps for the spatial-error map
(Fig. 13).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.testbed import Testbed
from repro.utils.geometry2d import Point
from repro.utils.rng import RngLike, make_rng


def sample_tag_positions(
    testbed: Testbed,
    count: int,
    seed: RngLike = 0,
    min_separation_m: float = 0.0,
    margin_m: float = 0.35,
) -> List[Point]:
    """Sample tag positions uniformly over the testbed's tag area.

    Args:
        testbed: defines the room and the wall margin.
        count: number of positions.
        seed: RNG seed for reproducibility.
        min_separation_m: optional hard minimum pairwise distance; uses
            rejection sampling with a generous retry budget.
        margin_m: distance kept from the walls.

    Raises:
        ConfigurationError: if the separation constraint cannot be met.
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    rng = make_rng(seed)
    x_min, x_max, y_min, y_max = testbed.tag_area_bounds(margin_m)
    positions: List[Point] = []
    attempts = 0
    max_attempts = max(10_000, count * 200)
    while len(positions) < count:
        attempts += 1
        if attempts > max_attempts:
            raise ConfigurationError(
                f"could not place {count} positions with separation "
                f"{min_separation_m} m (placed {len(positions)})"
            )
        candidate = Point(
            float(rng.uniform(x_min, x_max)), float(rng.uniform(y_min, y_max))
        )
        if min_separation_m > 0 and any(
            (candidate - p).norm() < min_separation_m for p in positions
        ):
            continue
        positions.append(candidate)
    return positions


def grid_tag_positions(
    testbed: Testbed,
    spacing_m: float = 0.5,
    margin_m: float = 0.35,
) -> List[Point]:
    """Regular grid of tag positions (for spatial-error maps, Fig. 13)."""
    if spacing_m <= 0:
        raise ConfigurationError("spacing must be > 0")
    x_min, x_max, y_min, y_max = testbed.tag_area_bounds(margin_m)
    xs = np.arange(x_min, x_max + 1e-9, spacing_m)
    ys = np.arange(y_min, y_max + 1e-9, spacing_m)
    return [Point(float(x), float(y)) for y in ys for x in xs]


def walking_path(
    testbed: Testbed,
    num_points: int = 50,
    seed: RngLike = 3,
    step_m: float = 0.25,
    margin_m: float = 0.5,
) -> List[Point]:
    """A smooth pseudo-random walk through the room (tracking demos)."""
    if num_points < 2:
        raise ConfigurationError("a path needs at least 2 points")
    rng = make_rng(seed)
    x_min, x_max, y_min, y_max = testbed.tag_area_bounds(margin_m)
    x = float(rng.uniform(x_min, x_max))
    y = float(rng.uniform(y_min, y_max))
    heading = float(rng.uniform(0, 2 * np.pi))
    points = [Point(x, y)]
    for _ in range(num_points - 1):
        heading += float(rng.normal(0.0, 0.5))
        x = min(max(x + step_m * np.cos(heading), x_min), x_max)
        y = min(max(y + step_m * np.sin(heading), y_min), y_max)
        points.append(Point(x, y))
    return points
