"""Measurement campaigns: simulate what the anchors actually record.

Two fidelities produce the same :class:`~repro.core.observations.
ChannelObservations` interface:

* **Channel fidelity** (:class:`ChannelMeasurementModel`): the physical
  channels of Eq. 2 are synthesised directly, then multiplied by the
  per-hop oscillator phasors and perturbed with estimation noise.  This is
  the workhorse for the 1700-point evaluation sweeps.
* **IQ fidelity** (:class:`IqMeasurementModel`): every packet of every
  connection event is GFSK-modulated, propagated, captured, re-acquired by
  correlation and fed through the real CSI extractor (Section 4).  Slower,
  used by microbenchmarks and integration tests; a dedicated test checks
  the two fidelities agree.

The per-event mechanics follow Fig. 5: the tag's packet is heard by all
anchors (giving ``h-hat``), the master's response is heard by the slaves
(giving ``H-hat``), and nobody retunes between the two packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.ble.channels import ChannelMap, data_channel_to_frequency
from repro.ble.gfsk import GfskDemodulator
from repro.ble.link_layer import Connection, establish_connection
from repro.core.csi import extract_band_csi
from repro.core.observations import ChannelObservations
from repro.errors import MeasurementError, ReproError
from repro.rf.noise import channel_estimation_noise
from repro.rf.oscillator import Oscillator
from repro.sdr.frontend import RadioFrontEnd
from repro.sdr.receiver import PacketDetector
from repro.sim.testbed import Testbed
from repro.utils.geometry2d import Point
from repro.utils.rng import RngLike, derive_rng


@dataclass
class ChannelMeasurementModel:
    """Fast channel-fidelity measurement simulation.

    Attributes:
        testbed: environment and anchors.
        snr_db: per-measurement SNR of the channel estimates.
        channel_map: BLE channels swept (default: all 37 data channels).
        oscillator_drift_std: intra-dwell phase drift [rad/sqrt(s)]; 0
            keeps Eq. 10 exact, > 0 injects the residual per-band phase
            error a real PLL leaves between the two packets of an event.
            The default (30 rad/sqrt(s) over a 150 us packet gap, i.e.
            ~0.37 rad per draw) together with the default SNR, element
            mismatch and calibration error is calibrated against the
            paper's headline numbers (see EXPERIMENTS.md); the corrected
            cross-band phase then looks like Fig. 8b: clearly linear,
            with visible wiggle.
        packet_gap_s: time between the two packets of one event (only
            matters with drift enabled).
        calibration_error_m: std of the fixed per-element installation
            offset between surveyed and true antenna positions.
        element_phase_error_deg: std of the fixed per-element RF-chain
            phase mismatch (cables, LNA spread).  Real arrays need a
            calibration pass to remove this; the residual is what limits
            angle estimation in practice.
        element_gain_error_db: std of the fixed per-element gain mismatch.
        seed: master seed for offsets, noise and calibration error.
    """

    testbed: Testbed
    snr_db: float = 18.0
    channel_map: ChannelMap = field(default_factory=ChannelMap.all_channels)
    oscillator_drift_std: float = 30.0
    packet_gap_s: float = 150e-6
    calibration_error_m: float = 0.025
    element_phase_error_deg: float = 45.0
    element_gain_error_db: float = 1.0
    seed: RngLike = 0
    _true_elements: Optional[dict] = field(
        init=False, default=None, repr=False
    )
    _element_response: Optional[np.ndarray] = field(
        init=False, default=None, repr=False
    )

    def frequencies(self) -> np.ndarray:
        """Band centre frequencies of the sweep, ascending."""
        return np.array(sorted(self.channel_map.frequencies()))

    def _element_positions(self) -> dict:
        """True (miscalibrated) element positions, fixed per deployment.

        The localizer works with the *surveyed* anchor geometry; the
        signals propagate from/to the physically installed elements, which
        differ by a per-element Gaussian offset of
        ``calibration_error_m``.  This array-calibration mismatch is one
        of the real-world effects that keeps CSI localization at the
        decimetre scale instead of carrier-phase (millimetre) scale.
        """
        if self._true_elements is None:
            rng = derive_rng(self.seed, "calibration")
            elements = {}
            for i, anchor in enumerate(self.testbed.anchors):
                positions = []
                for j in range(anchor.num_antennas):
                    nominal = anchor.antenna_position(j)
                    dx, dy = rng.normal(0.0, self.calibration_error_m, 2)
                    positions.append(
                        Point(nominal.x + float(dx), nominal.y + float(dy))
                    )
                elements[i] = positions
            self._true_elements = elements
        return self._true_elements

    def _element_responses(self) -> np.ndarray:
        """Fixed complex per-element RF-chain response, shape (I, J).

        Models the residual gain/phase mismatch between the receive
        chains of one anchor after (imperfect) array calibration.
        """
        if self._element_response is None:
            anchors = self.testbed.anchors
            shape = (len(anchors), anchors[0].num_antennas)
            rng = derive_rng(self.seed, "element-response")
            phase = np.radians(
                rng.normal(0.0, self.element_phase_error_deg, shape)
            )
            gain = 10.0 ** (
                rng.normal(0.0, self.element_gain_error_db, shape) / 20.0
            )
            self._element_response = gain * np.exp(1j * phase)
        return self._element_response

    def _physical_channels(self, tag: Point) -> tuple:
        """True physical channels for one tag position.

        Returns ``(tag_to_anchor, master_to_anchor)`` of shape (I, J, K).
        """
        sim = self.testbed.channel_simulator
        anchors = self.testbed.anchors
        freqs = self.frequencies()
        num_anchors = len(anchors)
        num_antennas = anchors[0].num_antennas
        tag_to_anchor = np.zeros(
            (num_anchors, num_antennas, freqs.size), dtype=complex
        )
        master_to_anchor = np.zeros_like(tag_to_anchor)
        elements = self._element_positions()
        responses = self._element_responses()
        master_tx = elements[self.testbed.master_index][0]
        for i in range(num_anchors):
            for j, rx in enumerate(elements[i]):
                tag_to_anchor[i, j] = responses[i, j] * np.atleast_1d(
                    sim.channel(tag, rx, freqs)
                )
                if i != self.testbed.master_index:
                    master_to_anchor[i, j] = responses[i, j] * np.atleast_1d(
                        sim.channel(master_tx, rx, freqs)
                    )
        return tag_to_anchor, master_to_anchor

    def measure(
        self, tag: Point, round_index: int = 0
    ) -> ChannelObservations:
        """Measure one full localization sweep for a tag position.

        ``round_index`` decorrelates the random offsets and noise between
        repeated measurements of the same position.
        """
        anchors = self.testbed.anchors
        master_index = self.testbed.master_index
        freqs = self.frequencies()
        tag_true, master_true = self._physical_channels(tag)
        rng = derive_rng(
            self.seed,
            "measure",
            round_index,
            int(round(tag.x * 1000)),
            int(round(tag.y * 1000)),
        )
        tag_osc = Oscillator(
            name="tag",
            drift_std_rad_per_s=self.oscillator_drift_std,
            rng=derive_rng(rng, "tag-osc"),
        )
        anchor_oscs = [
            Oscillator(
                name=a.name,
                drift_std_rad_per_s=self.oscillator_drift_std,
                rng=derive_rng(rng, "anchor-osc", i),
            )
            for i, a in enumerate(anchors)
        ]
        measured_tag = np.empty_like(tag_true)
        measured_master = np.empty_like(master_true)
        for k in range(freqs.size):
            # Every hop: everyone retunes, acquiring fresh random phases.
            tag_osc.retune()
            for osc in anchor_oscs:
                osc.retune()
            phi_tag = tag_osc.phase_offset(0.0)
            phi_master = anchor_oscs[master_index].phase_offset(
                self.packet_gap_s
            )
            for i in range(len(anchors)):
                phi_rx_tagpkt = anchor_oscs[i].phase_offset(0.0)
                measured_tag[i, :, k] = tag_true[i, :, k] * np.exp(
                    1j * (phi_tag - phi_rx_tagpkt)
                )
                if i != master_index:
                    phi_rx_rsppkt = anchor_oscs[i].phase_offset(
                        self.packet_gap_s
                    )
                    measured_master[i, :, k] = master_true[i, :, k] * np.exp(
                        1j * (phi_master - phi_rx_rsppkt)
                    )
        reference_power = float(np.mean(np.abs(tag_true) ** 2))
        measured_tag = channel_estimation_noise(
            measured_tag,
            self.snr_db,
            rng=derive_rng(rng, "noise-tag"),
            reference_power=reference_power,
        )
        noisy_master = channel_estimation_noise(
            measured_master,
            self.snr_db,
            rng=derive_rng(rng, "noise-master"),
            reference_power=reference_power,
        )
        noisy_master[master_index] = 0.0  # the master does not hear itself
        return ChannelObservations(
            anchors=list(anchors),
            master_index=master_index,
            frequencies_hz=freqs,
            tag_to_anchor=measured_tag,
            master_to_anchor=noisy_master,
            ground_truth=tag,
        )


@dataclass
class IqMeasurementModel:
    """Full IQ-fidelity measurement simulation (Section 4 end to end).

    Every connection event is simulated at the sample level: localization
    packets are assembled (whitening-precompensated runs), modulated,
    propagated through the frequency-selective channel, aligned by
    correlation at each anchor and pushed through the CSI extractor.

    Attributes:
        testbed: environment and anchors.
        snr_db: receive SNR of the IQ captures.
        connection: the BLE connection driving the sweep (auto-established
            when omitted).
        channel_map: channels the auto-established connection may use.
        seed: master seed.
    """

    testbed: Testbed
    snr_db: float = 35.0
    connection: Optional[Connection] = None
    channel_map: Optional[ChannelMap] = None
    samples_per_symbol: int = 8
    seed: RngLike = 0

    def __post_init__(self):
        if self.connection is None:
            self.connection = establish_connection(
                rng=derive_rng(self.seed, "connection"),
                channel_map=self.channel_map,
                whitening_enabled=True,
            )

    def measure(
        self, tag: Point, round_index: int = 0
    ) -> ChannelObservations:
        """One full hop sweep at IQ fidelity.

        Raises:
            MeasurementError: when a packet cannot be acquired at some
                anchor (SNR too low).
        """
        anchors = self.testbed.anchors
        master_index = self.testbed.master_index
        rng = derive_rng(self.seed, "iq-measure", round_index)
        front_end = RadioFrontEnd(
            channel_simulator=self.testbed.channel_simulator,
            samples_per_symbol=self.samples_per_symbol,
            snr_db=self.snr_db,
            rng=derive_rng(rng, "frontend"),
        )
        detector = PacketDetector(samples_per_symbol=self.samples_per_symbol)
        tag_osc = Oscillator(name="tag", rng=derive_rng(rng, "tag-osc"))
        anchor_oscs = [
            Oscillator(name=a.name, rng=derive_rng(rng, "anchor-osc", i))
            for i, a in enumerate(anchors)
        ]
        events = self.connection.localization_sweep()
        # Deduplicate: a sweep may remap several events onto one channel.
        events_by_channel = {}
        for event in events:
            events_by_channel.setdefault(event.data_channel, event)
        channels_sorted = sorted(events_by_channel)
        freqs = np.array(
            [data_channel_to_frequency(c) for c in channels_sorted]
        )
        num_anchors = len(anchors)
        num_antennas = anchors[0].num_antennas
        tag_to_anchor = np.zeros(
            (num_anchors, num_antennas, freqs.size), dtype=complex
        )
        master_to_anchor = np.zeros_like(tag_to_anchor)
        band_snr_db = np.full((num_anchors, freqs.size), np.nan)
        demodulator = GfskDemodulator(
            samples_per_symbol=self.samples_per_symbol
        )
        master_tx_pos = self.testbed.master.antenna_position(0)
        for k, channel in enumerate(channels_sorted):
            event = events_by_channel[channel]
            tag_osc.retune()
            for osc in anchor_oscs:
                osc.retune()
            for i, anchor in enumerate(anchors):
                capture = front_end.transmit(
                    event.slave_packet,
                    tx_position=tag,
                    rx_anchor=anchor,
                    tx_oscillator=tag_osc,
                    rx_oscillator=anchor_oscs[i],
                    source="tag",
                )
                try:
                    aligned = detector.align(capture, event.slave_packet)
                    csi = extract_band_csi(aligned, event.slave_packet)
                except ReproError as exc:
                    raise MeasurementError(
                        f"tag packet lost at {anchor.name} on channel "
                        f"{channel}: {exc}"
                    ) from exc
                tag_to_anchor[i, :, k] = csi.channels
                # Demodulation quality of the CSI-bearing packet: the
                # decision-level SNR on the reference antenna, kept per
                # (anchor, band) for the diagnostics layer.
                num_bits = min(
                    len(event.slave_packet.bits),
                    aligned.num_samples // self.samples_per_symbol,
                )
                if num_bits >= 8:
                    band_snr_db[i, k] = demodulator.decision_snr_db(
                        aligned.antenna(0), num_bits
                    )
                if i != master_index:
                    response = front_end.transmit(
                        event.master_packet,
                        tx_position=master_tx_pos,
                        rx_anchor=anchor,
                        tx_oscillator=anchor_oscs[master_index],
                        rx_oscillator=anchor_oscs[i],
                        source="master",
                    )
                    try:
                        aligned = detector.align(response, event.master_packet)
                        csi = extract_band_csi(aligned, event.master_packet)
                    except ReproError as exc:
                        raise MeasurementError(
                            f"master packet lost at {anchor.name} on "
                            f"channel {channel}: {exc}"
                        ) from exc
                    master_to_anchor[i, :, k] = csi.channels
        return ChannelObservations(
            anchors=list(anchors),
            master_index=master_index,
            frequencies_hz=freqs,
            tag_to_anchor=tag_to_anchor,
            master_to_anchor=master_to_anchor,
            ground_truth=tag,
            band_snr_db=band_snr_db,
        )
