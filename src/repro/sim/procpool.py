"""Process-pool evaluation backend: true multi-core sweeps.

Thread workers share one interpreter, so a sweep's pure-Python overhead
(span bookkeeping, peak selection loops, record assembly) serializes on
the GIL even though the Eq. 17 matmuls release it.  This backend fans
fixes out over worker *processes* instead, with two tricks keeping the
fan-out cheap:

* the ~89 MB steering cache is built once in the parent and **published
  into POSIX shared memory** (:mod:`repro.core.parallel`); every worker
  attaches read-only numpy views onto the same physical pages instead of
  rebuilding or copying, so N workers cost one cache, not N;
* observability crosses the process boundary as plain data -- each
  worker runs its own :class:`~repro.obs.trace.Tracer` at a disjoint
  span-id offset (``pid * 2**32``) and ships finished spans plus a
  metrics snapshot back per task; the parent folds them in with
  :meth:`~repro.obs.trace.Tracer.absorb` and
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, so one
  export covers the whole cross-process sweep and metric totals match a
  serial run.  The shipped :class:`~repro.obs.trace.SpanHandle` carries
  the sweep's ``trace_id``, and ``attached()`` seeds it into every span
  the worker opens -- the whole cross-process sweep shares one trace
  with no extra plumbing here, and ``absorb`` rejects any span-id
  collision that would corrupt the reassembled tree.

A worker crash (OOM kill, segfault) breaks the pool.  The sweep then
records every unfinished fix as a failure with a clean
``failure_reason`` -- a dead worker is data, not a crash of the sweep --
and the ``finally`` block closes the owning shared-memory segment, so
nothing leaks into ``/dev/shm``.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.engine import SteeringCache, steering_cache_key
from repro.core.observations import ChannelObservations
from repro.core.parallel import (
    AttachedSteering,
    SharedSteeringHandle,
    SharedSteeringSegment,
    attach_steering,
    publish_steering_entry,
)
from repro.errors import LocalizationError
from repro.obs import MetricsRegistry, Observability, get_observer, install
from repro.obs.trace import Span, SpanHandle, Tracer
from repro.sim import runner

#: Span-id block size per worker: each worker's tracer starts at
#: ``pid * WORKER_ID_STRIDE``, giving every process 2**32 ids with no
#: overlap against the parent (offset 0) or any sibling.
WORKER_ID_STRIDE = 1 << 32

#: What a lost fix reports; tests assert on this staying human-readable.
WORKER_DIED_REASON = (
    "worker process died before completing this fix (process backend)"
)


@dataclass(frozen=True)
class _SweepSpec:
    """Everything a worker needs, shipped once at pool initialisation.

    Attributes:
        localizer: the scheme under test, with any steering cache
            stripped (caches hold locks and are not picklable; workers
            get theirs via ``steering`` or ``rebuild_engine``).
        steering: handle of the published steering segment, or None
            when nothing was published.
        rebuild_engine: give the worker a private empty
            :class:`~repro.core.engine.SteeringCache` (subset sweeps,
            unpublishable geometries).
        parent: span handle the worker parents its spans under.
        observe: whether the parent sweep runs observed.
        label: report label, forwarded into per-fix spans.
        mode: ``"fix"``, ``"batch"`` or ``"subsets"``.
        subset_size: anchor-subset size for ``mode="subsets"``.
    """

    localizer: runner.Localizer
    steering: Optional[SharedSteeringHandle]
    rebuild_engine: bool
    parent: Optional[SpanHandle]
    observe: bool
    label: str
    mode: str
    subset_size: int = 0


class _WorkerState:
    """Per-process state assembled by :func:`_init_worker`.

    Holds the steering attachment for the worker's whole lifetime: the
    seeded cache entry's numpy views are only valid while the mapping
    is (see :mod:`repro.core.parallel`); the views die with the process.
    """

    __slots__ = ("spec", "localizer", "observer", "attached")

    def __init__(
        self,
        spec: _SweepSpec,
        localizer: runner.Localizer,
        observer: Observability,
        attached: Optional[AttachedSteering] = None,
    ):
        self.spec = spec
        self.localizer = localizer
        self.observer = observer
        self.attached = attached


#: This worker process's state (None in the parent).  Written exactly
#: once per process, by the pool initializer, before any task runs.
_WORKER: Optional[_WorkerState] = None


def _init_worker(spec: _SweepSpec) -> None:
    """Pool initializer: attach steering, install worker observability.

    Runs once per worker process.  The worker tracer's id offset is
    derived from the pid, so merged spans can never collide with the
    parent's or a sibling's (see :data:`WORKER_ID_STRIDE`).  The
    steering attachment is deliberately never closed here: it lives as
    long as the worker, and a worker exit unmaps without unlinking
    (ownership rules in :mod:`repro.core.parallel`).
    """
    global _WORKER
    observer = Observability(enabled=spec.observe)
    if spec.observe:
        observer.tracer = Tracer(id_offset=os.getpid() * WORKER_ID_STRIDE)
    install(observer)
    localizer = spec.localizer
    attached = None
    if spec.steering is not None:
        attached = attach_steering(spec.steering)
        cache = SteeringCache()
        cache.seed(spec.steering.cache_key, attached.entry)
        localizer = copy.copy(localizer)
        localizer.engine = cache
    elif spec.rebuild_engine:
        localizer = copy.copy(localizer)
        localizer.engine = SteeringCache()
    _WORKER = _WorkerState(spec, localizer, observer, attached)


def _run_task(
    task: Tuple[int, List[ChannelObservations]],
) -> Tuple[int, List[runner.EvaluationRecord], List[Span], List[dict]]:
    """Run one task (a contiguous chunk of fixes) in a pool worker.

    Returns ``(start_index, records, spans, metrics_snapshot)``.  Each
    task gets a fresh registry (swapped into the worker observer) and a
    span watermark, so repeated tasks on one worker never re-ship data
    the parent already folded in.
    """
    state = _WORKER
    start, entries = task
    spec = state.spec
    observer = state.observer
    metrics = None
    mark = 0
    if observer.enabled:
        metrics = MetricsRegistry()
        observer.metrics = metrics
        mark = len(observer.tracer)

    def run() -> List[runner.EvaluationRecord]:
        if spec.mode == "subsets":
            return [
                runner._execute_subset_fix(
                    state.localizer,
                    observations,
                    start + offset,
                    spec.label,
                    spec.subset_size,
                    metrics,
                )
                for offset, observations in enumerate(entries)
            ]
        if spec.mode == "batch":
            return runner._execute_batch(
                state.localizer, entries, start, spec.label, metrics=metrics
            )
        return [
            runner._execute_fix(
                state.localizer,
                observations,
                start + offset,
                spec.label,
                metrics=metrics,
            )
            for offset, observations in enumerate(entries)
        ]

    if observer.enabled and spec.parent is not None:
        with observer.tracer.attached(spec.parent):
            records = run()
    else:
        records = run()
    spans = observer.tracer.finished()[mark:] if observer.enabled else []
    snapshot = metrics.snapshot() if metrics is not None else []
    return start, records, spans, snapshot


def _prepare_localizer(
    localizer: runner.Localizer,
    entries: Sequence[ChannelObservations],
    mode: str,
) -> Tuple[
    runner.Localizer,
    Optional[SharedSteeringHandle],
    bool,
    Optional[SharedSteeringSegment],
]:
    """Strip/publish the localizer's steering cache for shipment.

    Returns ``(shipped, steering_handle, rebuild_engine, owner)``.  A
    localizer carrying a :class:`~repro.core.engine.SteeringCache` is
    shipped engine-less (caches hold locks); for a plain fix sweep the
    shared geometry's entry is built here once and published to shared
    memory, otherwise (anchor subsets, an un-correctable probe fix)
    workers rebuild into private caches.  The caller must ``close()``
    the returned owner segment -- in a ``finally`` -- once the sweep is
    done.
    """
    engine = getattr(localizer, "engine", None)
    if not isinstance(engine, SteeringCache):
        return localizer, None, False, None
    shipped = copy.copy(localizer)
    shipped.engine = None
    if mode != "fix" or not entries or not hasattr(localizer, "correct"):
        return shipped, None, True, None
    try:
        probe = entries[0]
        corrected = localizer.correct(probe)
        grid = localizer.grid_for(probe)
        key = steering_cache_key(
            grid,
            corrected.anchors,
            corrected.master_index,
            corrected.anchor_baselines_m,
            corrected.frequencies_hz,
        )
        entry = engine.entry_for(corrected, grid)
    except LocalizationError:
        # The probe fix is un-correctable; its record will say so when
        # the sweep reaches it.  Workers rebuild their own caches.
        return shipped, None, True, None
    owner = publish_steering_entry(entry, key)
    return shipped, owner.handle, False, owner


def process_sweep(
    localizer: runner.Localizer,
    entries: Sequence[ChannelObservations],
    label: str,
    transform: Optional[
        Callable[[ChannelObservations], ChannelObservations]
    ],
    workers: int,
    batch_size: Optional[int],
    mode: str = "fix",
    subset_size: int = 0,
) -> List[runner.EvaluationRecord]:
    """Sweep ``entries`` over a process pool; records in dataset order.

    The transform runs in the parent (transforms are routinely closures
    and need not be picklable), so workers receive ready-to-locate
    observations and the transform executes exactly once per fix, as in
    the serial path.  Fork is preferred when the platform offers it
    (cheap start, inherited imports); the code is spawn-safe otherwise.

    Fixes lost to a worker crash come back as failure records carrying
    :data:`WORKER_DIED_REASON`, and the published steering segment is
    closed in a ``finally``, so even a crashed sweep leaks nothing into
    ``/dev/shm``.
    """
    observer = get_observer()
    if transform is not None:
        entries = [transform(observations) for observations in entries]
    else:
        entries = list(entries)
    shipped, steering, rebuild, owner = _prepare_localizer(
        localizer, entries, mode
    )
    parent = observer.tracer.active() if observer.enabled else None
    spec = _SweepSpec(
        localizer=shipped,
        steering=steering,
        rebuild_engine=rebuild,
        parent=parent.handle() if parent is not None else None,
        observe=observer.enabled,
        label=label,
        mode="batch" if (batch_size or 0) > 1 and mode == "fix" else mode,
        subset_size=subset_size,
    )
    chunk = batch_size if batch_size else 1
    tasks = [
        (start, entries[start:start + chunk])
        for start in range(0, len(entries), chunk)
    ]
    records: List[Optional[runner.EvaluationRecord]] = [None] * len(entries)
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(spec,),
        ) as pool:
            futures = []
            try:
                for task in tasks:
                    futures.append(pool.submit(_run_task, task))
            except BrokenProcessPool:
                pass  # submitted futures still drain below
            for future in futures:
                try:
                    start, task_records, spans, snapshot = future.result()
                except BrokenProcessPool:
                    continue  # lost fixes become failure records below
                for offset, record in enumerate(task_records):
                    records[start + offset] = record
                if observer.enabled:
                    if spans:
                        observer.tracer.absorb(spans)
                    if snapshot:
                        observer.metrics.merge_snapshot(snapshot)
    finally:
        if owner is not None:
            owner.close()
    for index, observations in enumerate(entries):
        if records[index] is None:
            records[index] = runner.EvaluationRecord(
                truth=observations.ground_truth,
                estimate=None,
                error_m=float("inf"),
                failure_reason=WORKER_DIED_REASON,
            )
    return records
