"""Evaluation datasets: measured observations with ground truth.

A dataset is the simulator's analogue of the paper's 1700 VICON-tracked
channel recordings: one :class:`~repro.core.observations.
ChannelObservations` per tag placement, each tagged with its true
position.  Datasets are generated once and shared across localizer
configurations, exactly like the paper evaluates BLoc and the baseline
"using the same set of channel measurements" (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

from repro.core.observations import ChannelObservations
from repro.errors import ConfigurationError
from repro.sim.measurement import ChannelMeasurementModel
from repro.sim.scenario import sample_tag_positions
from repro.sim.testbed import Testbed
from repro.utils.geometry2d import Point
from repro.utils.rng import RngLike


@dataclass
class EvaluationDataset:
    """A collection of ground-truth-tagged observation sets.

    Attributes:
        testbed: the deployment the data was measured on.
        observations: one entry per tag placement.
    """

    testbed: Testbed
    observations: List[ChannelObservations] = field(default_factory=list)

    def __post_init__(self):
        for obs in self.observations:
            if obs.ground_truth is None:
                raise ConfigurationError(
                    "every dataset entry needs ground truth"
                )

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self) -> Iterator[ChannelObservations]:
        return iter(self.observations)

    def truths(self) -> List[Point]:
        """Ground-truth positions, entry order."""
        return [obs.ground_truth for obs in self.observations]

    def transformed(
        self,
        transform: Callable[[ChannelObservations], ChannelObservations],
    ) -> "EvaluationDataset":
        """A derived dataset with a per-entry transform applied.

        Used for the Section 8 sweeps: e.g.
        ``dataset.transformed(lambda o: o.select_antennas(3))``.
        """
        return EvaluationDataset(
            testbed=self.testbed,
            observations=[transform(obs) for obs in self.observations],
        )


def build_dataset(
    testbed: Testbed,
    num_positions: int,
    seed: RngLike = 0,
    snr_db: float = 30.0,
    min_separation_m: float = 0.1,
    model: Optional[ChannelMeasurementModel] = None,
    positions: Optional[Sequence[Point]] = None,
) -> EvaluationDataset:
    """Generate a channel-fidelity evaluation dataset.

    Args:
        testbed: deployment to measure on.
        num_positions: number of tag placements (the paper uses 1700).
        seed: master seed (drives placements, offsets and noise).
        snr_db: channel-estimate SNR.
        min_separation_m: minimum spacing of placements (paper: ~10 cm).
        model: custom measurement model (overrides ``snr_db``).
        positions: explicit placements (overrides sampling).
    """
    if model is None:
        model = ChannelMeasurementModel(
            testbed=testbed, snr_db=snr_db, seed=seed
        )
    if positions is None:
        positions = sample_tag_positions(
            testbed,
            num_positions,
            seed=seed,
            min_separation_m=min_separation_m,
        )
    observations = [
        model.measure(position, round_index=k)
        for k, position in enumerate(positions)
    ]
    return EvaluationDataset(testbed=testbed, observations=observations)
