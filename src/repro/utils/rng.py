"""Deterministic random-number management.

Every stochastic component of the simulator (oscillator offsets, noise,
scatterer placement, scenario sampling) draws from a
``numpy.random.Generator``.  Experiments derive independent child generators
from one master seed so that each subsystem is reproducible in isolation:
changing how many draws the noise model makes must not perturb where the
scenario placed the tag.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` (int, Generator or None) into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(parent: RngLike, *labels) -> np.random.Generator:
    """Derive an independent child generator from a parent seed and labels.

    The labels (strings or ints) name the consumer, e.g.
    ``derive_rng(seed, "oscillator", anchor_index)``.  The same parent seed
    and labels always yield the same stream, and different labels yield
    streams that are independent for all practical purposes.
    """
    if isinstance(parent, np.random.Generator):
        # Spawn a child keyed off the parent's bit generator state.
        base = int(parent.integers(0, 2**32))
    elif parent is None:
        base = int(np.random.default_rng().integers(0, 2**32))
    else:
        base = int(parent)
    material = [base] + [_label_to_int(label) for label in labels]
    return np.random.default_rng(np.random.SeedSequence(material))


def _label_to_int(label) -> int:
    if isinstance(label, (int, np.integer)):
        return int(label) & 0xFFFFFFFF
    # Stable string hash (Python's hash() is salted per-process).
    value = 2166136261
    for byte in str(label).encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value


def spawn_seeds(seed: RngLike, count: int) -> list:
    """Produce ``count`` reproducible integer seeds from one master seed."""
    rng = make_rng(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]
