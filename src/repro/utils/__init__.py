"""Shared utilities: geometry, complex math, grids, RNG and validation."""

from repro.utils.complexutils import (
    circular_mean,
    db,
    mag2db,
    normalize_peak,
    phase_deg,
    unwrap_phase,
    wrap_phase,
)
from repro.utils.geometry2d import (
    Point,
    Segment,
    distance,
    distance_matrix,
    mirror_point,
    pairwise_distances,
    reflect_across_segment,
    segment_intersection,
)
from repro.utils.gridmap import Grid2D
from repro.utils.rng import derive_rng, make_rng
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_shape,
)

__all__ = [
    "Point",
    "Segment",
    "Grid2D",
    "circular_mean",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_shape",
    "db",
    "derive_rng",
    "distance",
    "distance_matrix",
    "mag2db",
    "make_rng",
    "mirror_point",
    "normalize_peak",
    "pairwise_distances",
    "phase_deg",
    "reflect_across_segment",
    "segment_intersection",
    "unwrap_phase",
    "wrap_phase",
]
