"""A rectangular 2-D grid for likelihood maps over the room.

The localizer evaluates Eq. 17 of the paper on a regular grid of candidate
positions; :class:`Grid2D` owns the grid geometry (axes, flattened candidate
points, index <-> coordinate conversions, neighbourhood windows) so the DSP
code never re-derives it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.utils.geometry2d import Point


@dataclass(frozen=True)
class Grid2D:
    """Regular grid covering ``[x_min, x_max] x [y_min, y_max]``.

    Attributes:
        x_min, x_max, y_min, y_max: bounds of the covered rectangle [m].
        resolution: spacing between adjacent grid nodes [m].
    """

    x_min: float
    x_max: float
    y_min: float
    y_max: float
    resolution: float

    def __post_init__(self):
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise GeometryError("grid bounds must satisfy min < max")
        if self.resolution <= 0:
            raise ConfigurationError("grid resolution must be > 0")
        if self.num_x < 2 or self.num_y < 2:
            raise ConfigurationError("grid must have at least 2x2 nodes")

    # -- axes ---------------------------------------------------------------

    @property
    def num_x(self) -> int:
        """Number of nodes along x."""
        return int(round((self.x_max - self.x_min) / self.resolution)) + 1

    @property
    def num_y(self) -> int:
        """Number of nodes along y."""
        return int(round((self.y_max - self.y_min) / self.resolution)) + 1

    @property
    def shape(self) -> Tuple[int, int]:
        """Map shape as ``(num_y, num_x)`` (row = y, column = x)."""
        return (self.num_y, self.num_x)

    @property
    def size(self) -> int:
        """Total number of grid nodes."""
        return self.num_x * self.num_y

    def x_axis(self) -> np.ndarray:
        """x coordinates of the grid columns."""
        return self.x_min + self.resolution * np.arange(self.num_x)

    def y_axis(self) -> np.ndarray:
        """y coordinates of the grid rows."""
        return self.y_min + self.resolution * np.arange(self.num_y)

    # -- candidate points -----------------------------------------------

    def points(self) -> np.ndarray:
        """All grid nodes as an ``(size, 2)`` array, row-major over (y, x)."""
        xs, ys = np.meshgrid(self.x_axis(), self.y_axis())
        return np.column_stack([xs.ravel(), ys.ravel()])

    def reshape(self, flat_values: np.ndarray) -> np.ndarray:
        """Reshape a flat per-node vector into the 2-D map layout."""
        arr = np.asarray(flat_values)
        if arr.shape[0] != self.size:
            raise ConfigurationError(
                f"expected {self.size} values, got {arr.shape[0]}"
            )
        return arr.reshape(self.shape)

    # -- conversions ------------------------------------------------------

    def index_of(self, point: Point) -> Tuple[int, int]:
        """(row, col) of the nearest grid node to ``point`` (clipped)."""
        col = int(round((point.x - self.x_min) / self.resolution))
        row = int(round((point.y - self.y_min) / self.resolution))
        col = min(max(col, 0), self.num_x - 1)
        row = min(max(row, 0), self.num_y - 1)
        return row, col

    def point_at(self, row: int, col: int) -> Point:
        """Coordinates of the node at ``(row, col)``."""
        if not (0 <= row < self.num_y and 0 <= col < self.num_x):
            raise ConfigurationError(
                f"grid index ({row}, {col}) out of bounds for {self.shape}"
            )
        return Point(
            self.x_min + col * self.resolution,
            self.y_min + row * self.resolution,
        )

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the grid rectangle."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    # -- neighbourhoods ---------------------------------------------------

    def window(
        self, values: np.ndarray, row: int, col: int, half_width: int
    ) -> np.ndarray:
        """Square neighbourhood of ``values`` around ``(row, col)``.

        The window is clipped at the map borders, so corner peaks get a
        smaller (but never empty) neighbourhood.
        """
        arr = np.asarray(values)
        if arr.shape != self.shape:
            raise ConfigurationError(
                f"values shape {arr.shape} does not match grid {self.shape}"
            )
        r0 = max(row - half_width, 0)
        r1 = min(row + half_width + 1, self.num_y)
        c0 = max(col - half_width, 0)
        c1 = min(col + half_width + 1, self.num_x)
        return arr[r0:r1, c0:c1]

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_bounds(
        bounds: Tuple[float, float, float, float], resolution: float
    ) -> "Grid2D":
        """Build from a ``(x_min, x_max, y_min, y_max)`` tuple."""
        x_min, x_max, y_min, y_max = bounds
        return Grid2D(x_min, x_max, y_min, y_max, resolution)

    def coarsened(self, factor: int) -> "Grid2D":
        """A grid over the same area with ``factor`` times the spacing."""
        if factor < 1:
            raise ConfigurationError("coarsening factor must be >= 1")
        return Grid2D(
            self.x_min,
            self.x_max,
            self.y_min,
            self.y_max,
            self.resolution * factor,
        )
