"""2-D geometry primitives used by the RF ray tracer and the localizer.

The whole evaluation lives in a 2-D plane (the paper localizes in X-Y,
Fig. 6 / Fig. 7c), so points are plain ``(x, y)`` pairs.  :class:`Point` is
an immutable value type with vector arithmetic; heavy lifting over many
points is done with numpy arrays of shape ``(n, 2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point / vector with basic arithmetic."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __iter__(self):
        yield self.x
        yield self.y

    def dot(self, other: "Point") -> float:
        """Dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Point":
        """Unit vector in the same direction.

        Raises:
            GeometryError: if the vector is (numerically) zero.
        """
        n = self.norm()
        if n < 1e-12:
            raise GeometryError("cannot normalize a zero-length vector")
        return Point(self.x / n, self.y / n)

    def perpendicular(self) -> "Point":
        """Vector rotated 90 degrees counter-clockwise."""
        return Point(-self.y, self.x)

    def rotated(self, angle_rad: float) -> "Point":
        """Vector rotated by ``angle_rad`` counter-clockwise."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Point(c * self.x - s * self.y, s * self.x + c * self.y)

    def angle_to(self, other: "Point") -> float:
        """Bearing of ``other`` as seen from this point, in radians."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def as_array(self) -> np.ndarray:
        """The point as a ``shape (2,)`` float array."""
        return np.array([self.x, self.y], dtype=float)

    @staticmethod
    def from_array(arr: Iterable[float]) -> "Point":
        """Build a point from any 2-element iterable."""
        x, y = tuple(arr)
        return Point(float(x), float(y))


@dataclass(frozen=True)
class Segment:
    """A finite line segment between two points (a wall, a reflector face)."""

    a: Point
    b: Point

    def __post_init__(self):
        if (self.b - self.a).norm() < 1e-12:
            raise GeometryError("segment endpoints coincide")

    def length(self) -> float:
        """Euclidean length of the segment."""
        return (self.b - self.a).norm()

    def direction(self) -> Point:
        """Unit vector from ``a`` to ``b``."""
        return (self.b - self.a).normalized()

    def normal(self) -> Point:
        """Unit normal (90 degrees counter-clockwise from the direction)."""
        return self.direction().perpendicular()

    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return (self.a + self.b) / 2.0

    def project_parameter(self, p: Point) -> float:
        """Parameter t in [0, 1] of the closest point on the *line* AB."""
        ab = self.b - self.a
        return (p - self.a).dot(ab) / ab.dot(ab)

    def contains_projection(self, p: Point, tolerance: float = 1e-9) -> bool:
        """Whether ``p`` projects onto the segment (not just the line)."""
        t = self.project_parameter(p)
        return -tolerance <= t <= 1.0 + tolerance

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` along the segment."""
        return self.a + (self.b - self.a) * t


def distance(p: Point, q: Point) -> float:
    """Euclidean distance between two points."""
    return (p - q).norm()


def mirror_point(p: Point, segment: Segment) -> Point:
    """Mirror image of ``p`` across the infinite line through ``segment``.

    This is the core operation of the image method for specular reflection:
    the reflected path from ``p`` to a receiver via a planar reflector has
    the same length as the straight line from the mirror image of ``p``.
    """
    d = segment.direction()
    ap = p - segment.a
    # Decompose ap into components parallel and perpendicular to the wall.
    parallel = d * ap.dot(d)
    perpendicular = ap - parallel
    return segment.a + parallel - perpendicular


def reflect_across_segment(
    source: Point, target: Point, segment: Segment
) -> Optional[Point]:
    """Specular reflection point of the path ``source -> wall -> target``.

    Returns the point on ``segment`` where the specular bounce occurs, or
    ``None`` when the geometric reflection misses the finite segment or the
    two endpoints are on the same side of the wall (no reflection exists).
    """
    image = mirror_point(source, segment)
    hit = segment_intersection(Segment(image, target), segment)
    return hit


def segment_intersection(s1: Segment, s2: Segment) -> Optional[Point]:
    """Intersection point of two finite segments, or ``None``.

    Parallel and collinear segments return ``None`` (a grazing path along a
    wall carries no specular energy and is irrelevant for ray tracing).
    """
    p, r = s1.a, s1.b - s1.a
    q, s = s2.a, s2.b - s2.a
    denominator = r.cross(s)
    if abs(denominator) < 1e-12:
        return None
    t = (q - p).cross(s) / denominator
    u = (q - p).cross(r) / denominator
    if -1e-9 <= t <= 1.0 + 1e-9 and -1e-9 <= u <= 1.0 + 1e-9:
        return p + r * t
    return None


def segments_cross(s1: Segment, s2: Segment) -> bool:
    """Whether two finite segments intersect at an interior point."""
    return segment_intersection(s1, s2) is not None


def distance_matrix(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """All pairwise distances between two ``(n, 2)`` / ``(m, 2)`` arrays.

    Returns:
        Array of shape ``(n, m)`` with ``out[i, j] = |a_i - b_j|``.
    """
    a = np.asarray(points_a, dtype=float)
    b = np.asarray(points_b, dtype=float)
    if a.ndim != 2 or a.shape[1] != 2 or b.ndim != 2 or b.shape[1] != 2:
        raise GeometryError("distance_matrix expects (n, 2) arrays")
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Symmetric distance matrix of a single ``(n, 2)`` point set."""
    return distance_matrix(points, points)


def bearing_deg(origin: Point, target: Point) -> float:
    """Bearing from ``origin`` to ``target`` in degrees in (-180, 180]."""
    return math.degrees(origin.angle_to(target))


def polygon_contains(vertices: Tuple[Point, ...], p: Point) -> bool:
    """Even-odd rule point-in-polygon test for a simple polygon."""
    inside = False
    n = len(vertices)
    for i in range(n):
        a = vertices[i]
        b = vertices[(i + 1) % n]
        if (a.y > p.y) != (b.y > p.y):
            x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
            if p.x < x_cross:
                inside = not inside
    return inside
