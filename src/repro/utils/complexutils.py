"""Helpers for complex-valued channel math: phases, dB scales, averaging.

The paper manipulates complex wireless channels ``h = |h| e^{j phase}``
throughout Section 5; these helpers keep that manipulation readable.
"""

from __future__ import annotations

import numpy as np


def wrap_phase(phase_rad: np.ndarray) -> np.ndarray:
    """Wrap angles into (-pi, pi]."""
    phase = np.asarray(phase_rad, dtype=float)
    return np.angle(np.exp(1j * phase))


def unwrap_phase(phase_rad: np.ndarray) -> np.ndarray:
    """Unwrap a 1-D phase sequence (thin wrapper over numpy for symmetry)."""
    return np.unwrap(np.asarray(phase_rad, dtype=float))


def phase_deg(values: np.ndarray) -> np.ndarray:
    """Phase of complex values in degrees."""
    return np.degrees(np.angle(np.asarray(values)))


def db(power_ratio: np.ndarray) -> np.ndarray:
    """Power ratio to decibels: ``10 log10(x)``."""
    return 10.0 * np.log10(np.asarray(power_ratio, dtype=float))


def mag2db(amplitude_ratio: np.ndarray) -> np.ndarray:
    """Amplitude ratio to decibels: ``20 log10(x)``."""
    return 20.0 * np.log10(np.abs(np.asarray(amplitude_ratio)))


def circular_mean(phase_rad: np.ndarray, axis=None) -> np.ndarray:
    """Circular mean of phases, immune to 2-pi wrapping.

    Used when the paper averages "the channel phase" of the bit-0 and bit-1
    CSI samples of one band (Section 5 preamble): a naive arithmetic mean of
    +179 and -179 degrees would give 0 instead of 180.
    """
    phase = np.asarray(phase_rad, dtype=float)
    return np.angle(np.mean(np.exp(1j * phase), axis=axis))


def combine_amplitude_phase(amplitude, phase_rad) -> np.ndarray:
    """Build a complex channel from separately averaged amplitude and phase."""
    return np.asarray(amplitude, dtype=float) * np.exp(
        1j * np.asarray(phase_rad, dtype=float)
    )


def normalize_peak(values: np.ndarray) -> np.ndarray:
    """Scale a non-negative map so its maximum is 1 (no-op for all-zero)."""
    arr = np.asarray(values, dtype=float)
    peak = arr.max() if arr.size else 0.0
    if peak <= 0.0:
        return arr.copy()
    return arr / peak


def random_phases(rng: np.random.Generator, shape) -> np.ndarray:
    """Uniform random phases in [-pi, pi) with the given shape."""
    return rng.uniform(-np.pi, np.pi, size=shape)


def unit_phasor(phase_rad) -> np.ndarray:
    """``e^{j phase}`` as a complex array."""
    return np.exp(1j * np.asarray(phase_rad, dtype=float))
