"""Small argument-validation helpers with consistent error messages.

Constructors across the library use these to fail fast on bad inputs with a
:class:`~repro.errors.ConfigurationError` instead of producing NaNs deep in
the pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


def check_positive(name: str, value) -> float:
    """Require a strictly positive finite scalar; return it as float."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value) -> float:
    """Require a finite scalar >= 0; return it as float."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value, low, high) -> float:
    """Require ``low <= value <= high``; return it as float."""
    value = float(value)
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def check_index(name: str, value, size: int) -> int:
    """Require an integer index in ``[0, size)``; return it as int."""
    index = int(value)
    if index != value or not 0 <= index < size:
        raise ConfigurationError(
            f"{name} must be an integer in [0, {size}), got {value!r}"
        )
    return index


def check_finite(name: str, array) -> np.ndarray:
    """Require every element to be finite; return the input as an ndarray."""
    arr = np.asarray(array)
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} contains non-finite values")
    return arr


def check_shape(name: str, array, shape: Sequence) -> np.ndarray:
    """Require an exact shape, with ``None`` as a wildcard dimension."""
    arr = np.asarray(array)
    if len(arr.shape) != len(shape) or any(
        expected is not None and actual != expected
        for actual, expected in zip(arr.shape, shape)
    ):
        raise ConfigurationError(
            f"{name} must have shape {tuple(shape)}, got {arr.shape}"
        )
    return arr
