"""Physical and BLE protocol constants used throughout the library.

All frequencies are in hertz, distances in metres, times in seconds unless a
name explicitly says otherwise.  These values come from the Bluetooth Core
Specification (v4.x PHY, the one BLoc targets) and from Section 2 / Section 7
of the paper.
"""

# ---------------------------------------------------------------------------
# Physics
# ---------------------------------------------------------------------------

#: Speed of light in vacuum [m/s] (the paper's ``c``).
SPEED_OF_LIGHT = 299_792_458.0

# ---------------------------------------------------------------------------
# BLE spectrum (paper Fig. 1a)
# ---------------------------------------------------------------------------

#: Lowest RF frequency used by BLE (centre of channel index 37) [Hz].
BLE_BAND_START_HZ = 2.402e9

#: Highest RF centre frequency (channel index 39) [Hz].
BLE_BAND_END_HZ = 2.480e9

#: Width of each BLE channel [Hz].
BLE_CHANNEL_WIDTH_HZ = 2.0e6

#: Centre frequency of data channel 0 [Hz] (the low data block starts
#: above advertising channel 37 at 2402 MHz).
BLE_DATA_LOW_BASE_HZ = 2.404e9

#: Centre frequency of advertising channel 38 [Hz] (the mid-band gap in
#: the 2 MHz data-channel lattice).
BLE_CHANNEL_38_FREQ_HZ = 2.426e9

#: Centre frequency of data channel 11 [Hz] (the high data block resumes
#: above advertising channel 38).
BLE_DATA_HIGH_BASE_HZ = 2.428e9

#: Total number of BLE channels (37 data + 3 advertising).
BLE_NUM_CHANNELS = 40

#: Number of data (connection) channels.  Prime, which guarantees the hop
#: sequence visits every channel (paper Section 2.1).
BLE_NUM_DATA_CHANNELS = 37

#: Channel indices reserved for advertising.
BLE_ADVERTISING_CHANNELS = (37, 38, 39)

#: Total spectrum spanned by BLE hops, the emulated aperture (paper: 80 MHz).
BLE_TOTAL_SPAN_HZ = 80.0e6

# ---------------------------------------------------------------------------
# BLE PHY (1M uncoded, the PHY BLoc uses)
# ---------------------------------------------------------------------------

#: Symbol (= bit) rate of the BLE 1M PHY [symbols/s].
BLE_SYMBOL_RATE = 1.0e6

#: Bandwidth-time product of the Gaussian pulse-shaping filter.
BLE_GAUSSIAN_BT = 0.5

#: Nominal modulation index of BLE GFSK (spec allows 0.45..0.55).
BLE_MODULATION_INDEX = 0.5

#: Peak frequency deviation for the nominal modulation index [Hz].
#: deviation = modulation_index * symbol_rate / 2 = 250 kHz, so the
#: bit-0 and bit-1 tones are separated by 500 kHz; the paper quotes the
#: *effective* 1 MHz separation of the outermost spectral content.
BLE_FREQ_DEVIATION_HZ = BLE_MODULATION_INDEX * BLE_SYMBOL_RATE / 2.0

#: Effective per-channel bandwidth usable for ranging (paper footnote 2).
BLE_EFFECTIVE_BANDWIDTH_HZ = 1.0e6

#: BLE 1M PHY preamble (8 alternating bits, LSB first: 0xAA or 0x55).
BLE_PREAMBLE_LENGTH_BITS = 8

#: Access address length.
BLE_ACCESS_ADDRESS_LENGTH_BITS = 32

#: Access address used on advertising channels.
BLE_ADVERTISING_ACCESS_ADDRESS = 0x8E89BED6

#: CRC length appended to every PDU.
BLE_CRC_LENGTH_BITS = 24

#: CRC polynomial x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1 (spec 3.1.1).
BLE_CRC_POLYNOMIAL = 0x00065B

#: CRC initial value used on advertising channels.
BLE_CRC_INIT_ADVERTISING = 0x555555

#: Whitening LFSR polynomial x^7 + x^4 + 1 (spec 3.2).
BLE_WHITENING_POLYNOMIAL = 0b1001_0001

#: Maximum data-channel PDU payload length in octets (4.2 spec).
BLE_MAX_PAYLOAD_OCTETS = 251

# ---------------------------------------------------------------------------
# BLoc system parameters (paper Sections 7 and 8)
# ---------------------------------------------------------------------------

#: Default number of anchors deployed (Fig. 3, Fig. 7c).
BLOC_DEFAULT_NUM_ANCHORS = 4

#: Default number of antennas per anchor (Section 7).
BLOC_DEFAULT_NUM_ANTENNAS = 4

#: Score weight ``a`` multiplying the summed distances in Eq. 18.
BLOC_SCORE_DISTANCE_WEIGHT = 0.1

#: Score weight ``b`` multiplying the neighbourhood entropy in Eq. 18.
BLOC_SCORE_ENTROPY_WEIGHT = 0.05

#: Side of the square neighbourhood window used for the spatial-entropy
#: computation around each likelihood peak (Section 7: "7 x 7").
BLOC_ENTROPY_WINDOW = 7

#: Room used for the evaluation: 5 m x 6 m VICON space (Section 7).
BLOC_ROOM_WIDTH_M = 6.0
BLOC_ROOM_HEIGHT_M = 5.0

#: Number of ground-truth tag placements in the paper's dataset.
BLOC_DATASET_SIZE = 1700

#: Duration a transmitter must dwell on a single tone for a stable CSI
#: sample (Section 6: "8 usec for each 0 and 1").
BLOC_TONE_DWELL_S = 8.0e-6
