"""Trace persistence: save and load IQ captures as ``.npz`` archives.

The paper's pipeline records USRP samples to a central server for offline
processing; this module is that storage layer, so measurement campaigns
can be captured once and replayed through different localizer configs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.errors import MeasurementError
from repro.sdr.iq import IqCapture

_FORMAT_VERSION = 1


def save_captures(
    path: Union[str, Path], captures: List[IqCapture]
) -> None:
    """Write a list of captures to one ``.npz`` archive."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    meta = {"format_version": _FORMAT_VERSION, "captures": []}
    for k, capture in enumerate(captures):
        arrays[f"samples_{k}"] = capture.samples
        meta["captures"].append(
            {
                "sample_rate": capture.sample_rate,
                "channel_index": capture.channel_index,
                "carrier_frequency_hz": capture.carrier_frequency_hz,
                "source": capture.source,
                "start_sample_offset": capture.start_sample_offset,
            }
        )
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_captures(path: Union[str, Path]) -> List[IqCapture]:
    """Load captures previously written by :func:`save_captures`.

    Raises:
        MeasurementError: for missing or incompatible archives.
    """
    path = Path(path)
    if not path.exists():
        raise MeasurementError(f"trace file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if "meta_json" not in archive:
            raise MeasurementError(f"{path} is not a capture archive")
        meta = json.loads(bytes(archive["meta_json"].tobytes()).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise MeasurementError(
                f"unsupported trace format {meta.get('format_version')!r}"
            )
        captures = []
        for k, entry in enumerate(meta["captures"]):
            captures.append(
                IqCapture(
                    samples=archive[f"samples_{k}"],
                    sample_rate=entry["sample_rate"],
                    channel_index=entry["channel_index"],
                    carrier_frequency_hz=entry["carrier_frequency_hz"],
                    source=entry["source"],
                    start_sample_offset=entry["start_sample_offset"],
                )
            )
    return captures
