"""Radio front end: put a packet on the air, capture it at an anchor.

This is the IQ-fidelity simulation path: a transmitted packet is GFSK
modulated, pushed through the frequency-selective multipath channel of the
environment (applied in the frequency domain, so the f0 and f1 tones of one
BLE band genuinely see slightly different channels), rotated by the random
oscillator offsets of transmitter and receiver, and corrupted with AWGN.

The output :class:`~repro.sdr.iq.IqCapture` is what a USRP anchor would
hand to the BLoc CSI extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ble.channels import channel_index_to_frequency
from repro.ble.gfsk import GfskModulator
from repro.ble.pdu import OnAirPacket
from repro.errors import ConfigurationError
from repro.rf.antenna import Anchor
from repro.rf.channel_model import ChannelSimulator
from repro.rf.noise import add_awgn
from repro.rf.oscillator import Oscillator
from repro.sdr.iq import IqCapture
from repro.utils.geometry2d import Point
from repro.utils.rng import RngLike, derive_rng, make_rng


def apply_channel_frequency_domain(
    baseband: np.ndarray,
    channel_simulator: ChannelSimulator,
    tx: Point,
    rx: Point,
    carrier_hz: float,
    sample_rate: float,
) -> np.ndarray:
    """Convolve baseband samples with the physical channel around a carrier.

    The channel is evaluated on every FFT bin of the block at its true RF
    frequency ``carrier + f_baseband``, which preserves the in-band
    frequency selectivity the BLoc tone measurements rely on.
    """
    x = np.asarray(baseband, dtype=complex)
    if x.size == 0:
        return x.copy()
    spectrum = np.fft.fft(x)
    bin_freqs = carrier_hz + np.fft.fftfreq(x.size, d=1.0 / sample_rate)
    h = channel_simulator.channel(tx, rx, bin_freqs)
    return np.fft.ifft(spectrum * h)


@dataclass
class RadioFrontEnd:
    """Simulated TX -> air -> RX chain for one environment.

    Attributes:
        channel_simulator: the propagation model.
        samples_per_symbol: baseband oversampling.
        snr_db: receive SNR applied to the capture.
        guard_symbols: silent symbols padded before/after the packet, so a
            receiver has to *find* the packet like a real one would.
    """

    channel_simulator: ChannelSimulator
    samples_per_symbol: int = 8
    snr_db: float = 30.0
    guard_symbols: int = 16
    rng: RngLike = None
    _modulator: GfskModulator = field(init=False, repr=False)
    _generator: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        if self.guard_symbols < 0:
            raise ConfigurationError("guard_symbols must be >= 0")
        self._modulator = GfskModulator(
            samples_per_symbol=self.samples_per_symbol
        )
        self._generator = make_rng(self.rng)

    @property
    def sample_rate(self) -> float:
        """Baseband sample rate [Hz]."""
        return self._modulator.sample_rate

    @property
    def modulator(self) -> GfskModulator:
        """The GFSK modulator used for transmissions."""
        return self._modulator

    def transmit(
        self,
        packet: OnAirPacket,
        tx_position: Point,
        rx_anchor: Anchor,
        tx_oscillator: Oscillator,
        rx_oscillator: Oscillator,
        source: str = "",
        snr_db: Optional[float] = None,
    ) -> IqCapture:
        """Simulate one packet reception at every antenna of an anchor.

        The transmitter and receiver oscillators are *sampled*, not
        retuned: retuning (a new random phase) is the caller's decision,
        once per frequency hop, so that the two packets of one connection
        event share the same offsets (paper Section 5.2).
        """
        carrier = channel_index_to_frequency(packet.channel_index)
        clean = self._modulator.modulate(packet.bits)
        guard = self.guard_symbols * self.samples_per_symbol
        padded = np.concatenate(
            [np.zeros(guard, dtype=complex), clean, np.zeros(guard, dtype=complex)]
        )
        offset_phasor = np.exp(
            1j * (tx_oscillator.phase_offset() - rx_oscillator.phase_offset())
        )
        rows = []
        for rx in rx_anchor.antenna_positions():
            received = apply_channel_frequency_domain(
                padded,
                self.channel_simulator,
                tx_position,
                rx,
                carrier,
                self.sample_rate,
            )
            rows.append(received * offset_phasor)
        noisy = add_awgn(
            np.array(rows),
            self.snr_db if snr_db is None else snr_db,
            rng=self._generator,
        )
        return IqCapture(
            samples=noisy,
            sample_rate=self.sample_rate,
            channel_index=packet.channel_index,
            carrier_frequency_hz=carrier,
            source=source,
            start_sample_offset=guard,
        )
