"""IQ capture containers for the software-radio layer.

A capture is what one anchor records for one packet: a block of complex
baseband samples per antenna, tagged with the channel it was tuned to.
All antennas of an anchor share one clock (paper Section 7), so a single
sample index aligns across antennas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class IqCapture:
    """Complex baseband samples recorded by one multi-antenna receiver.

    Attributes:
        samples: array of shape ``(num_antennas, num_samples)``.
        sample_rate: [Hz].
        channel_index: BLE channel the radio was tuned to.
        carrier_frequency_hz: RF centre frequency of the capture.
        source: label of the transmitter ("tag", "master", ...).
        start_sample_offset: index of the first packet sample within the
            capture, if known (simulator ground truth; receivers must find
            it themselves via correlation).
    """

    samples: np.ndarray
    sample_rate: float
    channel_index: int
    carrier_frequency_hz: float
    source: str = ""
    start_sample_offset: Optional[int] = None

    def __post_init__(self):
        self.samples = np.atleast_2d(np.asarray(self.samples, dtype=complex))
        if self.sample_rate <= 0:
            raise ConfigurationError("sample rate must be > 0")

    @property
    def num_antennas(self) -> int:
        """Number of receive antennas in the capture."""
        return int(self.samples.shape[0])

    @property
    def num_samples(self) -> int:
        """Samples per antenna."""
        return int(self.samples.shape[1])

    @property
    def duration_s(self) -> float:
        """Capture duration."""
        return self.num_samples / self.sample_rate

    def antenna(self, index: int) -> np.ndarray:
        """Samples of one antenna."""
        if not 0 <= index < self.num_antennas:
            raise ConfigurationError(
                f"antenna index {index} out of range [0, {self.num_antennas})"
            )
        return self.samples[index]

    def sliced(self, start: int, stop: int) -> "IqCapture":
        """A view-like capture restricted to a sample range."""
        if not 0 <= start <= stop <= self.num_samples:
            raise ConfigurationError(
                f"slice [{start}, {stop}) out of range for "
                f"{self.num_samples} samples"
            )
        offset = None
        if self.start_sample_offset is not None:
            offset = self.start_sample_offset - start
        return IqCapture(
            samples=self.samples[:, start:stop],
            sample_rate=self.sample_rate,
            channel_index=self.channel_index,
            carrier_frequency_hz=self.carrier_frequency_hz,
            source=self.source,
            start_sample_offset=offset,
        )

    def power_dbfs(self) -> float:
        """Mean power of the capture in dB relative to unit amplitude."""
        power = float(np.mean(np.abs(self.samples) ** 2))
        if power <= 0:
            return float("-inf")
        return 10.0 * float(np.log10(power))
