"""Software-radio layer: IQ captures, front end, packet acquisition, traces.

Plays the role of the paper's USRP N210 platform: everything between the
BLE bit stream and the complex baseband samples the localizer's CSI
extractor consumes.
"""

from repro.sdr.frontend import RadioFrontEnd, apply_channel_frequency_domain
from repro.sdr.iq import IqCapture
from repro.sdr.receiver import PacketDetector, verify_payload_bits
from repro.sdr.trace import load_captures, save_captures

__all__ = [
    "IqCapture",
    "PacketDetector",
    "RadioFrontEnd",
    "apply_channel_frequency_domain",
    "load_captures",
    "save_captures",
    "verify_payload_bits",
]
