"""Packet acquisition: find and align a BLE packet inside an IQ capture.

An overhearing anchor does not know when the tag or the master transmits;
it correlates the capture against the ideal modulated waveform of the
preamble + access address (both known once the connection is being
followed) and aligns on the correlation peak.  The aligned capture is what
the CSI extractor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.ble.gfsk import GfskDemodulator, GfskModulator
from repro.ble.pdu import OnAirPacket
from repro.errors import DemodulationError
from repro.sdr.iq import IqCapture

#: Number of leading packet bits used as the acquisition reference
#: (preamble + access address).
SYNC_BITS = 8 + 32


@dataclass
class PacketDetector:
    """Correlation-based packet acquisition.

    Attributes:
        samples_per_symbol: oversampling of the capture.
        threshold: minimum normalised correlation magnitude (0..1) for a
            detection to be accepted.
    """

    samples_per_symbol: int = 8
    threshold: float = 0.5

    def reference_waveform(self, packet: OnAirPacket) -> np.ndarray:
        """Ideal modulated sync waveform (preamble + access address)."""
        modulator = GfskModulator(samples_per_symbol=self.samples_per_symbol)
        return modulator.modulate(packet.bits[:SYNC_BITS])

    def detect(
        self, capture: IqCapture, packet: OnAirPacket
    ) -> Tuple[int, float]:
        """Locate the packet start in the capture.

        Uses antenna 0 (any would do; one oscillator drives them all).

        Returns:
            ``(start_sample, quality)`` where quality is the normalised
            correlation magnitude at the peak.

        Raises:
            DemodulationError: when no correlation peak clears the
                threshold (packet lost in noise, wrong channel, ...).
        """
        reference = self.reference_waveform(packet)
        received = capture.antenna(0)
        if received.size < reference.size:
            raise DemodulationError("capture shorter than the sync waveform")
        # Normalised cross-correlation: the GFSK waveform has constant
        # modulus, so a sliding energy normalisation suffices.
        correlation = np.correlate(received, reference, mode="valid")
        window_energy = np.convolve(
            np.abs(received) ** 2, np.ones(reference.size), mode="valid"
        )
        ref_energy = float(np.sum(np.abs(reference) ** 2))
        denom = np.sqrt(np.maximum(window_energy * ref_energy, 1e-30))
        quality = np.abs(correlation) / denom
        peak = int(np.argmax(quality))
        peak_quality = float(quality[peak])
        if peak_quality < self.threshold:
            raise DemodulationError(
                f"no packet found: best correlation {peak_quality:.3f} "
                f"below threshold {self.threshold}"
            )
        return peak, peak_quality

    def align(self, capture: IqCapture, packet: OnAirPacket) -> IqCapture:
        """Capture cropped so sample 0 is the first packet sample."""
        start, _ = self.detect(capture, packet)
        needed = packet.num_bits * self.samples_per_symbol
        stop = min(start + needed, capture.num_samples)
        aligned = capture.sliced(start, stop)
        aligned.start_sample_offset = 0
        return aligned


def verify_payload_bits(
    capture: IqCapture, packet: OnAirPacket, max_bit_errors: int = 0
) -> int:
    """Demodulate an *aligned* capture and count bit errors vs the packet.

    A cheap link-quality check used by tests and the measurement layer to
    confirm the IQ pipeline is coherent end to end.
    """
    demodulator = GfskDemodulator(
        samples_per_symbol=int(capture.sample_rate / 1e6)
    )
    bits = demodulator.demodulate(capture.antenna(0), packet.num_bits)
    errors = int(np.count_nonzero(bits != packet.bits))
    if errors > max_bit_errors:
        raise DemodulationError(
            f"{errors} bit errors exceed the allowed {max_bit_errors}"
        )
    return errors
