"""The locate endpoint: HTTP front end over the warm pool.

Layering follows the ichnaea shape -- a transport-free service core a
test can drive without sockets, wrapped by a thin stdlib HTTP adapter:

* :class:`LocalizationService` owns the request lifecycle
  (schema -> auth -> rate limit -> scenario -> micro-batch -> provider
  chain) and returns ``(status, body, headers)`` tuples.
* :func:`make_server` binds it behind a ``ThreadingHTTPServer`` with
  three routes: ``POST /v1/locate``, ``GET /v1/health``,
  ``GET /v1/stats``.

Error taxonomy (every failure is a typed JSON envelope, never a bare
traceback): 400 schema violation, 401 unknown API key when an allowlist
is configured, 404 unknown scenario, 429 over the token bucket (with
``Retry-After``), 503 when every provider in the chain failed.  A
degraded request that *any* provider can answer is a 200 naming the
provider -- degradation is data, not an error.

Instrumentation: every request carries a W3C-``traceparent``-style
``trace_id`` (inbound header honoured, always echoed on the response
and in the body), the request lifecycle runs inside a
``service.locate`` span when an observer is installed, and an
*always-on* service-local metrics registry backs ``GET /metrics``
(OpenMetrics text with exemplars -- latency buckets link to sample
trace ids) regardless of the global observer.  The NDJSON access log is
size-rotated (``access.ndjson`` -> ``access.ndjson.1``) and each line
carries the ``trace_id``; API keys are logged as truncated digests,
never raw.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, FrozenSet, List, Optional, Tuple, Type, Union

from repro.errors import LocalizationError
from repro.obs import LATENCY_BUCKETS_S, Observability, get_observer
from repro.obs.health import AnchorHealthMonitor
from repro.obs.promexport import (
    OPENMETRICS_CONTENT_TYPE,
    render_openmetrics,
)
from repro.obs.trace import (
    TraceContext,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)
from repro.service.batcher import MicroBatcher
from repro.service.pool import (
    LocalizerPool,
    UnknownScenarioError,
)
from repro.analysis.runtime_locks import guarded_by, holds_lock, make_lock
from repro.service.ratelimit import RateLimiter
from repro.service.schema import (
    MAX_BODY_BYTES,
    SchemaError,
    decode_observations,
    error_body,
    locate_response,
    parse_locate_request,
)
from repro.service.telemetry import AccuracyTelemetry

#: (status, body, extra headers) -- what every handler returns.  The
#: body is a JSON dict on every route except ``GET /metrics``, whose
#: body is the OpenMetrics text document itself.
Response = Tuple[int, Union[Dict[str, Any], str], Dict[str, str]]


def _key_digest(api_key: Optional[str]) -> str:
    """Loggable identity of an API key: short digest, never the key."""
    if not api_key:
        return "-"
    return hashlib.sha256(api_key.encode("utf-8")).hexdigest()[:8]


@guarded_by("_lock", "_fh", "_size")
class RotatingNdjsonLog:
    """Append-only NDJSON log with size-based single-generation rotation.

    When appending a line would push the file past ``max_bytes`` (and
    the file is non-empty), the current file is renamed to
    ``<path>.1`` -- replacing any previous ``.1`` -- and a fresh file is
    opened, so the log's disk footprint is bounded by roughly
    ``2 * max_bytes``.  One generation is enough for a dashboard tail
    (see ``repro obs top``, which follows the rotation).

    Thread-safety: writes and rotation run under one lock.
    """

    def __init__(self, path: str, max_bytes: int = 16 * 1024 * 1024):
        self.path = path
        self.max_bytes = int(max_bytes)
        self._lock = make_lock("RotatingNdjsonLog._lock")
        self._fh = open(path, "a", encoding="utf-8")
        self._size = os.fstat(self._fh.fileno()).st_size

    def write_line(self, line: str) -> None:
        """Append one line (rotating first if it would overflow)."""
        encoded_len = len(line.encode("utf-8")) + 1
        with self._lock:
            if (
                self._size > 0
                and self._size + encoded_len > self.max_bytes
            ):
                self._rotate_locked()
            self._fh.write(line + "\n")
            self._fh.flush()
            self._size += encoded_len

    @holds_lock("_lock")
    def _rotate_locked(self) -> None:
        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        """Flush and close the current file."""
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


@dataclass
class ServiceConfig:
    """Tunables of one service instance.

    Attributes:
        rate_per_s / burst: token-bucket parameters per API key.
        api_keys: optional allowlist; None accepts any key.
        max_batch / max_wait_s: micro-batcher coalescing window.
        access_log_path: NDJSON access log (None disables logging).
        access_log_max_bytes: size threshold at which the access log
            rotates to ``<path>.1`` (one generation kept).
    """

    rate_per_s: float = 50.0
    burst: int = 20
    api_keys: Optional[FrozenSet[str]] = None
    max_batch: int = 8
    max_wait_s: float = 0.005
    access_log_path: Optional[str] = None
    access_log_max_bytes: int = 16 * 1024 * 1024


@guarded_by(
    "_lock",
    "_batchers",
    "_request_counter",
    "responses_by_status",
    "responses_by_provider",
    "_closed",
)
class LocalizationService:
    """Transport-free request handling over a warm localizer pool.

    Thread-safety: all entry points may be called concurrently from
    server threads; shared counters, the access log and batcher
    creation are lock-protected, and the pool/limiter guard themselves.
    """

    def __init__(
        self,
        pool: Optional[LocalizerPool] = None,
        config: Optional[ServiceConfig] = None,
    ):
        self.pool = pool or LocalizerPool()
        self.config = config or ServiceConfig()
        self.limiter = RateLimiter(
            rate_per_s=self.config.rate_per_s,
            burst=self.config.burst,
            api_keys=self.config.api_keys,
        )
        self.started_monotonic = time.monotonic()
        self._batchers: Dict[str, MicroBatcher] = {}
        self._lock = make_lock("LocalizationService._lock")
        self._request_counter = 0
        self.responses_by_status: Dict[int, int] = {}
        self.responses_by_provider: Dict[str, int] = {}
        # Service-local observability, always on: GET /metrics and the
        # accuracy telemetry must work without the process-wide
        # --trace/--metrics switchboard.  Spans still go through the
        # global observer (tracing stays opt-in); only metrics are
        # unconditionally recorded here.
        self._service_obs = Observability(enabled=True)
        self.metrics = self._service_obs.metrics
        self.telemetry = AccuracyTelemetry(
            metrics=self.metrics,
            monitor=AnchorHealthMonitor(observer=self._service_obs),
        )
        self._access_log = (
            RotatingNdjsonLog(
                self.config.access_log_path,
                max_bytes=self.config.access_log_max_bytes,
            )
            if self.config.access_log_path
            else None
        )
        self._closed = False

    # ---------------------------------------------------------- helpers

    def _next_request_id(self) -> str:
        with self._lock:
            self._request_counter += 1
            return f"req-{self._request_counter:06d}"

    def _batcher_for(self, scenario: str) -> MicroBatcher:
        """Get-or-create the scenario's micro-batcher (lock-protected)."""
        # Double-checked fast path: a stale miss only costs re-entering
        # the locked slow path; dict reads are atomic under the GIL.
        batcher = self._batchers.get(scenario)  # repro: noqa[RPR013] -- benign racy fast-path read, settled under the lock below
        if batcher is not None:
            return batcher
        warm = self.pool.get(scenario)
        with self._lock:
            batcher = self._batchers.get(scenario)
            if batcher is None:
                batcher = MicroBatcher(
                    warm.chain.locate_batch,
                    max_batch=self.config.max_batch,
                    max_wait_s=self.config.max_wait_s,
                    name=f"batch-{scenario}",
                )
                self._batchers[scenario] = batcher
        return batcher

    def _record(
        self,
        status: int,
        request_id: str,
        api_key: Optional[str],
        scenario: Optional[str],
        provider: Optional[str],
        latency_s: float,
        error_code: Optional[str],
        trace_id: str = "",
    ) -> None:
        """Account one finished request: counters, metrics, access log.

        Metrics always land in the service-local registry (exemplars on
        the latency histogram carry the request's ``trace_id``); when a
        global observer is installed they are mirrored there too, so a
        ``--metrics`` run and a /metrics scrape agree.
        """
        with self._lock:
            self.responses_by_status[status] = (
                self.responses_by_status.get(status, 0) + 1
            )
            if provider is not None:
                self.responses_by_provider[provider] = (
                    self.responses_by_provider.get(provider, 0) + 1
                )
        registries = [self.metrics]
        observer = get_observer()
        if observer.enabled:
            registries.append(observer.metrics)
        for registry in registries:
            registry.counter("service.requests_total").inc()
            registry.counter(f"service.status.{status}").inc()
            if provider is not None:
                registry.counter(f"service.provider.{provider}").inc()
            registry.histogram(
                "service.request_latency_s", LATENCY_BUCKETS_S
            ).observe(latency_s, trace_id=trace_id or None)
        if self._access_log is not None:
            line = json.dumps(
                {
                    "ts": time.time(),
                    "request_id": request_id,
                    "trace_id": trace_id,
                    "key": _key_digest(api_key),
                    "scenario": scenario,
                    "status": status,
                    "provider": provider,
                    "latency_s": round(latency_s, 6),
                    "error": error_code,
                },
                sort_keys=True,
            )
            self._access_log.write_line(line)

    # ----------------------------------------------------------- routes

    def handle_locate(
        self, raw_body: bytes, traceparent: Optional[str] = None
    ) -> Response:
        """Serve one ``POST /v1/locate`` body end to end.

        ``traceparent`` is the inbound W3C trace-context header (or
        None): a well-formed header continues the caller's trace, else
        the request starts a fresh one.  Every response -- success or
        typed error -- carries the ``trace_id`` in the body and a
        ``traceparent`` response header, and the whole lifecycle runs
        inside a ``service.locate`` span on that trace.
        """
        started = time.perf_counter()
        request_id = self._next_request_id()
        trace_id = parse_traceparent(traceparent) or new_trace_id()
        api_key: Optional[str] = None
        scenario: Optional[str] = None
        observer = get_observer()
        with observer.span(
            "service.locate", trace_id=trace_id, request_id=request_id
        ) as span:
            span_id = span.span_id if span is not None else 0
            try:
                request = parse_locate_request(raw_body)
            except SchemaError as exc:
                return self._finish(
                    400,
                    error_body(
                        "invalid_request",
                        exc.message,
                        field=exc.field,
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "invalid_request",
                    trace_id,
                    span_id,
                )
            api_key = request.api_key
            scenario = request.scenario
            if span is not None:
                span.set(scenario=scenario)
            if not self.limiter.authorized(api_key):
                return self._finish(
                    401,
                    error_body(
                        "unauthorized",
                        "unknown API key",
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "unauthorized",
                    trace_id,
                    span_id,
                )
            decision = self.limiter.check(api_key)
            if not decision.allowed:
                retry_after = max(
                    1, int(math.ceil(decision.retry_after_s))
                )
                return self._finish(
                    429,
                    error_body(
                        "rate_limited",
                        "token bucket empty for this API key",
                        retry_after_s=round(decision.retry_after_s, 4),
                        request_id=request_id,
                    ),
                    {"Retry-After": str(retry_after)},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "rate_limited",
                    trace_id,
                    span_id,
                )
            try:
                warm = self.pool.get(request.scenario)
            except UnknownScenarioError as exc:
                return self._finish(
                    404,
                    error_body(
                        "unknown_scenario",
                        str(exc),
                        scenarios=exc.known,
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "unknown_scenario",
                    trace_id,
                    span_id,
                )
            try:
                observations = decode_observations(
                    request.observations,
                    warm.testbed.anchors,
                    warm.testbed.master_index,
                )
            except SchemaError as exc:
                return self._finish(
                    400,
                    error_body(
                        "invalid_request",
                        exc.message,
                        field=exc.field,
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "invalid_request",
                    trace_id,
                    span_id,
                )
            # The batch runs on the batcher's worker thread under its
            # own linked trace; the wait span measures how long this
            # request blocked on coalescing + the shared locate_batch.
            context = TraceContext(
                trace_id=trace_id,
                parent=span.handle() if span is not None else None,
            )
            with observer.span(
                "service.batch_wait", trace_id=trace_id
            ) as wait_span:
                outcome = self._batcher_for(request.scenario).locate(
                    observations, context
                )
                if wait_span is not None:
                    wait_span.set(
                        batch_size=outcome.batch_size,
                        batch_trace_id=outcome.batch_trace_id,
                    )
            if span is not None and outcome.batch_trace_id:
                span.set(batch_trace_id=outcome.batch_trace_id)
            if isinstance(outcome.decision, LocalizationError):
                self.telemetry.record_fix(observations, None)
                return self._finish(
                    503,
                    error_body(
                        "no_fix",
                        str(outcome.decision),
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "no_fix",
                    trace_id,
                    span_id,
                )
            events = self.telemetry.record_fix(
                observations, outcome.decision.position
            )
            if span is not None and events:
                span.set(anomalies=len(events))
            latency_s = time.perf_counter() - started
            body = locate_response(
                position_x=float(outcome.decision.position.x),
                position_y=float(outcome.decision.position.y),
                provider=outcome.decision.provider,
                scenario=request.scenario,
                request_id=request_id,
                latency_s=round(latency_s, 6),
                quality=outcome.decision.quality.to_dict(),
                fallback_reasons=outcome.decision.fallback_reasons,
                batch_size=outcome.batch_size,
                trace_id=trace_id,
            )
            self._record(
                200,
                request_id,
                api_key,
                scenario,
                outcome.decision.provider,
                latency_s,
                None,
                trace_id,
            )
            return (
                200,
                body,
                {"traceparent": format_traceparent(trace_id, span_id)},
            )

    def _finish(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Dict[str, str],
        request_id: str,
        api_key: Optional[str],
        scenario: Optional[str],
        provider: Optional[str],
        started: float,
        error_code: Optional[str],
        trace_id: str = "",
        span_id: int = 0,
    ) -> Response:
        """Record a non-200 outcome and shape the response tuple.

        The trace identity rides along even on failures: the error body
        gains ``trace_id`` and the response a ``traceparent`` header,
        so a 4xx/5xx is as traceable as a fix.
        """
        self._record(
            status,
            request_id,
            api_key,
            scenario,
            provider,
            time.perf_counter() - started,
            error_code,
            trace_id,
        )
        if trace_id:
            body = {**body, "trace_id": trace_id}
            headers = {
                **headers,
                "traceparent": format_traceparent(trace_id, span_id),
            }
        return status, body, headers

    def _trace_headers(
        self, traceparent: Optional[str]
    ) -> Tuple[str, Dict[str, str]]:
        """Resolve the request's trace id and its response headers."""
        trace_id = parse_traceparent(traceparent) or new_trace_id()
        return trace_id, {"traceparent": format_traceparent(trace_id)}

    def handle_health(
        self, traceparent: Optional[str] = None
    ) -> Response:
        """``GET /v1/health``: liveness plus warm-pool readiness."""
        trace_id, headers = self._trace_headers(traceparent)
        with get_observer().span("service.health", trace_id=trace_id):
            pool_info = self.pool.info()
            return (
                200,
                {
                    "status": "ok",
                    "uptime_s": round(
                        time.monotonic() - self.started_monotonic, 3
                    ),
                    "scenarios": pool_info["scenarios"],
                    "warm": sorted(pool_info["warm"]),
                    "trace_id": trace_id,
                },
                headers,
            )

    def _cache_stats(self) -> Dict[str, Any]:
        """Steering-cache hit/miss counters with a derived hit ratio."""
        engine = self.pool.engine.info()
        lookups = engine["hits"] + engine["misses"]
        return {
            "hits": engine["hits"],
            "misses": engine["misses"],
            "evictions": engine["evictions"],
            "entries": engine["entries"],
            "hit_ratio": (
                round(engine["hits"] / lookups, 4) if lookups else None
            ),
        }

    def handle_stats(
        self, traceparent: Optional[str] = None
    ) -> Response:
        """``GET /v1/stats``: pool, limiter, batcher and status counters.

        The ``cache`` section surfaces steering-cache hits/misses and
        the derived hit ratio directly (the loadtest smoke asserts on
        it); ``pool.warmth`` maps every served scenario to whether it
        is built; ``telemetry`` summarises live accuracy anomalies.
        """
        trace_id, headers = self._trace_headers(traceparent)
        with get_observer().span("service.stats", trace_id=trace_id):
            with self._lock:
                by_status = {
                    str(status): count
                    for status, count in sorted(
                        self.responses_by_status.items()
                    )
                }
                by_provider = dict(
                    sorted(self.responses_by_provider.items())
                )
                batchers = {
                    name: batcher.info()
                    for name, batcher in sorted(self._batchers.items())
                }
            return (
                200,
                {
                    "uptime_s": round(
                        time.monotonic() - self.started_monotonic, 3
                    ),
                    "responses_by_status": by_status,
                    "responses_by_provider": by_provider,
                    "pool": self.pool.info(),
                    "cache": self._cache_stats(),
                    "ratelimit": self.limiter.info(),
                    "batchers": batchers,
                    "telemetry": self.telemetry.info(),
                    "trace_id": trace_id,
                },
                headers,
            )

    def handle_metrics(
        self, traceparent: Optional[str] = None
    ) -> Response:
        """``GET /metrics``: OpenMetrics exposition with exemplars.

        Rendered from the service-local always-on registry, so the
        endpoint works (and latency buckets carry exemplar trace ids)
        whether or not the global observer is installed.
        """
        trace_id, headers = self._trace_headers(traceparent)
        with get_observer().span("service.metrics", trace_id=trace_id):
            headers["Content-Type"] = OPENMETRICS_CONTENT_TYPE
            return 200, render_openmetrics(self.metrics), headers

    def close(self) -> None:
        """Stop batcher workers and close the access log."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batchers = list(self._batchers.values())
        for batcher in batchers:
            batcher.close()
        if self._access_log is not None:
            self._access_log.close()


# ------------------------------------------------------------- transport


def _handler_for(service: LocalizationService) -> Type[BaseHTTPRequestHandler]:
    """Build the request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # The NDJSON access log supersedes BaseHTTPRequestHandler's
        # stderr chatter.

        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass

        def _send(self, response: Response) -> None:
            status, body, headers = response
            headers = dict(headers)
            if isinstance(body, str):
                # Text route (GET /metrics): the handler supplies the
                # exposition Content-Type.
                payload = body.encode("utf-8")
                content_type = headers.pop(
                    "Content-Type", "text/plain; charset=utf-8"
                )
            else:
                payload = json.dumps(body).encode("utf-8")
                content_type = headers.pop(
                    "Content-Type", "application/json"
                )
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        def _traceparent(self) -> Optional[str]:
            return self.headers.get("traceparent")

        def do_POST(self) -> None:
            if self.path != "/v1/locate":
                self._send(
                    (404, error_body("not_found", self.path), {})
                )
                return
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                self._send(
                    (
                        400,
                        error_body(
                            "invalid_request",
                            "a JSON body with Content-Length is "
                            "required",
                        ),
                        {},
                    )
                )
                return
            if length > MAX_BODY_BYTES:
                self._send(
                    (
                        413,
                        error_body(
                            "payload_too_large",
                            f"body exceeds {MAX_BODY_BYTES} bytes",
                        ),
                        {},
                    )
                )
                return
            raw = self.rfile.read(length)
            self._send(
                service.handle_locate(raw, self._traceparent())
            )

        def do_GET(self) -> None:
            if self.path == "/v1/health":
                self._send(service.handle_health(self._traceparent()))
            elif self.path == "/v1/stats":
                self._send(service.handle_stats(self._traceparent()))
            elif self.path == "/metrics":
                self._send(
                    service.handle_metrics(self._traceparent())
                )
            else:
                self._send(
                    (404, error_body("not_found", self.path), {})
                )

    return Handler


def make_server(
    service: LocalizationService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind the service behind a threading HTTP server.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  The caller owns the lifecycle::

        server = make_server(service, port=8080)
        server.serve_forever()          # blocks; Ctrl-C to stop
        ...
        server.shutdown(); service.close()
    """
    server = ThreadingHTTPServer((host, port), _handler_for(service))
    server.daemon_threads = True
    return server
