"""The locate endpoint: HTTP front end over the warm pool.

Layering follows the ichnaea shape -- a transport-free service core a
test can drive without sockets, wrapped by a thin stdlib HTTP adapter:

* :class:`LocalizationService` owns the request lifecycle
  (schema -> auth -> rate limit -> scenario -> micro-batch -> provider
  chain) and returns ``(status, body, headers)`` tuples.
* :func:`make_server` binds it behind a ``ThreadingHTTPServer`` with
  three routes: ``POST /v1/locate``, ``GET /v1/health``,
  ``GET /v1/stats``.

Error taxonomy (every failure is a typed JSON envelope, never a bare
traceback): 400 schema violation, 401 unknown API key when an allowlist
is configured, 404 unknown scenario, 429 over the token bucket (with
``Retry-After``), 503 when every provider in the chain failed.  A
degraded request that *any* provider can answer is a 200 naming the
provider -- degradation is data, not an error.

Instrumentation: per-request ``service.*`` metrics and a request span
through :mod:`repro.obs` when an observer is installed, always-on plain
counters for ``/v1/stats``, and an optional NDJSON access log (API keys
are logged as truncated digests, never raw).
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, FrozenSet, List, Optional, Tuple, Type

from repro.errors import LocalizationError
from repro.obs import LATENCY_BUCKETS_S, get_observer
from repro.service.batcher import MicroBatcher
from repro.service.pool import (
    LocalizerPool,
    UnknownScenarioError,
)
from repro.service.ratelimit import RateLimiter
from repro.service.schema import (
    MAX_BODY_BYTES,
    SchemaError,
    decode_observations,
    error_body,
    locate_response,
    parse_locate_request,
)

#: (status, JSON body, extra headers) -- what every handler returns.
Response = Tuple[int, Dict[str, Any], Dict[str, str]]


def _key_digest(api_key: Optional[str]) -> str:
    """Loggable identity of an API key: short digest, never the key."""
    if not api_key:
        return "-"
    return hashlib.sha256(api_key.encode("utf-8")).hexdigest()[:8]


@dataclass
class ServiceConfig:
    """Tunables of one service instance.

    Attributes:
        rate_per_s / burst: token-bucket parameters per API key.
        api_keys: optional allowlist; None accepts any key.
        max_batch / max_wait_s: micro-batcher coalescing window.
        access_log_path: NDJSON access log (None disables logging).
    """

    rate_per_s: float = 50.0
    burst: int = 20
    api_keys: Optional[FrozenSet[str]] = None
    max_batch: int = 8
    max_wait_s: float = 0.005
    access_log_path: Optional[str] = None


class LocalizationService:
    """Transport-free request handling over a warm localizer pool.

    Thread-safety: all entry points may be called concurrently from
    server threads; shared counters, the access log and batcher
    creation are lock-protected, and the pool/limiter guard themselves.
    """

    def __init__(
        self,
        pool: Optional[LocalizerPool] = None,
        config: Optional[ServiceConfig] = None,
    ):
        self.pool = pool or LocalizerPool()
        self.config = config or ServiceConfig()
        self.limiter = RateLimiter(
            rate_per_s=self.config.rate_per_s,
            burst=self.config.burst,
            api_keys=self.config.api_keys,
        )
        self.started_monotonic = time.monotonic()
        self._batchers: Dict[str, MicroBatcher] = {}
        self._lock = threading.Lock()
        self._request_counter = 0
        self.responses_by_status: Dict[int, int] = {}
        self.responses_by_provider: Dict[str, int] = {}
        self._access_log = (
            open(self.config.access_log_path, "a", encoding="utf-8")
            if self.config.access_log_path
            else None
        )
        self._closed = False

    # ---------------------------------------------------------- helpers

    def _next_request_id(self) -> str:
        with self._lock:
            self._request_counter += 1
            return f"req-{self._request_counter:06d}"

    def _batcher_for(self, scenario: str) -> MicroBatcher:
        """Get-or-create the scenario's micro-batcher (lock-protected)."""
        batcher = self._batchers.get(scenario)
        if batcher is not None:
            return batcher
        warm = self.pool.get(scenario)
        with self._lock:
            batcher = self._batchers.get(scenario)
            if batcher is None:
                batcher = MicroBatcher(
                    warm.chain.locate_batch,
                    max_batch=self.config.max_batch,
                    max_wait_s=self.config.max_wait_s,
                    name=f"batch-{scenario}",
                )
                self._batchers[scenario] = batcher
        return batcher

    def _record(
        self,
        status: int,
        request_id: str,
        api_key: Optional[str],
        scenario: Optional[str],
        provider: Optional[str],
        latency_s: float,
        error_code: Optional[str],
    ) -> None:
        """Account one finished request: counters, metrics, access log."""
        with self._lock:
            self.responses_by_status[status] = (
                self.responses_by_status.get(status, 0) + 1
            )
            if provider is not None:
                self.responses_by_provider[provider] = (
                    self.responses_by_provider.get(provider, 0) + 1
                )
        observer = get_observer()
        if observer.enabled:
            observer.metrics.counter("service.requests_total").inc()
            observer.metrics.counter(f"service.status.{status}").inc()
            if provider is not None:
                observer.metrics.counter(
                    f"service.provider.{provider}"
                ).inc()
            observer.metrics.histogram(
                "service.request_latency_s", LATENCY_BUCKETS_S
            ).observe(latency_s)
        if self._access_log is not None:
            line = json.dumps(
                {
                    "ts": time.time(),
                    "request_id": request_id,
                    "key": _key_digest(api_key),
                    "scenario": scenario,
                    "status": status,
                    "provider": provider,
                    "latency_s": round(latency_s, 6),
                    "error": error_code,
                },
                sort_keys=True,
            )
            with self._lock:
                self._access_log.write(line + "\n")
                self._access_log.flush()

    # ----------------------------------------------------------- routes

    def handle_locate(self, raw_body: bytes) -> Response:
        """Serve one ``POST /v1/locate`` body end to end."""
        started = time.perf_counter()
        request_id = self._next_request_id()
        api_key: Optional[str] = None
        scenario: Optional[str] = None
        observer = get_observer()
        with observer.span("service.locate"):
            try:
                request = parse_locate_request(raw_body)
            except SchemaError as exc:
                return self._finish(
                    400,
                    error_body(
                        "invalid_request",
                        exc.message,
                        field=exc.field,
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "invalid_request",
                )
            api_key = request.api_key
            scenario = request.scenario
            if not self.limiter.authorized(api_key):
                return self._finish(
                    401,
                    error_body(
                        "unauthorized",
                        "unknown API key",
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "unauthorized",
                )
            decision = self.limiter.check(api_key)
            if not decision.allowed:
                retry_after = max(
                    1, int(math.ceil(decision.retry_after_s))
                )
                return self._finish(
                    429,
                    error_body(
                        "rate_limited",
                        "token bucket empty for this API key",
                        retry_after_s=round(decision.retry_after_s, 4),
                        request_id=request_id,
                    ),
                    {"Retry-After": str(retry_after)},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "rate_limited",
                )
            try:
                warm = self.pool.get(request.scenario)
            except UnknownScenarioError as exc:
                return self._finish(
                    404,
                    error_body(
                        "unknown_scenario",
                        str(exc),
                        scenarios=exc.known,
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "unknown_scenario",
                )
            try:
                observations = decode_observations(
                    request.observations,
                    warm.testbed.anchors,
                    warm.testbed.master_index,
                )
            except SchemaError as exc:
                return self._finish(
                    400,
                    error_body(
                        "invalid_request",
                        exc.message,
                        field=exc.field,
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "invalid_request",
                )
            outcome = self._batcher_for(request.scenario).locate(
                observations
            )
            if isinstance(outcome.decision, LocalizationError):
                return self._finish(
                    503,
                    error_body(
                        "no_fix",
                        str(outcome.decision),
                        request_id=request_id,
                    ),
                    {},
                    request_id,
                    api_key,
                    scenario,
                    None,
                    started,
                    "no_fix",
                )
            latency_s = time.perf_counter() - started
            body = locate_response(
                position_x=float(outcome.decision.position.x),
                position_y=float(outcome.decision.position.y),
                provider=outcome.decision.provider,
                scenario=request.scenario,
                request_id=request_id,
                latency_s=round(latency_s, 6),
                quality=outcome.decision.quality.to_dict(),
                fallback_reasons=outcome.decision.fallback_reasons,
                batch_size=outcome.batch_size,
            )
            self._record(
                200,
                request_id,
                api_key,
                scenario,
                outcome.decision.provider,
                latency_s,
                None,
            )
            return 200, body, {}

    def _finish(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Dict[str, str],
        request_id: str,
        api_key: Optional[str],
        scenario: Optional[str],
        provider: Optional[str],
        started: float,
        error_code: Optional[str],
    ) -> Response:
        """Record a non-200 outcome and shape the response tuple."""
        self._record(
            status,
            request_id,
            api_key,
            scenario,
            provider,
            time.perf_counter() - started,
            error_code,
        )
        return status, body, headers

    def handle_health(self) -> Response:
        """``GET /v1/health``: liveness plus warm-pool readiness."""
        pool_info = self.pool.info()
        return (
            200,
            {
                "status": "ok",
                "uptime_s": round(
                    time.monotonic() - self.started_monotonic, 3
                ),
                "scenarios": pool_info["scenarios"],
                "warm": sorted(pool_info["warm"]),
            },
            {},
        )

    def handle_stats(self) -> Response:
        """``GET /v1/stats``: pool, limiter, batcher and status counters."""
        with self._lock:
            by_status = {
                str(status): count
                for status, count in sorted(
                    self.responses_by_status.items()
                )
            }
            by_provider = dict(
                sorted(self.responses_by_provider.items())
            )
            batchers = {
                name: batcher.info()
                for name, batcher in sorted(self._batchers.items())
            }
        return (
            200,
            {
                "uptime_s": round(
                    time.monotonic() - self.started_monotonic, 3
                ),
                "responses_by_status": by_status,
                "responses_by_provider": by_provider,
                "pool": self.pool.info(),
                "ratelimit": self.limiter.info(),
                "batchers": batchers,
            },
            {},
        )

    def close(self) -> None:
        """Stop batcher workers and close the access log."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batchers = list(self._batchers.values())
        for batcher in batchers:
            batcher.close()
        if self._access_log is not None:
            with self._lock:
                self._access_log.close()


# ------------------------------------------------------------- transport


def _handler_for(service: LocalizationService) -> Type[BaseHTTPRequestHandler]:
    """Build the request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # The NDJSON access log supersedes BaseHTTPRequestHandler's
        # stderr chatter.

        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass

        def _send(self, response: Response) -> None:
            status, body, headers = response
            payload = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        def do_POST(self) -> None:
            if self.path != "/v1/locate":
                self._send(
                    (404, error_body("not_found", self.path), {})
                )
                return
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                self._send(
                    (
                        400,
                        error_body(
                            "invalid_request",
                            "a JSON body with Content-Length is "
                            "required",
                        ),
                        {},
                    )
                )
                return
            if length > MAX_BODY_BYTES:
                self._send(
                    (
                        413,
                        error_body(
                            "payload_too_large",
                            f"body exceeds {MAX_BODY_BYTES} bytes",
                        ),
                        {},
                    )
                )
                return
            raw = self.rfile.read(length)
            self._send(service.handle_locate(raw))

        def do_GET(self) -> None:
            if self.path == "/v1/health":
                self._send(service.handle_health())
            elif self.path == "/v1/stats":
                self._send(service.handle_stats())
            else:
                self._send(
                    (404, error_body("not_found", self.path), {})
                )

    return Handler


def make_server(
    service: LocalizationService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind the service behind a threading HTTP server.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  The caller owns the lifecycle::

        server = make_server(service, port=8080)
        server.serve_forever()          # blocks; Ctrl-C to stop
        ...
        server.shutdown(); service.close()
    """
    server = ThreadingHTTPServer((host, port), _handler_for(service))
    server.daemon_threads = True
    return server
