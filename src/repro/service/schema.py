"""Request/response schema of the localization service.

One locate request is a JSON object::

    {
      "key": "tenant-42",            # API key (rate-limit bucket)
      "scenario": "vicon",           # warm-pool key (anchor geometry)
      "observations": {
        "frequencies_hz": [...],                 # (K,)
        "tag_to_anchor": [[[[re, im], ...]]],    # (I, J, K, 2)
        "master_to_anchor": [[[[re, im], ...]]], # (I, J, K, 2)
        "band_snr_db": [[...]]                   # optional, (I, K)
      }
    }

The anchor geometry deliberately does **not** travel with the request:
it is what the server's warm pool is keyed on, so a client names a
scenario and ships only the measured channels.  Complex arrays are
encoded as a trailing ``[re, im]`` axis -- strict JSON has no complex
type and no Inf/NaN, and the decoder enforces both.

Validation failures raise :class:`SchemaError`, a typed error carrying
the offending field, which the HTTP layer maps to a structured 400
response.  Scenario existence is *not* checked here: an unknown
scenario is a routing concern (404), not a schema concern (400).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.observations import ChannelObservations
from repro.errors import ReproError
from repro.rf.antenna import Anchor

#: Hard cap on request body size: the default 4x4x37 scenario encodes to
#: ~120 kB, so 4 MiB leaves two orders of magnitude of headroom while
#: still bounding a hostile payload.
MAX_BODY_BYTES = 4 * 1024 * 1024


class SchemaError(ReproError):
    """A request failed schema validation (maps to HTTP 400).

    Attributes:
        field: dotted path of the offending field (``"body"`` when the
            envelope itself is unusable).
    """

    def __init__(self, field: str, message: str):
        super().__init__(f"{field}: {message}")
        self.field = field
        self.message = message


@dataclass(frozen=True)
class LocateRequest:
    """A validated locate-request envelope (observations still encoded).

    Attributes:
        api_key: the caller's API key (None when omitted).
        scenario: warm-pool key naming the anchor geometry.
        observations: the raw observations payload; decoded against the
            scenario's geometry by :func:`decode_observations` once the
            scenario is resolved.
    """

    api_key: Optional[str]
    scenario: str
    observations: Dict[str, Any]


def encode_complex(array: np.ndarray) -> list:
    """Encode a complex ndarray as nested lists with a [re, im] axis."""
    stacked = np.stack(
        [np.asarray(array).real, np.asarray(array).imag], axis=-1
    )
    return stacked.tolist()


def _decode_float_array(
    value: Any, field: str, shape: Optional[Tuple[int, ...]] = None
) -> np.ndarray:
    """Nested JSON lists -> float ndarray, with shape/finiteness checks."""
    try:
        array = np.asarray(value, dtype=float)
    except (TypeError, ValueError) as exc:
        raise SchemaError(field, f"not a numeric array: {exc}") from exc
    if shape is not None and array.shape != shape:
        raise SchemaError(
            field, f"shape {array.shape} != expected {shape}"
        )
    if not np.all(np.isfinite(array)):
        raise SchemaError(field, "contains non-finite values")
    return array


def decode_complex(
    value: Any, field: str, shape: Tuple[int, ...]
) -> np.ndarray:
    """Decode a [re, im]-trailing nested list into a complex ndarray."""
    array = _decode_float_array(value, field, shape=(*shape, 2))
    return array[..., 0] + 1j * array[..., 1]


def encode_observations(observations: ChannelObservations) -> dict:
    """Serialize one fix's channels for a locate request body."""
    payload: Dict[str, Any] = {
        "frequencies_hz": observations.frequencies_hz.tolist(),
        "tag_to_anchor": encode_complex(observations.tag_to_anchor),
        "master_to_anchor": encode_complex(observations.master_to_anchor),
    }
    if observations.band_snr_db is not None:
        snr = np.nan_to_num(
            observations.band_snr_db, nan=-999.0
        )  # strict JSON has no NaN; -999 dB is unambiguously "no signal"
        payload["band_snr_db"] = snr.tolist()
    return payload


def decode_observations(
    payload: Any,
    anchors: Sequence[Anchor],
    master_index: int,
    field: str = "observations",
) -> ChannelObservations:
    """Decode an observations payload against a scenario's geometry.

    Args:
        payload: the request's ``observations`` object.
        anchors: the scenario's anchor descriptors (server-side truth;
            shapes in the payload must match them).
        master_index: the scenario's master anchor.
        field: dotted prefix used in :class:`SchemaError` paths.

    Raises:
        SchemaError: missing keys, wrong shapes, non-finite values.
    """
    if not isinstance(payload, dict):
        raise SchemaError(field, "must be an object")
    for key in ("frequencies_hz", "tag_to_anchor", "master_to_anchor"):
        if key not in payload:
            raise SchemaError(f"{field}.{key}", "missing")
    frequencies = _decode_float_array(
        payload["frequencies_hz"], f"{field}.frequencies_hz"
    )
    if frequencies.ndim != 1 or frequencies.size < 1:
        raise SchemaError(
            f"{field}.frequencies_hz", "must be a non-empty 1-D array"
        )
    num_anchors = len(anchors)
    num_antennas = max(a.num_antennas for a in anchors)
    shape = (num_anchors, num_antennas, int(frequencies.size))
    tag = decode_complex(
        payload["tag_to_anchor"], f"{field}.tag_to_anchor", shape
    )
    master = decode_complex(
        payload["master_to_anchor"], f"{field}.master_to_anchor", shape
    )
    snr: Optional[np.ndarray] = None
    if payload.get("band_snr_db") is not None:
        snr = _decode_float_array(
            payload["band_snr_db"],
            f"{field}.band_snr_db",
            shape=(num_anchors, int(frequencies.size)),
        )
    return ChannelObservations(
        anchors=list(anchors),
        master_index=master_index,
        frequencies_hz=frequencies,
        tag_to_anchor=tag,
        master_to_anchor=master,
        band_snr_db=snr,
    )


def parse_locate_request(raw: bytes) -> LocateRequest:
    """Parse and validate a locate request body (envelope level).

    Raises:
        SchemaError: oversized body, malformed JSON, wrong field types.
    """
    if len(raw) > MAX_BODY_BYTES:
        raise SchemaError(
            "body", f"exceeds {MAX_BODY_BYTES} bytes ({len(raw)})"
        )
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SchemaError("body", f"invalid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise SchemaError("body", "must be a JSON object")
    scenario = body.get("scenario")
    if not isinstance(scenario, str) or not scenario:
        raise SchemaError("scenario", "must be a non-empty string")
    api_key = body.get("key")
    if api_key is not None and not isinstance(api_key, str):
        raise SchemaError("key", "must be a string when present")
    observations = body.get("observations")
    if not isinstance(observations, dict):
        raise SchemaError("observations", "must be an object")
    return LocateRequest(
        api_key=api_key, scenario=scenario, observations=observations
    )


def error_body(code: str, message: str, **extra: Any) -> dict:
    """The service's uniform error envelope."""
    error: Dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    return {"error": error}


def locate_response(
    position_x: float,
    position_y: float,
    provider: str,
    scenario: str,
    request_id: str,
    latency_s: float,
    quality: Optional[dict] = None,
    fallback_reasons: Optional[List[str]] = None,
    batch_size: int = 1,
    trace_id: str = "",
) -> dict:
    """The 200 response body of one locate request.

    ``trace_id`` is the request's distributed-trace identity (also
    emitted as the ``traceparent`` response header); clients quote it
    to ``repro obs trace`` to reconstruct the request's span tree.
    """
    return {
        "position": {"x": position_x, "y": position_y},
        "provider": provider,
        "scenario": scenario,
        "request_id": request_id,
        "latency_s": latency_s,
        "quality": quality or {},
        "fallback_reasons": fallback_reasons or [],
        "batch_size": batch_size,
        "trace_id": trace_id,
    }
