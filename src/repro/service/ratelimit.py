"""API-key token-bucket rate limiting for the locate endpoint.

One :class:`TokenBucket` per API key: a bucket holds up to ``burst``
tokens, refills at ``rate_per_s``, and each request spends one token.
An empty bucket yields a 429 with a ``Retry-After`` derived from the
exact deficit, so well-behaved clients can pace themselves instead of
hammering.

The limiter optionally carries an API-key allowlist; when one is
configured, unknown keys are rejected outright (401) *before* they can
consume bucket state.  Without an allowlist any key -- including the
anonymous empty key -- gets its own bucket, which is the right default
for a reproduction service (isolation without credential management).

Time is injected (``clock``) so tests drive the refill deterministically.
"""

from __future__ import annotations

from repro.analysis.runtime_locks import LockLike, guarded_by, make_lock
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional

from repro.errors import ConfigurationError

#: Bucket key used when a request carries no API key.
ANONYMOUS_KEY = "-"


@dataclass(frozen=True)
class RateLimitDecision:
    """Outcome of one admission check.

    Attributes:
        allowed: whether the request may proceed.
        retry_after_s: seconds until one token is available (0 when
            allowed); the HTTP layer rounds this up into ``Retry-After``.
        tokens_left: tokens remaining after the decision (diagnostic).
    """

    allowed: bool
    retry_after_s: float = 0.0
    tokens_left: float = 0.0


class TokenBucket:
    """A single key's token bucket.

    Thread-safety: callers must serialise access (the owning
    :class:`RateLimiter` holds its registry lock across ``acquire``).
    """

    def __init__(self, rate_per_s: float, burst: int):
        if rate_per_s <= 0:
            raise ConfigurationError(
                f"rate_per_s must be > 0, got {rate_per_s}"
            )
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._updated_at: Optional[float] = None

    def acquire(self, now: float) -> RateLimitDecision:
        """Spend one token at time ``now`` (monotonic seconds)."""
        if self._updated_at is not None:
            elapsed = max(0.0, now - self._updated_at)
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate_per_s
            )
        self._updated_at = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return RateLimitDecision(
                allowed=True, tokens_left=self._tokens
            )
        deficit = 1.0 - self._tokens
        return RateLimitDecision(
            allowed=False,
            retry_after_s=deficit / self.rate_per_s,
            tokens_left=self._tokens,
        )


@guarded_by(
    "_lock",
    "_buckets",
    "allowed_total",
    "throttled_total",
    "rejected_total",
)
@dataclass
class RateLimiter:
    """Per-API-key admission control for the service.

    Attributes:
        rate_per_s: steady-state tokens per second per key.
        burst: bucket capacity per key.
        api_keys: optional allowlist; None accepts any key.
        clock: monotonic time source (injected for tests).
        allowed_total / throttled_total / rejected_total: lifetime
            counters for /v1/stats.
    """

    rate_per_s: float = 50.0
    burst: int = 20
    api_keys: Optional[FrozenSet[str]] = None
    clock: Callable[[], float] = time.monotonic
    allowed_total: int = 0
    throttled_total: int = 0
    rejected_total: int = 0
    _buckets: Dict[str, TokenBucket] = field(
        default_factory=dict, repr=False
    )
    _lock: LockLike = field(
        default_factory=lambda: make_lock("RateLimiter._lock"),
        repr=False,
    )

    def authorized(self, api_key: Optional[str]) -> bool:
        """Whether the key passes the allowlist (trivially true without
        one).  Thread-safe: reads immutable configuration only."""
        if self.api_keys is None:
            return True
        authorized = api_key is not None and api_key in self.api_keys
        if not authorized:
            with self._lock:
                self.rejected_total += 1
        return authorized

    def check(self, api_key: Optional[str]) -> RateLimitDecision:
        """Admit or throttle one request for ``api_key``.

        Thread-safe: bucket lookup, refill and spend happen under one
        registry lock (requests are admission-checked in well under a
        microsecond, so a single lock does not bottleneck the pool).
        """
        key = api_key if api_key else ANONYMOUS_KEY
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(self.rate_per_s, self.burst)
                self._buckets[key] = bucket
            decision = bucket.acquire(now)
            if decision.allowed:
                self.allowed_total += 1
            else:
                self.throttled_total += 1
        return decision

    def info(self) -> dict:
        """Plain-data limiter statistics for /v1/stats."""
        with self._lock:
            return {
                "rate_per_s": self.rate_per_s,
                "burst": self.burst,
                "keys": len(self._buckets),
                "allowlist": (
                    sorted(self.api_keys)
                    if self.api_keys is not None
                    else None
                ),
                "allowed_total": self.allowed_total,
                "throttled_total": self.throttled_total,
                "rejected_total": self.rejected_total,
            }
