"""Accuracy telemetry: per-anchor / per-band contributions per fix.

The service's latency metrics say how *fast* a fix was; this module
says how *good* its signal chain was, on every live request rather than
only on replayed bundles.  For each BLoc decision it records into the
service's always-on registry:

* ``telemetry.anchor.<name>.coverage`` -- usable band fraction at the
  anchor (from :func:`repro.obs.diag.band_quality`, the cheap standalone
  per-(anchor, band) assessment);
* ``telemetry.anchor.<name>.snr_db`` -- median usable-band SNR;
* ``telemetry.anchor.<name>.score_weight`` -- the anchor's Eq. 18 path
  term ``exp(-a * d_i)`` at the decided position: how much that anchor's
  proximity argued for the chosen peak (``a`` is the paper's
  distance-weight 0.1, Section 7);
* ``telemetry.band.usable_fraction`` -- usable fraction per band index,
  histogrammed so interference bursts concentrated on a few channels
  show up as a left tail;

and feeds the same :class:`~repro.obs.health.AnchorHealthMonitor`
anomaly detectors the offline ``repro diag`` replay path uses, so a
desensed anchor trips ``band_outage`` / ``low_snr`` events from
production traffic directly.

Cardinality is bounded by construction: one gauge triple per anchor
(<= 4 in every shipped scenario) and one histogram per instance.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.analysis.runtime_locks import guarded_by, make_lock
from repro.constants import BLOC_SCORE_DISTANCE_WEIGHT
from repro.core.observations import ChannelObservations
from repro.obs.diag import FixDiagnostics, band_quality
from repro.obs.health import AnchorHealthMonitor, AnomalyEvent
from repro.obs.metrics import MetricsRegistry
from repro.utils.geometry2d import Point

#: Bucket edges for per-band usable fractions (a share in [0, 1]).
FRACTION_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


@guarded_by("_lock", "_fixes")
class AccuracyTelemetry:
    """Folds one locate decision at a time into accuracy instruments.

    Args:
        metrics: the registry gauges/histograms are written to (the
            service's always-on registry).
        monitor: anomaly detectors to feed; a fresh monitor bound to
            nothing (events only) when omitted.

    Thread-safety: ``record_fix`` may be called from batcher worker
    threads concurrently; the monitor's streak detectors assume fix
    order, so the fold is serialised under an instance lock (the
    instruments guard themselves).
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        monitor: Optional[AnchorHealthMonitor] = None,
    ):
        self.metrics = metrics
        self.monitor = monitor or AnchorHealthMonitor()
        self._lock = make_lock("AccuracyTelemetry._lock")
        self._fixes = 0

    @property
    def fixes_recorded(self) -> int:
        """How many decisions have been folded in (read under the
        lock; batcher workers increment concurrently)."""
        with self._lock:
            return self._fixes

    def record_fix(
        self,
        observations: ChannelObservations,
        position: Optional[Point],
    ) -> List[AnomalyEvent]:
        """Fold one fix's observations (and decided position) in.

        Returns the anomaly events this fix newly fired, so callers can
        surface them (the service attaches the count to its request
        span).  Never raises on degraded input -- telemetry must not be
        able to fail a request that the provider chain answered.
        """
        quality = band_quality(observations)
        anchor_names = [
            anchor.name or f"anchor{i}"
            for i, anchor in enumerate(observations.anchors)
        ]
        diag = FixDiagnostics(
            anchor_names=anchor_names,
            frequencies_hz=np.asarray(
                observations.frequencies_hz, dtype=float
            ),
            stage_reached="observations",
            band_quality=quality,
        )
        coverage = quality.coverage()
        snr_db = quality.anchor_snr_db()
        for i, name in enumerate(anchor_names):
            self.metrics.gauge(
                f"telemetry.anchor.{name}.coverage"
            ).set(float(coverage[i]))
            if math.isfinite(float(snr_db[i])):
                self.metrics.gauge(
                    f"telemetry.anchor.{name}.snr_db"
                ).set(float(snr_db[i]))
            if position is not None:
                anchor_xy = observations.anchors[i].position
                distance = math.hypot(
                    position.x - anchor_xy.x, position.y - anchor_xy.y
                )
                self.metrics.gauge(
                    f"telemetry.anchor.{name}.score_weight"
                ).set(
                    math.exp(-BLOC_SCORE_DISTANCE_WEIGHT * distance)
                )
        usable_per_band = 1.0 - quality.missing.mean(axis=0)
        band_histogram = self.metrics.histogram(
            "telemetry.band.usable_fraction", FRACTION_BUCKETS
        )
        for fraction in usable_per_band:
            band_histogram.observe(float(fraction))
        self.metrics.gauge("telemetry.band.usable_overall").set(
            float(usable_per_band.mean())
        )
        with self._lock:
            fix_index = self._fixes
            self._fixes += 1
            events = self.monitor.observe(diag, fix_index)
        if events:
            self.metrics.counter("telemetry.anomalies_total").inc(
                len(events)
            )
        return events

    def info(self) -> dict:
        """Plain-data telemetry state for ``/v1/stats``."""
        with self._lock:
            fixes = self._fixes
        events = self.monitor.events
        by_kind: dict = {}
        for event in events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        return {
            "fixes_recorded": fixes,
            "anomalies_total": len(events),
            "anomalies_by_kind": dict(sorted(by_kind.items())),
        }
