"""Warm localizer pool keyed by scenario (anchor geometry).

The expensive part of a BLoc fix is not Eq. 17's matvecs -- it is
building the steering matrices for a (grid, anchors, band plan) tuple,
~89 MB of precomputation at the paper's 5 cm grid.  The pool pays that
build once per scenario key and keeps the result warm: every scenario
maps to exactly one :class:`~repro.core.engine.SteeringCache` entry in
one cache shared across the pool, so concurrent requests against the
same geometry all ride the same matrices and the second request for a
key never rebuilds.

Scenarios are server-side configuration (name -> testbed factory), not
request payload: a client names ``"vicon"`` and ships only channels,
which keeps request bodies small and makes geometry spoofing impossible.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.runtime_locks import guarded_by, make_lock
from repro.core.engine import EngineConfig, SteeringCache
from repro.core.localizer import BlocConfig, BlocLocalizer
from repro.errors import ReproError
from repro.obs import get_observer
from repro.service.providers import ProviderChain, QualityGates
from repro.sim.measurement import ChannelMeasurementModel
from repro.sim.testbed import Testbed, open_room_testbed, vicon_testbed
from repro.utils.geometry2d import Point

#: Grid resolution the service defaults to.  Coarser than the paper's
#: 0.05 m because a service trades a few centimetres of grid quantisation
#: for a ~4x smaller steering build per key; pass your own specs/
#: resolution to run the full-resolution grid.
DEFAULT_SERVICE_RESOLUTION_M = 0.1


class UnknownScenarioError(ReproError):
    """The request named a scenario the pool does not serve (HTTP 404)."""

    def __init__(self, name: str, known: List[str]):
        super().__init__(
            f"unknown scenario {name!r}; serving {sorted(known)}"
        )
        self.name = name
        self.known = sorted(known)


@dataclass(frozen=True)
class ScenarioSpec:
    """One servable anchor geometry.

    Attributes:
        name: the pool key clients put in requests.
        description: one line for /v1/stats and docs.
        factory: builds the scenario's testbed (called once, lazily).
    """

    name: str
    description: str
    factory: Callable[[], Testbed]


def default_scenarios() -> Dict[str, ScenarioSpec]:
    """The scenarios `repro serve` offers out of the box."""
    return {
        "vicon": ScenarioSpec(
            name="vicon",
            description=(
                "paper Section 7 VICON room: 4 anchors, metal/glass "
                "clutter, NLOS pockets"
            ),
            factory=vicon_testbed,
        ),
        "open_room": ScenarioSpec(
            name="open_room",
            description=(
                "clutter-free LOS room (the Fig. 8b microbenchmark "
                "setting)"
            ),
            factory=open_room_testbed,
        ),
    }


@dataclass
class WarmScenario:
    """A scenario after its one-time warm-up.

    Attributes:
        spec: the scenario definition.
        testbed: the built geometry (anchors/master decode requests).
        chain: the provider chain over the warm BLoc localizer.
        warmup_s: wall seconds the steering build took.
    """

    spec: ScenarioSpec
    testbed: Testbed
    chain: ProviderChain
    warmup_s: float

    def info(self) -> dict:
        """Plain-data scenario description for /v1/stats."""
        return {
            "description": self.spec.description,
            "num_anchors": len(self.testbed.anchors),
            "num_antennas": self.testbed.anchors[0].num_antennas,
            "master_index": self.testbed.master_index,
            "warmup_s": round(self.warmup_s, 4),
        }


@guarded_by("_lock", "_warm")
class LocalizerPool:
    """Lazily-built, permanently-warm localizers keyed by scenario.

    All scenarios share one :class:`SteeringCache` sized to hold every
    key simultaneously, so the pool never evicts a warm geometry to
    admit another.

    Thread-safety: ``get`` may be called concurrently from server
    threads; scenario builds are serialised by a pool lock with a
    double-check so one slow build never runs twice.
    """

    def __init__(
        self,
        scenarios: Optional[Dict[str, ScenarioSpec]] = None,
        grid_resolution_m: float = DEFAULT_SERVICE_RESOLUTION_M,
        gates: Optional[QualityGates] = None,
    ):
        self.scenarios = (
            dict(scenarios) if scenarios is not None else default_scenarios()
        )
        self.grid_resolution_m = float(grid_resolution_m)
        self.gates = gates or QualityGates()
        self.engine = SteeringCache(
            EngineConfig(max_entries=max(4, len(self.scenarios)))
        )
        self._warm: Dict[str, WarmScenario] = {}
        self._lock = make_lock("LocalizerPool._lock")

    def names(self) -> List[str]:
        """Served scenario names, sorted."""
        return sorted(self.scenarios)

    def get(self, name: str) -> WarmScenario:
        """The warm scenario for ``name``, building it on first use.

        Raises:
            UnknownScenarioError: when ``name`` is not served.
        """
        # Double-checked fast path: a stale miss only re-enters the
        # locked slow path; dict reads are atomic under the GIL.
        warm = self._warm.get(name)  # repro: noqa[RPR013] -- benign racy fast-path read, settled under the lock below
        if warm is not None:
            return warm
        if name not in self.scenarios:
            raise UnknownScenarioError(name, list(self.scenarios))
        with self._lock:
            warm = self._warm.get(name)
            if warm is None:
                warm = self._build(self.scenarios[name])
                self._warm[name] = warm
        return warm

    def prewarm(self) -> List[str]:
        """Build every scenario up front (serve-time startup)."""
        for name in self.names():
            self.get(name)
        return self.names()

    def _build(self, spec: ScenarioSpec) -> WarmScenario:
        """Build one scenario's testbed, localizer and steering entry.

        The warm-up fix runs a synthetic centre-of-room measurement
        through the BLoc path purely to populate the steering cache;
        its result is discarded.  The build runs inside a
        ``service.pool_build`` span, so a request that paid the cold
        build (rather than riding a warm entry) shows it in its trace.
        """
        started = time.perf_counter()
        with get_observer().span("service.pool_build", scenario=spec.name):
            testbed = spec.factory()
            bloc = BlocLocalizer(
                config=BlocConfig(
                    grid_resolution_m=self.grid_resolution_m
                ),
                engine=self.engine,
            )
            chain = ProviderChain(bloc=bloc, gates=self.gates)
            model = ChannelMeasurementModel(testbed, seed=0)
            x_min, x_max, y_min, y_max = testbed.environment.bounds()
            centre = Point((x_min + x_max) / 2.0, (y_min + y_max) / 2.0)
            bloc.locate(model.measure(centre), keep_map=False)
        return WarmScenario(
            spec=spec,
            testbed=testbed,
            chain=chain,
            warmup_s=time.perf_counter() - started,
        )

    def info(self) -> dict:
        """Plain-data pool statistics for /v1/stats.

        Thread-safe: snapshots under the pool lock.
        """
        with self._lock:
            warm = {
                name: scenario.info()
                for name, scenario in self._warm.items()
            }
        return {
            "scenarios": self.names(),
            "warm": warm,
            # Warmth at a glance: every served scenario -> built or not,
            # so a smoke test asserts readiness without inferring it
            # from the warm dict's keys.
            "warmth": {
                name: name in warm for name in self.names()
            },
            "grid_resolution_m": self.grid_resolution_m,
            "engine": self.engine.info(),
        }
