"""Micro-batching: coalesce concurrent locate requests into one batch.

Eq. 17 is a stack of matvecs over one scenario's steering matrices, and
the batched backend streams each matrix through memory once per *batch*
instead of once per fix.  Under concurrent load, requests that arrive
within a few milliseconds of each other can therefore share one
``locate_batch`` call for close to the cost of one fix.

Mechanics: callers submit observations and block on a per-request
future; a background worker drains the queue, gathers until either
``max_batch`` requests are pending or ``max_wait_s`` has elapsed since
the first one, runs the provider chain's ``locate_batch`` once, and
resolves each future with its own entry.  A lone request under no load
waits at most ``max_wait_s`` (default 5 ms) -- the deliberate latency
price of batching -- and failures stay per-future because the chain
returns per-fix errors rather than raising.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.observations import ChannelObservations
from repro.errors import LocalizationError, ReproError
from repro.obs import get_observer
from repro.obs.trace import TraceContext
from repro.service.providers import LocateDecision

#: Batch callable: observations in, parallel decisions/errors out.
BatchFn = Callable[
    [Sequence[ChannelObservations]],
    List[Union[LocateDecision, LocalizationError]],
]

#: Queue sentinel that tells the worker to exit.
_CLOSE = object()


@dataclass(frozen=True)
class BatchedOutcome:
    """What one caller gets back: its decision plus the batch context.

    Attributes:
        decision: the provider chain's per-fix outcome (decision or
            contained :class:`LocalizationError`).
        batch_size: how many requests shared the ``locate_batch`` call.
        batch_trace_id: trace id of the shared batch span (``""`` when
            tracing was disabled).  The batch runs on its *own* trace --
            it belongs to several requests at once -- and each member
            trace links to it through this id (and back, through the
            batch span's ``member_trace_ids`` attribute), which is how
            ``repro obs trace`` grafts the batch subtree into a
            member's tree.
        batch_span_id: span id of the shared batch span (0 when tracing
            was disabled).
    """

    decision: Union[LocateDecision, LocalizationError]
    batch_size: int
    batch_trace_id: str = ""
    batch_span_id: int = 0


class MicroBatcher:
    """One scenario's request coalescer.

    Thread-safety: ``submit`` may be called from any number of server
    threads; the single worker thread owns batching state.
    """

    def __init__(
        self,
        batch_fn: BatchFn,
        max_batch: int = 8,
        max_wait_s: float = 0.005,
        name: str = "batcher",
    ):
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ReproError(
                f"max_wait_s must be >= 0, got {max_wait_s}"
            )
        self.batch_fn = batch_fn
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.batches_total = 0
        self.requests_total = 0
        self.largest_batch = 0
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._closed = threading.Event()
        self._worker = threading.Thread(
            target=self._run, name=f"{name}-worker", daemon=True
        )
        self._worker.start()

    def submit(
        self,
        observations: ChannelObservations,
        context: Optional[TraceContext] = None,
    ) -> "Future[BatchedOutcome]":
        """Enqueue one request; the future resolves with its outcome.

        ``context`` carries the submitting request's trace identity: the
        shared batch span records every member's trace id
        (``member_trace_ids``), so the batch subtree is reachable from
        each member's trace reconstruction.

        Raises:
            ReproError: when the batcher is already closed.
        """
        if self._closed.is_set():
            raise ReproError("batcher is closed")
        future: "Future[BatchedOutcome]" = Future()
        self._queue.put((observations, future, context))
        return future

    def locate(
        self,
        observations: ChannelObservations,
        context: Optional[TraceContext] = None,
    ) -> BatchedOutcome:
        """Submit and block until the outcome is ready."""
        return self.submit(observations, context).result()

    def _gather(
        self,
    ) -> Optional[
        List[Tuple[ChannelObservations, Future, Optional[TraceContext]]]
    ]:
        """Collect one batch; None means the close sentinel arrived."""
        first = self._queue.get()
        if first is _CLOSE:
            return None
        pending: List[
            Tuple[ChannelObservations, Future, Optional[TraceContext]]
        ] = [first]  # type: ignore[list-item]
        remaining = self.max_wait_s
        while len(pending) < self.max_batch and remaining > 0:
            started = time.perf_counter()
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _CLOSE:
                # Re-enqueue so the next loop iteration exits cleanly
                # after this batch is served.
                self._queue.put(_CLOSE)
                break
            pending.append(item)  # type: ignore[arg-type]
            remaining -= time.perf_counter() - started
        return pending

    def _run(self) -> None:
        """Worker loop: gather -> one locate_batch -> resolve futures.

        Each batch runs inside a ``service.batch`` span on a trace of
        its own (a batch belongs to every member at once, so it cannot
        live on any single member's trace); the span carries the member
        trace ids as a link, and every resolved outcome carries the
        batch's trace/span ids back to its caller.
        """
        while True:
            pending = self._gather()
            if pending is None:
                break
            # Resolved per batch: the observer may be installed after
            # this long-lived worker started (observed() in tests, the
            # CLI's --trace around a running serve loop).
            observer = get_observer()
            observations = [obs for obs, _, _ in pending]
            member_trace_ids = [
                ctx.trace_id for _, _, ctx in pending if ctx is not None
            ]
            batch_trace_id = ""
            batch_span_id = 0
            with observer.span(
                "service.batch",
                size=len(pending),
                member_trace_ids=member_trace_ids,
            ) as batch_span:
                try:
                    outcomes = self.batch_fn(observations)
                except ReproError as exc:
                    for _, future, _ in pending:
                        future.set_exception(exc)
                    continue
                if batch_span is not None:
                    batch_trace_id = batch_span.trace_id
                    batch_span_id = batch_span.span_id
            self.batches_total += 1
            self.requests_total += len(pending)
            self.largest_batch = max(self.largest_batch, len(pending))
            for (_, future, _), outcome in zip(pending, outcomes):
                future.set_result(
                    BatchedOutcome(
                        decision=outcome,
                        batch_size=len(pending),
                        batch_trace_id=batch_trace_id,
                        batch_span_id=batch_span_id,
                    )
                )

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop the worker after the in-flight batch completes."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(_CLOSE)
        self._worker.join(timeout=timeout_s)

    def info(self) -> dict:
        """Plain-data batcher statistics for /v1/stats.

        ``mean_batch`` is the occupancy (requests per locate_batch
        call); ``queue_depth`` is the instantaneous backlog.
        """
        return {
            "max_batch": self.max_batch,
            "max_wait_s": self.max_wait_s,
            "batches_total": self.batches_total,
            "requests_total": self.requests_total,
            "largest_batch": self.largest_batch,
            "mean_batch": (
                round(self.requests_total / self.batches_total, 4)
                if self.batches_total
                else None
            ),
            "queue_depth": self._queue.qsize(),
        }
