"""repro.service: the warm-pool localization service.

An ichnaea-shaped HTTP locate endpoint over the BLoc pipeline::

    from repro.service import LocalizationService, make_server

    service = LocalizationService()
    server = make_server(service, port=8080)
    server.serve_forever()

Requests name a server-side scenario (anchor geometry) and ship only
measured channels; the pool keeps one warm steering-cache entry per
scenario, a micro-batcher coalesces concurrent requests into one batched
Eq. 17 pass, and a provider chain (BLoc -> AoA -> RSSI) keeps degraded
sweeps answerable.  ``repro serve`` and ``repro loadtest`` wrap this
package on the CLI.
"""

from repro.service.app import (
    LocalizationService,
    RotatingNdjsonLog,
    ServiceConfig,
    make_server,
)
from repro.service.batcher import BatchedOutcome, MicroBatcher
from repro.service.telemetry import AccuracyTelemetry
from repro.service.loadtest import (
    LoadtestResult,
    build_request_bodies,
    fetch_metrics,
    run_loadtest,
    update_bench_service_json,
)
from repro.service.pool import (
    DEFAULT_SERVICE_RESOLUTION_M,
    LocalizerPool,
    ScenarioSpec,
    UnknownScenarioError,
    WarmScenario,
    default_scenarios,
)
from repro.service.providers import (
    CsiQuality,
    LocateDecision,
    PROVIDER_CHAIN_ORDER,
    ProviderChain,
    QualityGates,
    assess_quality,
)
from repro.service.ratelimit import (
    RateLimitDecision,
    RateLimiter,
    TokenBucket,
)
from repro.service.schema import (
    LocateRequest,
    MAX_BODY_BYTES,
    SchemaError,
    decode_observations,
    encode_observations,
    error_body,
    locate_response,
    parse_locate_request,
)

__all__ = [
    "AccuracyTelemetry",
    "BatchedOutcome",
    "CsiQuality",
    "DEFAULT_SERVICE_RESOLUTION_M",
    "LoadtestResult",
    "LocalizationService",
    "LocalizerPool",
    "LocateDecision",
    "LocateRequest",
    "MAX_BODY_BYTES",
    "MicroBatcher",
    "PROVIDER_CHAIN_ORDER",
    "ProviderChain",
    "QualityGates",
    "RateLimitDecision",
    "RateLimiter",
    "RotatingNdjsonLog",
    "ScenarioSpec",
    "SchemaError",
    "ServiceConfig",
    "TokenBucket",
    "UnknownScenarioError",
    "WarmScenario",
    "assess_quality",
    "build_request_bodies",
    "decode_observations",
    "default_scenarios",
    "encode_observations",
    "error_body",
    "fetch_metrics",
    "locate_response",
    "make_server",
    "parse_locate_request",
    "run_loadtest",
    "update_bench_service_json",
]
