"""Searcher/provider chain: BLoc -> AoA baseline -> RSSI.

BLoc's accuracy rests on cross-band CSI phase; when a sweep comes back
with too many dead (anchor, band) cells -- interference bursts, a
desensed front end, a wedged radio -- Eq. 10's correction and the
Eq. 17 maps degrade ungracefully.  A production service must not turn
a degraded measurement into a 5xx, so requests run down a provider
chain in strict quality order, the way ichnaea's locate searcher falls
through its positioners:

1. **bloc** -- the full CSI pipeline, gated on CSI quality (band
   coverage overall and at the worst anchor).  Skipped when the gates
   fail, abandoned when it raises.
2. **aoa** -- the BT 5.1-style AoA-array baseline (Paulino et al.):
   per-anchor angle spectra survive dead bands because relative phase
   across one anchor's antennas needs no cross-band coherence.
3. **rssi** -- log-distance trilateration from channel magnitudes; the
   estimator of last resort, which only needs *some* finite power per
   anchor.

Every decision names the provider that produced the fix and the reasons
earlier providers were skipped or failed, so degraded operation is
visible in the response, the access log and the metrics -- never silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.baselines.aoa import AoaLocalizer
from repro.baselines.rssi import RssiTrilateration
from repro.core.correction import usable_band_mask
from repro.core.localizer import BlocLocalizer
from repro.core.observations import ChannelObservations
from repro.errors import LocalizationError
from repro.obs import get_observer
from repro.utils.geometry2d import Point

#: Provider names in fallback order.
PROVIDER_CHAIN_ORDER = ("bloc", "aoa", "rssi")


@dataclass(frozen=True)
class QualityGates:
    """CSI-quality thresholds that admit a request to the BLoc path.

    Attributes:
        min_band_coverage: minimum usable fraction of all (anchor, band)
            cells.
        min_anchor_coverage: minimum usable band fraction at the *worst*
            anchor -- one dead anchor poisons the combined Eq. 17 map
            long before the overall coverage looks bad.
        min_anchors / min_antennas: geometry floor for the full
            pipeline.
    """

    min_band_coverage: float = 0.6
    min_anchor_coverage: float = 0.5
    min_anchors: int = 3
    min_antennas: int = 2


@dataclass(frozen=True)
class CsiQuality:
    """Measured CSI quality of one request's observations.

    Attributes:
        band_coverage: usable fraction of all (anchor, band) cells.
        worst_anchor_coverage: usable band fraction at the worst anchor.
        num_anchors / num_antennas / num_bands: observation shape.
    """

    band_coverage: float
    worst_anchor_coverage: float
    num_anchors: int
    num_antennas: int
    num_bands: int

    def to_dict(self) -> dict:
        """JSON-able form for responses and access logs."""
        return {
            "band_coverage": round(self.band_coverage, 4),
            "worst_anchor_coverage": round(
                self.worst_anchor_coverage, 4
            ),
            "num_anchors": self.num_anchors,
            "num_antennas": self.num_antennas,
            "num_bands": self.num_bands,
        }


def assess_quality(observations: ChannelObservations) -> CsiQuality:
    """Score a request's CSI against the shared usable-band criterion.

    Uses :func:`repro.core.correction.usable_band_mask` -- the same
    predicate the coverage metric and the diagnostics layer apply -- so
    the service gate can never disagree with the pipeline about which
    cells are dead.
    """
    usable = usable_band_mask(observations.tag_to_anchor)  # (I, K)
    per_anchor = usable.mean(axis=1)
    return CsiQuality(
        band_coverage=float(usable.mean()),
        worst_anchor_coverage=float(per_anchor.min()),
        num_anchors=observations.num_anchors,
        num_antennas=observations.num_antennas,
        num_bands=observations.num_bands,
    )


@dataclass(frozen=True)
class LocateDecision:
    """One request's outcome: a position plus full provider provenance.

    Attributes:
        position: the estimated tag position.
        provider: which chain member produced it (``"bloc"``, ``"aoa"``
            or ``"rssi"``).
        quality: the measured CSI quality that drove the gating.
        fallback_reasons: why each earlier provider did not produce the
            fix (empty when BLoc answered directly).
    """

    position: Point
    provider: str
    quality: CsiQuality
    fallback_reasons: List[str] = field(default_factory=list)


@dataclass
class ProviderChain:
    """The degrading locate chain over one scenario's warm localizers.

    Attributes:
        bloc: the warm (steering-cache-backed) BLoc localizer.
        aoa: the AoA-array fallback.
        rssi: the RSSI trilateration fallback of last resort.
        gates: CSI-quality thresholds for the BLoc path.
    """

    bloc: BlocLocalizer
    aoa: AoaLocalizer = field(default_factory=AoaLocalizer)
    rssi: RssiTrilateration = field(default_factory=RssiTrilateration)
    gates: QualityGates = field(default_factory=QualityGates)

    def gate_reason(self, quality: CsiQuality) -> Optional[str]:
        """Why the BLoc gate rejects this quality (None = admitted)."""
        g = self.gates
        if quality.num_anchors < g.min_anchors:
            return (
                f"only {quality.num_anchors} anchor(s) "
                f"(need >= {g.min_anchors})"
            )
        if quality.num_antennas < g.min_antennas:
            return (
                f"only {quality.num_antennas} antenna(s) "
                f"(need >= {g.min_antennas})"
            )
        if quality.band_coverage < g.min_band_coverage:
            return (
                f"band coverage {quality.band_coverage:.2f} "
                f"< {g.min_band_coverage:.2f}"
            )
        if quality.worst_anchor_coverage < g.min_anchor_coverage:
            return (
                f"worst-anchor coverage "
                f"{quality.worst_anchor_coverage:.2f} "
                f"< {g.min_anchor_coverage:.2f}"
            )
        return None

    def _fallback(
        self,
        observations: ChannelObservations,
        quality: CsiQuality,
        reasons: List[str],
    ) -> Union[LocateDecision, LocalizationError]:
        """Run the post-BLoc chain members (AoA, then RSSI).

        Thread-safety: safe to call concurrently; the fallback
        localizers hold no per-fix state.
        """
        if quality.num_antennas >= 2 and quality.num_anchors >= 2:
            try:
                result = self.aoa.locate(observations, keep_map=False)
                return LocateDecision(
                    position=result.position,
                    provider="aoa",
                    quality=quality,
                    fallback_reasons=list(reasons),
                )
            except LocalizationError as exc:
                reasons.append(f"aoa: {exc}")
        else:
            reasons.append(
                "aoa: needs >= 2 anchors with >= 2 antennas, got "
                f"{quality.num_anchors} anchor(s) x "
                f"{quality.num_antennas} antenna(s)"
            )
        try:
            result = self.rssi.locate(observations, keep_map=False)
            return LocateDecision(
                position=result.position,
                provider="rssi",
                quality=quality,
                fallback_reasons=list(reasons),
            )
        except LocalizationError as exc:
            reasons.append(f"rssi: {exc}")
            return LocalizationError(
                "every provider failed: " + "; ".join(reasons)
            )

    def locate_batch(
        self, batch: Sequence[ChannelObservations]
    ) -> List[Union[LocateDecision, LocalizationError]]:
        """Locate a batch of requests through the chain.

        The BLoc stage runs as **one** batched Eq. 17 pass
        (:meth:`~repro.core.localizer.BlocLocalizer.locate_batch`) over
        every request that passes the quality gates -- this is what the
        micro-batcher amortises across concurrent requests.  Gated-out
        or BLoc-failed requests fall through the AoA/RSSI members
        per fix.  The returned list is parallel to the input; failures
        are returned, not raised, so one bad request cannot sink its
        batchmates.

        Thread-safety: safe to call concurrently from server threads;
        the underlying localizers document the same contract.
        """
        items = list(batch)
        outcomes: List[
            Optional[Union[LocateDecision, LocalizationError]]
        ] = [None] * len(items)
        with get_observer().span(
            "service.provider_chain", size=len(items)
        ) as chain_span:
            qualities = [assess_quality(obs) for obs in items]
            reasons: List[List[str]] = [[] for _ in items]
            admitted: List[int] = []
            for index, quality in enumerate(qualities):
                reason = self.gate_reason(quality)
                if reason is None:
                    admitted.append(index)
                else:
                    reasons[index].append(f"bloc: gated ({reason})")
            if admitted:
                bloc_outcomes = self.bloc.locate_batch(
                    [items[i] for i in admitted], keep_map=False
                )
                for index, outcome in zip(admitted, bloc_outcomes):
                    if isinstance(outcome, LocalizationError):
                        reasons[index].append(f"bloc: {outcome}")
                    else:
                        outcomes[index] = LocateDecision(
                            position=outcome.position,
                            provider="bloc",
                            quality=qualities[index],
                            fallback_reasons=list(reasons[index]),
                        )
            for index, outcome in enumerate(outcomes):
                if outcome is None:
                    outcomes[index] = self._fallback(
                        items[index], qualities[index], reasons[index]
                    )
            if chain_span is not None:
                chain_span.set(admitted=len(admitted))
        return outcomes  # type: ignore[return-value]

    def locate(
        self, observations: ChannelObservations
    ) -> LocateDecision:
        """Locate one request through the chain (unbatched path).

        Raises:
            LocalizationError: when every provider failed.
        """
        outcome = self.locate_batch([observations])[0]
        if isinstance(outcome, LocalizationError):
            raise outcome
        return outcome
