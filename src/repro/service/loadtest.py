"""Synthetic load driver for the locate endpoint.

Spins up N client threads against a live server, each posting synthetic
sweeps generated from the *same* deterministic testbed factory the
server keys its pool on -- so the driver knows every request's ground
truth and can report accuracy (median error) alongside latency.  Every
request's wall latency is recorded individually; the summary reports
p50/p95/p99, throughput, provider mix and status mix in the repo's
bench-JSON shape so ``repro obs slo`` can gate ``service.p95_s`` like
any other benchmark number.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.service.pool import default_scenarios
from repro.service.schema import encode_observations
from repro.sim.measurement import ChannelMeasurementModel
from repro.sim.scenario import sample_tag_positions
from repro.utils.geometry2d import Point


@dataclass
class LoadtestResult:
    """Aggregate outcome of one loadtest run.

    Attributes:
        requests / errors: total posted and non-200 counts.
        duration_s: wall time from first post to last response.
        p50_s / p95_s / p99_s: per-request latency percentiles.
        throughput_rps: requests / duration.
        median_error_m: median localization error over 200 responses
            (None when nothing succeeded).
        providers: 200-response count per provider.
        statuses: response count per HTTP status.
        batch_sizes: how many requests reported each batch size.
        trace_ids: sample of response trace ids (first few responses),
            for cross-checking against a span export or /metrics
            exemplars.
        slowest_trace_id: trace id of the slowest observed request --
            the natural argument to ``repro obs trace``.
    """

    requests: int
    errors: int
    duration_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    throughput_rps: float
    median_error_m: Optional[float]
    providers: Dict[str, int] = field(default_factory=dict)
    statuses: Dict[str, int] = field(default_factory=dict)
    batch_sizes: Dict[str, int] = field(default_factory=dict)
    trace_ids: List[str] = field(default_factory=list)
    slowest_trace_id: str = ""

    def to_dict(self) -> dict:
        """Bench-JSON ``service`` section."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "duration_s": round(self.duration_s, 4),
            "p50_s": round(self.p50_s, 6),
            "p95_s": round(self.p95_s, 6),
            "p99_s": round(self.p99_s, 6),
            "throughput_rps": round(self.throughput_rps, 2),
            "median_error_m": (
                round(self.median_error_m, 4)
                if self.median_error_m is not None
                else None
            ),
            "providers": dict(sorted(self.providers.items())),
            "statuses": dict(sorted(self.statuses.items())),
            "batch_sizes": dict(sorted(self.batch_sizes.items())),
            "trace_ids": list(self.trace_ids),
            "slowest_trace_id": self.slowest_trace_id,
        }


def build_request_bodies(
    scenario: str,
    count: int,
    seed: int = 0,
    api_key: Optional[str] = None,
    snr_db: float = 18.0,
) -> List[Tuple[bytes, Point]]:
    """Synthesise ``count`` locate bodies with known ground truth.

    Raises:
        ReproError: when ``scenario`` is not a default scenario (the
        driver needs the factory to reproduce the server's geometry).
    """
    scenarios = default_scenarios()
    if scenario not in scenarios:
        raise ReproError(
            f"loadtest knows only default scenarios "
            f"{sorted(scenarios)}, got {scenario!r}"
        )
    testbed = scenarios[scenario].factory()
    model = ChannelMeasurementModel(testbed, snr_db=snr_db, seed=seed)
    positions = sample_tag_positions(testbed, count, seed=seed)
    bodies: List[Tuple[bytes, Point]] = []
    for round_index, position in enumerate(positions):
        observations = model.measure(position, round_index=round_index)
        envelope: Dict[str, Any] = {
            "scenario": scenario,
            "observations": encode_observations(observations),
        }
        if api_key is not None:
            envelope["key"] = api_key
        bodies.append(
            (json.dumps(envelope).encode("utf-8"), position)
        )
    return bodies


def _post_one(
    connection: http.client.HTTPConnection, body: bytes
) -> Tuple[int, dict]:
    """POST one locate body, returning (status, decoded JSON)."""
    connection.request(
        "POST",
        "/v1/locate",
        body=body,
        headers={"Content-Type": "application/json"},
    )
    response = connection.getresponse()
    raw = response.read()
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        payload = {}
    return response.status, payload


def run_loadtest(
    host: str,
    port: int,
    scenario: str = "vicon",
    clients: int = 4,
    requests_per_client: int = 8,
    seed: int = 0,
    api_key: Optional[str] = None,
    timeout_s: float = 60.0,
) -> LoadtestResult:
    """Drive a live server with ``clients`` concurrent posters.

    Each client owns one keep-alive connection and a disjoint slice of
    the synthetic dataset, so request streams are deterministic per
    (scenario, seed) and overlap in time -- which is what exercises the
    micro-batcher.

    Raises:
        ReproError: when no request completed (server unreachable).
    """
    total = clients * requests_per_client
    bodies = build_request_bodies(
        scenario, total, seed=seed, api_key=api_key
    )
    latencies: List[float] = []
    errors_m: List[float] = []
    providers: Dict[str, int] = {}
    statuses: Dict[str, int] = {}
    batch_sizes: Dict[str, int] = {}
    trace_ids: List[str] = []
    slowest: Tuple[float, str] = (0.0, "")
    failures = 0
    lock = threading.Lock()

    def client(worker_index: int) -> None:
        nonlocal failures, slowest
        connection = http.client.HTTPConnection(
            host, port, timeout=timeout_s
        )
        start = worker_index * requests_per_client
        for body, truth in bodies[start : start + requests_per_client]:
            began = time.perf_counter()
            try:
                status, payload = _post_one(connection, body)
            except (OSError, http.client.HTTPException):
                with lock:
                    failures += 1
                connection.close()
                connection = http.client.HTTPConnection(
                    host, port, timeout=timeout_s
                )
                continue
            elapsed = time.perf_counter() - began
            trace_id = str(payload.get("trace_id") or "")
            with lock:
                latencies.append(elapsed)
                statuses[str(status)] = statuses.get(str(status), 0) + 1
                if trace_id:
                    if len(trace_ids) < 8:
                        trace_ids.append(trace_id)
                    if elapsed > slowest[0]:
                        slowest = (elapsed, trace_id)
                if status == 200:
                    provider = str(payload.get("provider", "?"))
                    providers[provider] = providers.get(provider, 0) + 1
                    size = str(payload.get("batch_size", 1))
                    batch_sizes[size] = batch_sizes.get(size, 0) + 1
                    position = payload.get("position") or {}
                    estimate = Point(
                        float(position.get("x", np.nan)),
                        float(position.get("y", np.nan)),
                    )
                    error = (estimate - truth).norm()
                    if np.isfinite(error):
                        errors_m.append(float(error))
                else:
                    failures += 1
        connection.close()

    threads = [
        threading.Thread(target=client, args=(i,), name=f"load-{i}")
        for i in range(clients)
    ]
    began = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration_s = time.perf_counter() - began
    if not latencies:
        raise ReproError(
            f"loadtest got no responses from {host}:{port} "
            f"(is the server up?)"
        )
    quantiles = np.percentile(np.asarray(latencies), [50, 95, 99])
    return LoadtestResult(
        requests=total,
        errors=failures,
        duration_s=duration_s,
        p50_s=float(quantiles[0]),
        p95_s=float(quantiles[1]),
        p99_s=float(quantiles[2]),
        throughput_rps=(
            len(latencies) / duration_s if duration_s > 0 else 0.0
        ),
        median_error_m=(
            float(np.median(errors_m)) if errors_m else None
        ),
        providers=providers,
        statuses=statuses,
        batch_sizes=batch_sizes,
        trace_ids=trace_ids,
        slowest_trace_id=slowest[1],
    )


def fetch_metrics(
    host: str, port: int, timeout_s: float = 10.0
) -> str:
    """``GET /metrics`` from a live server, returning the exposition.

    Raises:
        ReproError: non-200 status or unreachable server.
    """
    connection = http.client.HTTPConnection(
        host, port, timeout=timeout_s
    )
    try:
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        raw = response.read()
        if response.status != 200:
            raise ReproError(
                f"GET /metrics returned {response.status}"
            )
        return raw.decode("utf-8")
    except (OSError, http.client.HTTPException) as exc:
        raise ReproError(f"GET /metrics failed: {exc}") from exc
    finally:
        connection.close()


def update_bench_service_json(
    path: str,
    result: LoadtestResult,
    scenario: str,
    clients: int,
    grid_resolution_m: Optional[float] = None,
) -> dict:
    """Merge one loadtest's numbers into ``BENCH_service.json``.

    Read-merge-write like the localization bench: reruns update the
    ``service`` section in place and other sections survive.
    """
    payload: Dict[str, Any] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload["benchmark"] = "service"
    payload["scenario"] = {
        "scenario": scenario,
        "clients": clients,
        "requests": result.requests,
        "grid_resolution_m": grid_resolution_m,
        "cpus": os.cpu_count() or 1,
    }
    payload["service"] = result.to_dict()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
