"""Command-line interface: quick demos and evaluations from a terminal.

Usage::

    python -m repro demo                 # one fix + ASCII likelihood map
    python -m repro evaluate -n 40      # BLoc vs baselines over a dataset
    python -m repro floorplan           # render the default testbed
    python -m repro throughput          # Section 6 airtime budget
    python -m repro diag fix.npz        # inspect / replay a fix bundle
    python -m repro lint src            # repo-specific static analysis
    python -m repro obs runs            # list the run ledger
    python -m repro obs diff -2 -1     # metric-by-metric run diff
    python -m repro obs slo             # evaluate the SLO gate
    python -m repro serve               # warm-pool localization service
    python -m repro loadtest --self-host   # drive it and record latency
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs import RunLedger
    from repro.service import LocalizationService, LocalizerPool

from repro import (
    AoaLocalizer,
    BlocLocalizer,
    ChannelMeasurementModel,
    Point,
    build_dataset,
    evaluate,
    shortest_distance_localizer,
    vicon_testbed,
)
from repro.ble.throughput import throughput_with_localization
from repro.viz import render_map, render_testbed


def _ledger_path(args: argparse.Namespace) -> Optional[Union[str, Path]]:
    """The run-ledger target for this invocation, or None when off.

    ``--no-ledger`` disables; ``--ledger PATH`` overrides; otherwise
    commands that opt into the ledger (evaluate) append to
    ``$REPRO_RUNS_LEDGER`` or ``./runs.ndjson``.
    """
    if getattr(args, "no_ledger", False):
        return None
    if not getattr(args, "_ledger_default_on", False) and not getattr(
        args, "ledger", None
    ):
        return None
    from repro.obs import default_ledger_path

    explicit = getattr(args, "ledger", None)
    return explicit if explicit else default_ledger_path()


def _maybe_observed(
    args: argparse.Namespace, body: Callable[[], int]
) -> int:
    """Run ``body`` under observability when the flags ask for it.

    With ``--trace PATH`` the run's spans and metrics are exported as
    NDJSON to PATH; with ``--metrics`` (or ``--trace``) the span-timing
    and metrics summary tables are printed after the command output.
    With ``--profile PREFIX`` (or ``REPRO_PROFILE=PREFIX``) a sampling
    profiler runs for the duration and writes ``PREFIX.folded`` plus
    ``PREFIX.speedscope.json``.  Commands wired to the run ledger also
    append a RunRecord -- which needs a live observer, so the ledger
    alone is enough to enable one.
    """
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    profile_prefix = getattr(args, "profile", None) or os.environ.get(
        "REPRO_PROFILE"
    )
    ledger_target = _ledger_path(args)
    if not any([trace_path, want_metrics, profile_prefix, ledger_target]):
        return body()
    from repro.obs import (
        RunLedger,
        SamplingProfiler,
        build_run_record,
        export_folded,
        export_ndjson,
        export_speedscope,
        observed,
        summary,
    )

    if trace_path and not Path(trace_path).parent.is_dir():
        print(
            f"error: --trace directory does not exist: "
            f"{Path(trace_path).parent}",
            file=sys.stderr,
        )
        return 2
    artifacts = []
    profile_snapshot = None
    with observed() as obs:
        profiler = (
            SamplingProfiler(obs.tracer).start()
            if profile_prefix
            else None
        )
        try:
            status = body()
        finally:
            if profiler is not None:
                profile_snapshot = profiler.stop().snapshot()
    if trace_path:
        lines = export_ndjson(trace_path, obs, command=args.command)
        artifacts.append(trace_path)
        print(f"[obs] wrote {lines} NDJSON lines to {trace_path}")
    if profiler is not None:
        folded_path = f"{profile_prefix}.folded"
        speedscope_path = f"{profile_prefix}.speedscope.json"
        export_folded(folded_path, profiler.report)
        export_speedscope(
            speedscope_path, profiler.report, name=args.command
        )
        artifacts += [folded_path, speedscope_path]
        print(
            f"[obs] profiler: {profiler.report.samples_total} samples "
            f"-> {folded_path}, {speedscope_path}"
        )
    if ledger_target is not None and status == 0:
        record = build_run_record(
            command=args.command,
            observer=obs,
            workers=getattr(args, "workers", None),
            config=_command_config(args),
            results=getattr(args, "_ledger_results", None),
            artifacts=artifacts,
            profile=profile_snapshot,
        )
        RunLedger(ledger_target).append(record)
        print(f"[obs] run {record.run_id} appended to {ledger_target}")
    if want_metrics or trace_path:
        print(summary(obs))
    return status


def _command_config(args: argparse.Namespace) -> dict:
    """The fingerprintable configuration of a CLI invocation."""
    keep = (
        "command", "num", "seed", "workers", "no_engine", "x", "y",
        "bundle_worst", "backend", "batch_size", "scenario", "clients",
        "per_client", "resolution", "port",
    )
    return {
        key: getattr(args, key)
        for key in keep
        if getattr(args, key, None) is not None
    }


def cmd_demo(args: argparse.Namespace) -> int:
    return _maybe_observed(args, lambda: _run_demo(args))


def _bloc_localizer(args: argparse.Namespace) -> BlocLocalizer:
    """A BLoc localizer honouring the --no-engine flag."""
    if getattr(args, "no_engine", False):
        return BlocLocalizer(engine=None)
    return BlocLocalizer()


def _run_demo(args: argparse.Namespace) -> int:
    testbed = vicon_testbed()
    model = ChannelMeasurementModel(testbed=testbed, seed=args.seed)
    tag = Point(args.x, args.y)
    observations = model.measure(tag)
    result = _bloc_localizer(args).locate(observations)
    print(
        f"true ({tag.x:+.2f}, {tag.y:+.2f})  "
        f"estimate ({result.position.x:+.2f}, {result.position.y:+.2f})  "
        f"error {result.error_m(tag) * 100:.0f} cm"
    )
    print(
        render_map(
            result.likelihood.combined,
            result.likelihood.grid,
            width=66,
            markers=[(tag, "T"), (result.position, "E")],
        )
    )
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    return _maybe_observed(args, lambda: _run_evaluate(args))


def _run_evaluate(args: argparse.Namespace) -> int:
    testbed = vicon_testbed()
    dataset = build_dataset(testbed, num_positions=args.num, seed=args.seed)
    schemes = {
        "BLoc": _bloc_localizer(args),
        "AoA baseline": AoaLocalizer(),
        "shortest-distance": shortest_distance_localizer(),
    }
    bundle_dir = getattr(args, "bundle_dir", None)
    for name, localizer in schemes.items():
        capture = None
        if bundle_dir and name == "BLoc":
            from repro.obs import AnchorHealthMonitor
            from repro.sim import DiagnosticsCapture

            capture = DiagnosticsCapture(
                directory=bundle_dir,
                worst_n=getattr(args, "bundle_worst", 0),
                capture_failures=True,
                health=AnchorHealthMonitor(),
            )
        run = evaluate(
            localizer,
            dataset,
            label=name,
            workers=args.workers,
            capture=capture,
            backend=getattr(args, "backend", None),
            batch_size=getattr(args, "batch_size", None),
        )
        stats = run.stats()
        print(f"{name:<18} {stats.summary()}")
        # Headline numbers for the run ledger (keys are slugged per
        # scheme so a diff lines BLoc up against BLoc across runs).
        slug = name.lower().replace(" ", "_").replace("-", "_")
        results = getattr(args, "_ledger_results", None) or {}
        results[f"{slug}.median_m"] = stats.median_m()
        results[f"{slug}.p95_m"] = stats.percentile_m(95)
        results[f"{slug}.failed"] = run.num_failed
        args._ledger_results = results
        if capture is not None:
            print(
                f"[diag] wrote {len(capture.written)} fix bundle(s) "
                f"to {bundle_dir}"
            )
            for event in capture.health.events:
                print(f"[health] {event.kind}: {event.message}")
    return 0


def cmd_diag(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs import load_fix_bundle, render_bundle

    try:
        bundle = load_fix_bundle(args.bundle)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_bundle(bundle, bands=args.bands, explain=args.explain))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def cmd_obs(args: argparse.Namespace) -> int:
    """Observability tooling (``repro obs runs|diff|report|slo|trace|top``)."""
    from repro.errors import ConfigurationError
    from repro.obs import RunLedger, default_ledger_path

    try:
        # trace/top read NDJSON exports and access logs directly; only
        # the ledger-backed subcommands construct a RunLedger.
        if args.obs_command == "trace":
            return _obs_trace(args)
        if args.obs_command == "top":
            return _obs_top(args)
        ledger = RunLedger(args.ledger or default_ledger_path())
        if args.obs_command == "runs":
            return _obs_runs(args, ledger)
        if args.obs_command == "diff":
            return _obs_diff(args, ledger)
        if args.obs_command == "report":
            return _obs_report(args, ledger)
        return _obs_slo(args, ledger)
    except (ConfigurationError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _obs_trace(args: argparse.Namespace) -> int:
    """Reconstruct one request's span tree from an NDJSON export."""
    from repro.obs import load_ndjson, render_trace, resolve_trace_id

    records = load_ndjson(args.export)
    trace_id = resolve_trace_id(records, args.trace_id)
    print(render_trace(records, trace_id))
    return 0


def _obs_top(args: argparse.Namespace) -> int:
    """Live dashboard over the service's NDJSON access log."""
    from repro.obs import run_top

    frames = 1 if args.once else None
    rendered = run_top(
        args.access_log,
        url=args.url,
        window_s=args.window,
        interval_s=args.interval,
        frames=frames,
        clear=not args.once,
    )
    return 0 if rendered else 1


def _obs_runs(args: argparse.Namespace, ledger: "RunLedger") -> int:
    from repro.obs import render_runs

    print(render_runs(ledger.last(args.num)))
    return 0


def _obs_diff(args: argparse.Namespace, ledger: "RunLedger") -> int:
    from repro.obs import render_diff

    record_a = ledger.resolve(args.a)
    record_b = ledger.resolve(args.b)
    print(render_diff(record_a, record_b, min_pct=args.min_change))
    return 0


def _obs_report(args: argparse.Namespace, ledger: "RunLedger") -> int:
    from repro.obs import render_report

    print(render_report(ledger.last(args.num), min_pct=args.min_change))
    return 0


def _obs_slo(args: argparse.Namespace, ledger: "RunLedger") -> int:
    """Evaluate the SLO gate; exit 1 on violation (the CI contract)."""
    import json
    from pathlib import Path

    from repro.obs import (
        evaluate_slos,
        load_slo_spec,
        render_slo_results,
        slo_exit_code,
    )

    spec = load_slo_spec(args.spec)
    # --bench is repeatable so one gate invocation can evaluate rules
    # against several benchmark payloads (BENCH_localize.json and
    # BENCH_service.json carry disjoint top-level sections, so a shallow
    # merge is lossless).
    bench_args = (
        args.bench if args.bench is not None else ["BENCH_localize.json"]
    )
    bench = None
    for bench_arg in bench_args:
        if not bench_arg:
            continue
        bench_path = Path(bench_arg)
        if not bench_path.exists():
            print(
                f"error: bench payload not found: {bench_path}",
                file=sys.stderr,
            )
            return 2
        payload = json.loads(bench_path.read_text(encoding="utf-8"))
        bench = payload if bench is None else {**bench, **payload}
    results = evaluate_slos(
        spec, bench=bench, ledger_records=ledger.load()
    )
    print(f"[slo] spec {spec.path}, {len(spec.rules)} rule(s)")
    print(render_slo_results(results))
    return slo_exit_code(results)


def _service_from_args(
    args: argparse.Namespace,
) -> "tuple[LocalizerPool, LocalizationService]":
    """Build a (pool, service) pair from serve/loadtest flags."""
    from repro.service import (
        LocalizationService,
        LocalizerPool,
        ServiceConfig,
    )

    pool = LocalizerPool(grid_resolution_m=args.resolution)
    config = ServiceConfig(
        rate_per_s=args.rate,
        burst=args.burst,
        api_keys=(
            frozenset(args.api_key) if args.api_key else None
        ),
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1000.0,
        access_log_path=getattr(args, "access_log", None),
    )
    max_bytes = getattr(args, "access_log_max_bytes", None)
    if max_bytes is not None:
        config = replace(config, access_log_max_bytes=max_bytes)
    return pool, LocalizationService(pool=pool, config=config)


def cmd_serve(args: argparse.Namespace) -> int:
    return _maybe_observed(args, lambda: _run_serve(args))


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import make_server

    pool, service = _service_from_args(args)
    if not args.no_prewarm:
        print(f"[serve] prewarming {', '.join(pool.names())} ...")
        pool.prewarm()
        for name, info in sorted(pool.info()["warm"].items()):
            print(
                f"[serve] {name}: {info['num_anchors']} anchors, "
                f"warm in {info['warmup_s']:.2f}s"
            )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(
        f"[serve] listening on http://{host}:{port} "
        f"(POST /v1/locate, GET /v1/health, GET /v1/stats, GET /metrics)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("[serve] shutting down")
    finally:
        server.server_close()
        service.close()
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    return _maybe_observed(args, lambda: _run_loadtest(args))


def _run_loadtest(args: argparse.Namespace) -> int:
    import threading

    from repro.errors import ReproError
    from repro.service import (
        fetch_metrics,
        make_server,
        run_loadtest,
        update_bench_service_json,
    )

    server = None
    service = None
    host, port = args.host, args.port
    if args.self_host:
        pool, service = _service_from_args(args)
        pool.prewarm()
        server = make_server(service, host="127.0.0.1", port=0)
        host, port = server.server_address[:2]
        threading.Thread(
            target=server.serve_forever, daemon=True
        ).start()
        print(f"[loadtest] self-hosted server on {host}:{port}")
    try:
        result = run_loadtest(
            host,
            port,
            scenario=args.scenario,
            clients=args.clients,
            requests_per_client=args.per_client,
            seed=args.seed,
            api_key=args.api_key[0] if args.api_key else None,
        )
        # Scrape /metrics while the server is still up (before the
        # self-hosted one is torn down below).
        if getattr(args, "metrics_out", None):
            exposition = fetch_metrics(host, port)
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(exposition)
            print(f"[loadtest] wrote {args.metrics_out}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if service is not None:
            service.close()
    print(
        f"[loadtest] {result.requests} requests, {args.clients} "
        f"client(s): p50 {result.p50_s * 1000:.1f} ms, "
        f"p95 {result.p95_s * 1000:.1f} ms, "
        f"p99 {result.p99_s * 1000:.1f} ms, "
        f"{result.throughput_rps:.1f} req/s, {result.errors} error(s)"
    )
    if result.slowest_trace_id:
        print(
            f"[loadtest] slowest request trace {result.slowest_trace_id}"
            f" (repro obs trace {result.slowest_trace_id[:12]} ...)"
        )
    if result.median_error_m is not None:
        print(
            f"[loadtest] median localization error "
            f"{result.median_error_m * 100:.0f} cm; providers "
            f"{result.providers}"
        )
    if args.bench_out:
        update_bench_service_json(
            args.bench_out,
            result,
            scenario=args.scenario,
            clients=args.clients,
            grid_resolution_m=(
                args.resolution if args.self_host else None
            ),
        )
        print(f"[loadtest] wrote {args.bench_out}")
    results = getattr(args, "_ledger_results", None) or {}
    results.update(
        {
            "service.p50_s": result.p50_s,
            "service.p95_s": result.p95_s,
            "service.p99_s": result.p99_s,
            "service.throughput_rps": result.throughput_rps,
            "service.requests": result.requests,
            "service.errors": result.errors,
        }
    )
    if result.median_error_m is not None:
        results["service.median_error_m"] = result.median_error_m
    args._ledger_results = results
    return 1 if result.errors else 0


def cmd_floorplan(args: argparse.Namespace) -> int:
    print(render_testbed(vicon_testbed(), width=args.width))
    print("M = master anchor, A = anchors, # = reflectors/clutter")
    return 0


def cmd_throughput(args: argparse.Namespace) -> int:
    report = throughput_with_localization(
        sweeps_per_second=args.sweeps
    )
    print(
        f"localization packet: {report.localization_packet_us:.0f} us on air"
    )
    print(
        f"{args.sweeps} sweep(s)/s costs "
        f"{report.localization_airtime_fraction * 100:.1f}% of airtime; "
        f"{report.data_throughput_bps / 1000:.0f} kbps of data remain"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="BLoc (CoNEXT 2018) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="export spans + metrics of the run as NDJSON to PATH",
        )
        command.add_argument(
            "--metrics",
            action="store_true",
            help="print the span-timing and metrics summary tables",
        )
        command.add_argument(
            "--profile",
            metavar="PREFIX",
            default=None,
            help="run the sampling profiler and write PREFIX.folded "
            "(flamegraph) and PREFIX.speedscope.json "
            "(env REPRO_PROFILE=PREFIX does the same)",
        )

    def add_ledger_flags(
        command: argparse.ArgumentParser, default_on: bool
    ) -> None:
        command.add_argument(
            "--ledger",
            metavar="PATH",
            default=None,
            help="append this run's RunRecord to PATH "
            "(default: $REPRO_RUNS_LEDGER or ./runs.ndjson)",
        )
        command.add_argument(
            "--no-ledger",
            action="store_true",
            help="do not append a RunRecord for this run",
        )
        command.set_defaults(_ledger_default_on=default_on)

    def add_perf_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="worker threads for evaluation sweeps "
            "(a single-fix demo runs serially regardless)",
        )
        command.add_argument(
            "--no-engine",
            action="store_true",
            help="disable the steering-matrix cache and use the direct "
            "rebuild-per-fix Eq. 17 path",
        )
        command.add_argument(
            "--backend",
            choices=("serial", "thread", "process"),
            default=None,
            help="evaluation backend (default: thread when --workers > 1, "
            "serial otherwise; process shares the steering cache over "
            "shared memory)",
        )
        command.add_argument(
            "--batch-size",
            type=int,
            default=None,
            metavar="B",
            help="stack B fixes into one batched Eq. 17 evaluation "
            "(default: unbatched)",
        )

    demo = sub.add_parser("demo", help="localize one simulated tag")
    demo.add_argument("-x", type=float, default=0.8)
    demo.add_argument("-y", type=float, default=0.4)
    demo.add_argument("--seed", type=int, default=42)
    add_obs_flags(demo)
    add_perf_flags(demo)
    demo.set_defaults(func=cmd_demo)

    ev = sub.add_parser("evaluate", help="compare schemes over a dataset")
    ev.add_argument("-n", "--num", type=int, default=30)
    ev.add_argument("--seed", type=int, default=2018)
    ev.add_argument(
        "--bundle-dir",
        metavar="DIR",
        default=None,
        help="capture per-fix diagnostics for the BLoc run and write "
        "replayable fix bundles (failures + worst-N) into DIR",
    )
    ev.add_argument(
        "--bundle-worst",
        type=int,
        default=3,
        metavar="N",
        help="with --bundle-dir: also bundle the N worst successful "
        "fixes (default: 3)",
    )
    add_obs_flags(ev)
    add_perf_flags(ev)
    # Every evaluate run lands in the persistent ledger unless opted out.
    add_ledger_flags(ev, default_on=True)
    ev.set_defaults(func=cmd_evaluate)

    diag = sub.add_parser(
        "diag", help="inspect and replay a captured fix bundle"
    )
    diag.add_argument("bundle", help="path to a fix-bundle .npz")
    diag.add_argument(
        "--explain",
        action="store_true",
        help="replay the fix offline and re-derive the winning peak, "
        "comparing it against the recorded estimate",
    )
    diag.add_argument(
        "--bands",
        action="store_true",
        help="include the per-band / per-anchor SNR table",
    )
    diag.set_defaults(func=cmd_diag)

    lint = sub.add_parser(
        "lint", help="run the RPR rule set (repo-specific static analysis)"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    obs = sub.add_parser(
        "obs",
        help="observability tooling (runs/diff/report/slo/trace/top)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    def add_obs_ledger_arg(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--ledger",
            metavar="PATH",
            default=None,
            help="ledger file (default: $REPRO_RUNS_LEDGER or "
            "./runs.ndjson)",
        )

    obs_runs = obs_sub.add_parser("runs", help="list recorded runs")
    obs_runs.add_argument(
        "-n", "--num", type=int, default=20,
        help="show the most recent N runs (default: 20)",
    )
    add_obs_ledger_arg(obs_runs)

    obs_diff = obs_sub.add_parser(
        "diff", help="metric-by-metric diff of two runs"
    )
    obs_diff.add_argument(
        "a", nargs="?", default="-2",
        help="run_id prefix or index (default: -2, the previous run)",
    )
    obs_diff.add_argument(
        "b", nargs="?", default="-1",
        help="run_id prefix or index (default: -1, the latest run)",
    )
    obs_diff.add_argument(
        "--min-change", type=float, default=0.0, metavar="FRAC",
        help="hide rows whose relative change is below FRAC",
    )
    add_obs_ledger_arg(obs_diff)

    obs_report = obs_sub.add_parser(
        "report", help="regression report over recent runs"
    )
    obs_report.add_argument(
        "-n", "--num", type=int, default=10,
        help="consider the most recent N runs (default: 10)",
    )
    obs_report.add_argument(
        "--min-change", type=float, default=0.0, metavar="FRAC",
        help="hide diff rows whose relative change is below FRAC",
    )
    add_obs_ledger_arg(obs_report)

    obs_slo = obs_sub.add_parser(
        "slo", help="evaluate the SLO gate (exit 1 on violation)"
    )
    obs_slo.add_argument(
        "--spec", metavar="PATH", default=None,
        help="slo.toml spec (default: the repository slo.toml)",
    )
    obs_slo.add_argument(
        "--bench", metavar="PATH", action="append", default=None,
        help="bench payload for source='bench' rules; repeatable, later "
        "payloads shallow-merge over earlier ones "
        "(default: BENCH_localize.json; pass '' to skip)",
    )
    add_obs_ledger_arg(obs_slo)

    obs_trace = obs_sub.add_parser(
        "trace",
        help="reconstruct one request's span tree from an NDJSON export",
    )
    obs_trace.add_argument(
        "trace_id",
        help="trace id (or unique prefix) from a response body, "
        "traceparent header or access-log line",
    )
    obs_trace.add_argument(
        "export",
        help="span NDJSON written by --trace or observed() export",
    )

    obs_top = obs_sub.add_parser(
        "top",
        help="live dashboard over the service's NDJSON access log",
    )
    obs_top.add_argument(
        "access_log",
        help="the service's --access-log NDJSON file",
    )
    obs_top.add_argument(
        "--url",
        metavar="URL",
        default=None,
        help="service base URL; when set, each frame also polls "
        "/v1/stats for batcher occupancy, cache hit ratio and pool "
        "warmth",
    )
    obs_top.add_argument(
        "--window", type=float, default=60.0, metavar="S",
        help="sliding window the rates cover (default: 60 s)",
    )
    obs_top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh interval (default: 1 s)",
    )
    obs_top.add_argument(
        "--once",
        action="store_true",
        help="render one frame without clearing the screen and exit "
        "(scripting/CI mode)",
    )
    obs.set_defaults(func=cmd_obs)

    def add_service_flags(command: argparse.ArgumentParser) -> None:
        from repro.service.pool import DEFAULT_SERVICE_RESOLUTION_M

        command.add_argument(
            "--resolution",
            type=float,
            default=DEFAULT_SERVICE_RESOLUTION_M,
            metavar="M",
            help="grid resolution of the warm localizers "
            f"(default: {DEFAULT_SERVICE_RESOLUTION_M} m)",
        )
        command.add_argument(
            "--rate", type=float, default=50.0, metavar="R",
            help="token-bucket refill rate per API key (default: 50/s)",
        )
        command.add_argument(
            "--burst", type=int, default=20, metavar="B",
            help="token-bucket burst capacity per API key (default: 20)",
        )
        command.add_argument(
            "--api-key",
            action="append",
            default=None,
            metavar="KEY",
            help="allowlisted API key; repeatable (default: accept any "
            "key, one bucket each)",
        )
        command.add_argument(
            "--max-batch", type=int, default=8, metavar="N",
            help="micro-batcher: max requests per locate_batch call "
            "(default: 8)",
        )
        command.add_argument(
            "--max-wait-ms",
            type=float,
            default=5.0,
            metavar="MS",
            help="micro-batcher: max coalescing wait (default: 5 ms)",
        )

    serve = sub.add_parser(
        "serve", help="run the warm-pool localization HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--access-log",
        metavar="PATH",
        default=None,
        help="append one NDJSON line per request to PATH",
    )
    serve.add_argument(
        "--access-log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rotate the access log to PATH.1 when it would exceed N "
        "bytes (default: 16 MiB)",
    )
    serve.add_argument(
        "--no-prewarm",
        action="store_true",
        help="build scenarios lazily on first request instead of at "
        "startup",
    )
    add_service_flags(serve)
    add_obs_flags(serve)
    serve.set_defaults(func=cmd_serve)

    lt = sub.add_parser(
        "loadtest",
        help="drive a live locate endpoint and record p50/p95/p99",
    )
    lt.add_argument("--host", default="127.0.0.1")
    lt.add_argument("--port", type=int, default=8080)
    lt.add_argument(
        "--self-host",
        action="store_true",
        help="start an in-process server on an ephemeral port for the "
        "duration of the run (ignores --host/--port)",
    )
    lt.add_argument(
        "--scenario", default="vicon",
        help="scenario key to post against (default: vicon)",
    )
    lt.add_argument(
        "--clients", type=int, default=4, metavar="N",
        help="concurrent client threads (default: 4)",
    )
    lt.add_argument(
        "--per-client", type=int, default=8, metavar="N",
        help="requests per client (default: 8)",
    )
    lt.add_argument("--seed", type=int, default=2018)
    lt.add_argument(
        "--bench-out",
        metavar="PATH",
        default="BENCH_service.json",
        help="write the latency summary here (default: "
        "BENCH_service.json; pass '' to skip)",
    )
    lt.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="after the run, scrape GET /metrics and write the "
        "OpenMetrics exposition to PATH",
    )
    lt.add_argument(
        "--access-log",
        metavar="PATH",
        default=None,
        help="with --self-host: write the server's NDJSON access log "
        "to PATH (feeds `repro obs top`)",
    )
    add_service_flags(lt)
    add_obs_flags(lt)
    add_ledger_flags(lt, default_on=True)
    lt.set_defaults(func=cmd_loadtest)

    plan = sub.add_parser("floorplan", help="render the default testbed")
    plan.add_argument("--width", type=int, default=66)
    plan.set_defaults(func=cmd_floorplan)

    tp = sub.add_parser("throughput", help="Section 6 airtime budget")
    tp.add_argument("--sweeps", type=float, default=1.0)
    tp.set_defaults(func=cmd_throughput)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
