"""Command-line interface: quick demos and evaluations from a terminal.

Usage::

    python -m repro demo                 # one fix + ASCII likelihood map
    python -m repro evaluate -n 40      # BLoc vs baselines over a dataset
    python -m repro floorplan           # render the default testbed
    python -m repro throughput          # Section 6 airtime budget
    python -m repro diag fix.npz        # inspect / replay a fix bundle
    python -m repro lint src            # repo-specific static analysis
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    AoaLocalizer,
    BlocLocalizer,
    ChannelMeasurementModel,
    Point,
    build_dataset,
    evaluate,
    shortest_distance_localizer,
    vicon_testbed,
)
from repro.ble.throughput import throughput_with_localization
from repro.viz import render_map, render_testbed


def _maybe_observed(args, body) -> int:
    """Run ``body`` under observability when --trace/--metrics ask for it.

    With ``--trace PATH`` the run's spans and metrics are exported as
    NDJSON to PATH; with either flag the span-timing and metrics summary
    tables are printed after the command output.
    """
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if not trace_path and not want_metrics:
        return body()
    from pathlib import Path

    from repro.obs import export_ndjson, observed, summary

    if trace_path and not Path(trace_path).parent.is_dir():
        print(
            f"error: --trace directory does not exist: "
            f"{Path(trace_path).parent}",
            file=sys.stderr,
        )
        return 2
    with observed() as obs:
        status = body()
    if trace_path:
        lines = export_ndjson(trace_path, obs, command=args.command)
        print(f"[obs] wrote {lines} NDJSON lines to {trace_path}")
    print(summary(obs))
    return status


def cmd_demo(args) -> int:
    return _maybe_observed(args, lambda: _run_demo(args))


def _bloc_localizer(args) -> BlocLocalizer:
    """A BLoc localizer honouring the --no-engine flag."""
    if getattr(args, "no_engine", False):
        return BlocLocalizer(engine=None)
    return BlocLocalizer()


def _run_demo(args) -> int:
    testbed = vicon_testbed()
    model = ChannelMeasurementModel(testbed=testbed, seed=args.seed)
    tag = Point(args.x, args.y)
    observations = model.measure(tag)
    result = _bloc_localizer(args).locate(observations)
    print(
        f"true ({tag.x:+.2f}, {tag.y:+.2f})  "
        f"estimate ({result.position.x:+.2f}, {result.position.y:+.2f})  "
        f"error {result.error_m(tag) * 100:.0f} cm"
    )
    print(
        render_map(
            result.likelihood.combined,
            result.likelihood.grid,
            width=66,
            markers=[(tag, "T"), (result.position, "E")],
        )
    )
    return 0


def cmd_evaluate(args) -> int:
    return _maybe_observed(args, lambda: _run_evaluate(args))


def _run_evaluate(args) -> int:
    testbed = vicon_testbed()
    dataset = build_dataset(testbed, num_positions=args.num, seed=args.seed)
    schemes = {
        "BLoc": _bloc_localizer(args),
        "AoA baseline": AoaLocalizer(),
        "shortest-distance": shortest_distance_localizer(),
    }
    bundle_dir = getattr(args, "bundle_dir", None)
    for name, localizer in schemes.items():
        capture = None
        if bundle_dir and name == "BLoc":
            from repro.obs import AnchorHealthMonitor
            from repro.sim import DiagnosticsCapture

            capture = DiagnosticsCapture(
                directory=bundle_dir,
                worst_n=getattr(args, "bundle_worst", 0),
                capture_failures=True,
                health=AnchorHealthMonitor(),
            )
        run = evaluate(
            localizer,
            dataset,
            label=name,
            workers=args.workers,
            capture=capture,
        )
        print(f"{name:<18} {run.stats().summary()}")
        if capture is not None:
            print(
                f"[diag] wrote {len(capture.written)} fix bundle(s) "
                f"to {bundle_dir}"
            )
            for event in capture.health.events:
                print(f"[health] {event.kind}: {event.message}")
    return 0


def cmd_diag(args) -> int:
    from repro.errors import ReproError
    from repro.obs import load_fix_bundle, render_bundle

    try:
        bundle = load_fix_bundle(args.bundle)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_bundle(bundle, bands=args.bands, explain=args.explain))
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def cmd_floorplan(args) -> int:
    print(render_testbed(vicon_testbed(), width=args.width))
    print("M = master anchor, A = anchors, # = reflectors/clutter")
    return 0


def cmd_throughput(args) -> int:
    report = throughput_with_localization(
        sweeps_per_second=args.sweeps
    )
    print(
        f"localization packet: {report.localization_packet_us:.0f} us on air"
    )
    print(
        f"{args.sweeps} sweep(s)/s costs "
        f"{report.localization_airtime_fraction * 100:.1f}% of airtime; "
        f"{report.data_throughput_bps / 1000:.0f} kbps of data remain"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="BLoc (CoNEXT 2018) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(command):
        command.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="export spans + metrics of the run as NDJSON to PATH",
        )
        command.add_argument(
            "--metrics",
            action="store_true",
            help="print the span-timing and metrics summary tables",
        )

    def add_perf_flags(command):
        command.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="worker threads for evaluation sweeps "
            "(a single-fix demo runs serially regardless)",
        )
        command.add_argument(
            "--no-engine",
            action="store_true",
            help="disable the steering-matrix cache and use the direct "
            "rebuild-per-fix Eq. 17 path",
        )

    demo = sub.add_parser("demo", help="localize one simulated tag")
    demo.add_argument("-x", type=float, default=0.8)
    demo.add_argument("-y", type=float, default=0.4)
    demo.add_argument("--seed", type=int, default=42)
    add_obs_flags(demo)
    add_perf_flags(demo)
    demo.set_defaults(func=cmd_demo)

    ev = sub.add_parser("evaluate", help="compare schemes over a dataset")
    ev.add_argument("-n", "--num", type=int, default=30)
    ev.add_argument("--seed", type=int, default=2018)
    ev.add_argument(
        "--bundle-dir",
        metavar="DIR",
        default=None,
        help="capture per-fix diagnostics for the BLoc run and write "
        "replayable fix bundles (failures + worst-N) into DIR",
    )
    ev.add_argument(
        "--bundle-worst",
        type=int,
        default=3,
        metavar="N",
        help="with --bundle-dir: also bundle the N worst successful "
        "fixes (default: 3)",
    )
    add_obs_flags(ev)
    add_perf_flags(ev)
    ev.set_defaults(func=cmd_evaluate)

    diag = sub.add_parser(
        "diag", help="inspect and replay a captured fix bundle"
    )
    diag.add_argument("bundle", help="path to a fix-bundle .npz")
    diag.add_argument(
        "--explain",
        action="store_true",
        help="replay the fix offline and re-derive the winning peak, "
        "comparing it against the recorded estimate",
    )
    diag.add_argument(
        "--bands",
        action="store_true",
        help="include the per-band / per-anchor SNR table",
    )
    diag.set_defaults(func=cmd_diag)

    lint = sub.add_parser(
        "lint", help="run the RPR rule set (repo-specific static analysis)"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    plan = sub.add_parser("floorplan", help="render the default testbed")
    plan.add_argument("--width", type=int, default=66)
    plan.set_defaults(func=cmd_floorplan)

    tp = sub.add_parser("throughput", help="Section 6 airtime budget")
    tp.add_argument("--sweeps", type=float, default=1.0)
    tp.set_defaults(func=cmd_throughput)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
