"""Timing spans: nested, thread-aware wall-clock tracing.

A :class:`Span` covers one pipeline stage (``correct``,
``map_likelihood``, ...); spans nest via a per-thread active-span stack
kept by the :class:`Tracer`, so a ``locate`` span naturally becomes the
parent of the four stage spans it encloses.  Finished spans are collected
in completion order (children finish before their parents) and can be
exported as NDJSON by :mod:`repro.obs.export`.

The tracer never touches the traced computation: entering a span reads a
clock and pushes a frame, exiting reads the clock again and pops.  When
observability is disabled the pipeline uses a shared no-op context
manager instead (see :mod:`repro.obs.context`) and this module is never
exercised at all.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Union,
)

from repro.analysis.runtime_locks import guarded_by, make_lock
from repro.errors import ConfigurationError

#: Version prefix emitted in ``traceparent`` headers (W3C trace-context).
TRACEPARENT_VERSION = "00"

_TRACE_ID_LEN = 32
_SPAN_ID_LEN = 16
_HEX_DIGITS = frozenset("0123456789abcdef")


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (random, W3C-trace-context shaped)."""
    return uuid.uuid4().hex


def _is_hex(text: str) -> bool:
    return bool(text) and all(ch in _HEX_DIGITS for ch in text.lower())


def format_traceparent(trace_id: str, span_id: int = 0) -> str:
    """Render a W3C ``traceparent`` header value for ``trace_id``.

    ``span_id`` (the tracer's integer span id) becomes the 16-hex-char
    parent-id field, truncated to 64 bits; 0 renders as all zeros, which
    consumers treat as "trace known, parent span unknown".
    """
    parent = format(span_id & ((1 << 64) - 1), "016x")
    return f"{TRACEPARENT_VERSION}-{trace_id}-{parent}-01"


def parse_traceparent(header: Optional[str]) -> Optional[str]:
    """Extract the trace id from a ``traceparent`` header, or None.

    Accepts any ``<ver>-<trace_id>-<parent_id>-<flags>`` value with a
    well-formed 32-hex trace id (not all zeros).  Malformed headers are
    rejected (None) rather than raised: an inbound request with a bad
    header simply starts a fresh trace.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, parent_id = parts[0], parts[1], parts[2]
    if len(version) != 2 or not _is_hex(version) or version.lower() == "ff":
        return None
    trace_id = trace_id.lower()
    if len(trace_id) != _TRACE_ID_LEN or not _is_hex(trace_id):
        return None
    if trace_id == "0" * _TRACE_ID_LEN:
        return None
    if len(parent_id) != _SPAN_ID_LEN or not _is_hex(parent_id):
        return None
    return trace_id


class SpanHandle(NamedTuple):
    """A picklable reference to an open span, for cross-worker handoff.

    A :class:`Span` object is bound to the tracer and thread that opened
    it; a handle carries just the identity (``span_id``), tree position
    (``depth``), ``name`` and ``trace_id`` -- everything a worker
    (thread or process-pool child) needs to parent its own spans under
    the originating span without sharing the object itself.  See
    :meth:`Tracer.attached`, which accepts handles directly.  The
    ``trace_id`` field defaults to ``""`` so pre-trace-context triples
    still construct.
    """

    span_id: int
    depth: int
    name: str
    trace_id: str = ""


class TraceContext(NamedTuple):
    """Picklable identity of one request's trace, for propagation.

    Carries the ``trace_id`` plus (optionally) the handle of the span
    that should parent remote work.  Ship one of these across a thread
    or process boundary and enter ``tracer.attached(context)`` on the
    far side: spans opened inside inherit both the tree position and
    the trace id.
    """

    trace_id: str
    parent: Optional[SpanHandle] = None

    def traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        parent_id = self.parent.span_id if self.parent is not None else 0
        return format_traceparent(self.trace_id, parent_id)


@dataclass
class Span:
    """One timed, possibly nested, unit of work.

    Attributes:
        name: stage name (``correct``, ``fix``, ...).
        span_id: unique id within the owning tracer.
        parent_id: id of the enclosing span, or None for roots.
        depth: nesting depth (0 for roots).
        start_s: clock reading at entry.
        end_s: clock reading at exit (NaN while still open).
        attributes: free-form key/value annotations.
        status: ``"ok"`` or ``"error:<ExceptionType>"`` when the body
            raised.
        thread: name of the thread that ran the span.
        trace_id: 32-hex request-trace id shared by every span in one
            logical request (``""`` on spans predating trace context).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    start_s: float
    end_s: float = float("nan")
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "open"
    thread: str = ""
    trace_id: str = ""

    @property
    def duration_s(self) -> float:
        """Wall-clock duration [s] (NaN while the span is open)."""
        return self.end_s - self.start_s

    def set(self, **attributes: Any) -> "Span":
        """Attach annotations; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def handle(self) -> SpanHandle:
        """A picklable :class:`SpanHandle` for cross-worker propagation."""
        return SpanHandle(
            span_id=self.span_id,
            depth=self.depth,
            name=self.name,
            trace_id=self.trace_id,
        )

    def context(self) -> TraceContext:
        """A :class:`TraceContext` parenting remote work under this span."""
        return TraceContext(trace_id=self.trace_id, parent=self.handle())


class _SpanContext:
    """Context manager guarding one span's enter/exit bookkeeping."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.status = "ok" if exc_type is None else f"error:{exc_type.__name__}"
        self._tracer._finish(span)
        return False


@guarded_by("_lock", "_finished", "_seen_ids", "_stacks")
class Tracer:
    """Collects spans with a thread-local active-span stack.

    Attributes:
        clock: monotonic time source (injectable for tests).

    Args:
        id_offset: start span ids at ``id_offset + 1``.  A process-pool
            worker tracer must be created with a disjoint offset (e.g.
            ``worker_index << 32``) so that spans merged back into the
            parent's export never collide on ``span_id``; in-process
            tracers keep the default 0.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        id_offset: int = 0,
    ):
        self.clock = clock
        self._ids = itertools.count(1 + id_offset)
        self._local = threading.local()
        self._lock = make_lock("Tracer._lock")
        self._finished: List[Span] = []
        # Ids of every span this tracer has collected (own or absorbed),
        # kept so absorb() can reject offset-contract violations instead
        # of silently corrupting the exported tree.
        self._seen_ids: set = set()
        # Thread ident -> (thread name, that thread's live stack list).
        # Registered once per thread (on first _stack()) and never
        # removed: a registered list is aliased by the owning thread's
        # thread-local slot, so dropping the registry entry would
        # desynchronise the two.  Entries of finished threads hold empty
        # lists and cost a few bytes each.
        self._stacks: Dict[int, tuple] = {}

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
            with self._lock:
                self._stacks[threading.get_ident()] = (
                    threading.current_thread().name,
                    stack,
                )
        return stack

    def span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ) -> _SpanContext:
        """Open a span as a child of the current thread's active span.

        The span's ``trace_id`` resolves in priority order: the explicit
        ``trace_id`` keyword, the parent span's trace id, the thread's
        ambient trace (see :meth:`trace`), else -- for root spans only --
        a freshly generated id, so every span always belongs to exactly
        one trace.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        if trace_id is None:
            if parent is not None and parent.trace_id:
                trace_id = parent.trace_id
            else:
                trace_id = getattr(self._local, "trace", "") or new_trace_id()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            # Derived from the parent, not the stack length: a worker
            # thread seeded via :meth:`attached` holds only the borrowed
            # parent, yet its children must report the true tree depth.
            depth=parent.depth + 1 if parent else 0,
            start_s=self.clock(),
            attributes=dict(attributes),
            thread=threading.current_thread().name,
            trace_id=trace_id,
        )
        stack.append(span)
        return _SpanContext(self, span)

    @contextmanager
    def trace(self, trace_id: str) -> Iterator[None]:
        """Make ``trace_id`` the thread's ambient trace for a block.

        Root spans opened inside adopt it instead of generating a fresh
        id; nested spans keep inheriting from their parents as usual.
        Nesting restores the previous ambient trace on exit.
        """
        previous = getattr(self._local, "trace", "")
        self._local.trace = trace_id
        try:
            yield
        finally:
            self._local.trace = previous

    def _finish(self, span: Span) -> None:
        span.end_s = self.clock()
        stack = self._stack()
        # The finished span is the innermost open one unless the caller
        # misuses the context managers; popping by identity stays correct
        # even then.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)
        with self._lock:
            self._finished.append(span)
            self._seen_ids.add(span.span_id)

    def active(self) -> Optional[Span]:
        """The current thread's innermost open span."""
        stack = self._stack()
        return stack[-1] if stack else None

    def active_stacks(self) -> Dict[str, List[Span]]:
        """Every thread's open-span stack, outermost first (thread-safe).

        Used by the sampling profiler to attribute wall-clock samples to
        whatever spans are open *right now* on *any* thread, without the
        sampled threads cooperating.  The registry is copied under the
        tracer lock; each stack list is then shallow-copied, which is
        atomic under the GIL with respect to the owning thread's
        append/pop, so a sample sees a consistent (if instantaneously
        stale) stack.  Threads with no open span are omitted.

        Returns:
            ``{"<thread name>#<ident>": [root span, ..., innermost]}``.
        """
        with self._lock:
            items = list(self._stacks.items())
        snapshot: Dict[str, List[Span]] = {}
        for ident, (name, stack) in items:
            copied = list(stack)
            if copied:
                snapshot[f"{name}#{ident}"] = copied
        return snapshot

    @contextmanager
    def attached(
        self, parent: Optional[Union[Span, SpanHandle, TraceContext]]
    ):
        """Adopt ``parent`` as this thread's active span for a block.

        The active-span stack is thread-local, so work handed to a pool
        thread loses its caller's span context and every span it opens
        becomes an orphaned root.  Wrapping the worker body in
        ``tracer.attached(parent)`` seeds the worker's stack with the
        caller's span: spans opened inside nest under ``parent`` exactly
        as they would have on the calling thread.  The parent span is
        *borrowed*, never finished here -- only its owning thread's
        context manager closes it.  ``parent=None`` is a no-op, so
        callers can pass ``tracer.active()`` straight through.

        ``parent`` may also be a :class:`SpanHandle` (see
        :meth:`Span.handle`): the handle is materialised as a borrowed
        placeholder span carrying the original id, depth and trace id,
        so the caller only needs to ship a picklable tuple across the
        worker boundary -- the contract the process-pool backend relies
        on.  Spans opened under the placeholder inherit its
        ``trace_id``, which is how one request trace crosses thread and
        process boundaries.  A :class:`TraceContext` is also accepted:
        its parent handle (if any) is attached and its ``trace_id``
        becomes the block's ambient trace (see :meth:`trace`), covering
        the parentless "same trace, new subtree" case.
        """
        if parent is None:
            yield
            return
        trace_seed = ""
        if isinstance(parent, TraceContext):
            trace_seed = parent.trace_id
            parent = parent.parent
            if parent is None:
                with self.trace(trace_seed):
                    yield
                return
        if isinstance(parent, SpanHandle):
            # Borrowed placeholder: same id/depth as the original, never
            # finished or collected here (status stays "borrowed").
            parent = Span(
                name=parent.name,
                span_id=parent.span_id,
                parent_id=None,
                depth=parent.depth,
                start_s=float("nan"),
                status="borrowed",
                trace_id=parent.trace_id or trace_seed,
            )
        stack = self._stack()
        stack.append(parent)
        try:
            yield
        finally:
            # Pop by identity: a misnested child span that leaked onto
            # the stack must not unbalance the caller's context.
            if stack and stack[-1] is parent:
                stack.pop()
            elif parent in stack:
                stack.remove(parent)

    def absorb(self, spans: List[Span]) -> None:
        """Adopt externally finished spans (e.g. from a worker process).

        The process-pool backend runs each worker with its own tracer at
        a disjoint ``id_offset``; the finished spans come back pickled
        and are folded into this tracer's collection here, so one export
        covers the whole cross-process sweep.  Absorb never renumbers --
        the offset contract is the caller's to honour -- but it does
        *verify* it: a span id already collected (own or previously
        absorbed) raises :class:`~repro.errors.ConfigurationError`
        naming the colliding ids, and the batch is rejected atomically
        (nothing is absorbed), so a mis-offset worker corrupts nothing.

        Thread-safety: checks and appends under the tracer lock.

        Raises:
            ConfigurationError: if any incoming ``span_id`` collides
                with an already-collected span or with another span in
                ``spans``.
        """
        with self._lock:
            colliding = sorted(
                {s.span_id for s in spans} & self._seen_ids
            )
            incoming = [s.span_id for s in spans]
            if len(set(incoming)) != len(incoming):
                duplicates = sorted(
                    {i for i in incoming if incoming.count(i) > 1}
                )
                colliding = sorted(set(colliding) | set(duplicates))
            if colliding:
                shown = ", ".join(str(i) for i in colliding[:5])
                raise ConfigurationError(
                    "absorb: span id collision on "
                    f"{shown}{'...' if len(colliding) > 5 else ''} -- "
                    "worker tracers must use disjoint id_offset values "
                    "(see Tracer(id_offset=...))"
                )
            self._finished.extend(spans)
            self._seen_ids.update(incoming)

    def finished(self) -> List[Span]:
        """Snapshot of all completed spans, completion order."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        """Drop every collected span (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()
            self._seen_ids.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)
