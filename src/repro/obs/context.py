"""The observability switchboard: one process-wide active observer.

The instrumented pipeline code always goes through
:func:`get_observer`; by default that returns a *disabled*
:class:`Observability` whose :meth:`~Observability.span` hands back a
shared no-op context manager and whose ``enabled`` flag gates every
metrics call, so the instrumentation costs a few attribute reads per
``locate`` and nothing else.  Enabling observability (the CLI's
``--trace`` / ``--metrics``, the benchmark hook, or :func:`observed` in
tests) swaps in a live observer with a real tracer and registry.

Standard instrument names used by the built-in instrumentation are
collected in :data:`STANDARD_METRICS` and pre-registered by
:func:`Observability.preregister` so a run's metrics summary always
shows e.g. the CRC-failure count even when it stayed at zero.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer


class _NoopSpanContext:
    """Shared, stateless stand-in for a span when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpanContext":
        return self


_NOOP_SPAN = _NoopSpanContext()

#: Instruments the built-in instrumentation writes to, with the bucket
#: layout histograms are created with.  Pre-registered on enabled
#: observers so summaries are stable across runs that never hit a path.
STANDARD_METRICS = {
    "ble.packets_received": ("counter", None),
    "ble.crc_failures": ("counter", None),
    "ble.demod_snr_db": ("histogram", (0, 3, 6, 9, 12, 15, 20, 25, 30, 40, 60)),
    "correction.hops_total": ("counter", None),
    "correction.hops_missing": ("counter", None),
    "correction.hop_coverage": ("gauge", None),
    "correction.residual_phase_rad": (
        "histogram",
        (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.2),
    ),
    "peaks.candidates": ("histogram", COUNT_BUCKETS),
    "peaks.raw_candidates": ("histogram", COUNT_BUCKETS),
    "peaks.score_margin": (
        "histogram",
        (0.01, 0.025, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0),
    ),
    "eval.fixes_total": ("counter", None),
    "eval.subset_failures": ("counter", None),
    "eval.fix_latency_s": ("histogram", LATENCY_BUCKETS_S),
    "engine.cache_hits": ("counter", None),
    "engine.cache_misses": ("counter", None),
    "engine.cache_evictions": ("counter", None),
    "engine.build_s": ("histogram", LATENCY_BUCKETS_S),
    "diag.bundles_written": ("counter", None),
    "health.anomalies.band_outage": ("counter", None),
    "health.anomalies.phase_offset_drift": ("counter", None),
    "health.anomalies.low_snr": ("counter", None),
    "health.anomalies.stale_anchor": ("counter", None),
}


class Observability:
    """A tracer + metrics registry pair behind one enabled flag.

    Attributes:
        enabled: when False, :meth:`span` is a no-op and instrumented
            code skips its metrics blocks.
        tracer: span collector (only meaningful when enabled).
        metrics: instrument registry (only meaningful when enabled).
    """

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self, enabled: bool = True, clock=None):
        self.enabled = enabled
        self.tracer = Tracer(**({"clock": clock} if clock else {}))
        self.metrics = MetricsRegistry()

    def span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ):
        """A span context manager (no-op when disabled).

        ``trace_id`` pins the span to an existing request trace; omitted,
        the tracer inherits the parent's (or ambient) trace id.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return self.tracer.span(name, trace_id=trace_id, **attributes)

    def preregister(self) -> "Observability":
        """Create every standard instrument up front; returns self."""
        for name, (kind, buckets) in STANDARD_METRICS.items():
            if kind == "counter":
                self.metrics.counter(name)
            elif kind == "gauge":
                self.metrics.gauge(name)
            else:
                self.metrics.histogram(name, buckets)
        return self

    def reset(self) -> None:
        """Drop collected spans and instruments."""
        self.tracer.reset()
        self.metrics.reset()


#: The permanently disabled default observer.
_DISABLED = Observability(enabled=False)

_current: Observability = _DISABLED


def get_observer() -> Observability:
    """The process-wide active observer (disabled by default)."""
    return _current


def install(observer: Optional[Observability]) -> Observability:
    """Make ``observer`` the active one; returns the previous observer.

    Passing None restores the disabled default.
    """
    # Atomic reference swap under the GIL; installs happen before worker
    # threads start (see evaluate()), so no lock is needed here.
    global _current  # repro: noqa[RPR003]
    previous = _current
    _current = observer if observer is not None else _DISABLED
    return previous


@contextmanager
def observed(
    observer: Optional[Observability] = None,
    preregister: bool = True,
) -> Iterator[Observability]:
    """Enable observability for a ``with`` block.

    Args:
        observer: the observer to install (a fresh enabled one when
            omitted).
        preregister: create the standard instruments up front.

    Yields:
        The installed observer; the previous observer is restored on
        exit no matter how the block ends.
    """
    obs = observer if observer is not None else Observability(enabled=True)
    if preregister and obs.enabled:
        obs.preregister()
    previous = install(obs)
    try:
        yield obs
    finally:
        install(previous)


def traced(name: Optional[str] = None):
    """Decorator: run the function inside a span named after it.

    The observer is resolved at call time, so decorating a function is
    free until observability is enabled.
    """

    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            observer = get_observer()
            if not observer.enabled:
                return func(*args, **kwargs)
            with observer.tracer.span(span_name):
                return func(*args, **kwargs)

        return wrapper

    return decorate
