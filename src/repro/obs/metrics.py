"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

Prometheus-style instruments with no external dependencies: a
:class:`MetricsRegistry` owns named instruments, instrument creation is
idempotent (``registry.counter("x")`` returns the existing counter), and
histograms use fixed ``le`` (less-or-equal) bucket upper bounds so two
runs of the same pipeline produce structurally comparable output.

Percentiles are estimated from the bucket counts by linear interpolation
inside the bucket that holds the requested rank, clamped to the observed
min/max -- the standard fixed-bucket estimator.  For per-fix latencies at
the default bucket layout this resolves p50/p95 to well under a bucket
width, which is all a regression dashboard needs.
"""

from __future__ import annotations

import bisect
import math
import time
from typing import (
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.runtime_locks import guarded_by, make_lock
from repro.errors import ConfigurationError

Number = Union[int, float]


class Exemplar(NamedTuple):
    """One sampled observation kept alongside a histogram bucket.

    Prometheus-style exemplars: the most recent observation in a bucket
    that carried a ``trace_id``, so a latency bucket on a dashboard
    links straight to a concrete request trace.

    Attributes:
        value: the observed value.
        trace_id: the request trace the observation belongs to.
        ts: unix timestamp of the observation.
    """

    value: float
    trace_id: str
    ts: float

    def to_dict(self) -> dict:
        """Plain-data view for export."""
        return {"value": self.value, "trace_id": self.trace_id, "ts": self.ts}

#: Default histogram buckets for durations in seconds (1 ms .. 10 s).
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for small non-negative counts (peaks, candidates...).
COUNT_BUCKETS: Tuple[float, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


@guarded_by("_lock", "_value")
class Counter:
    """A monotonically increasing count.

    Attributes:
        name: registry key.
    """

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = make_lock("Counter._lock")

    @property
    def value(self) -> float:
        """Current total (read under the instrument lock)."""
        with self._lock:
            return self._value

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter (thread-safe)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name}: increment must be >= 0, got {amount}"
            )
        with self._lock:
            self._value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter's total into this one (thread-safe)."""
        self.inc(other.value)

    def snapshot(self) -> dict:
        """Plain-data view for export."""
        with self._lock:
            return {
                "type": "counter", "name": self.name, "value": self._value
            }


@guarded_by("_lock", "_value")
class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._value = float("nan")
        self._lock = make_lock("Gauge._lock")

    @property
    def value(self) -> float:
        """Last set value (NaN before the first set); read under the
        instrument lock."""
        with self._lock:
            return self._value

    def set(self, value: Number) -> None:
        """Record the current value (thread-safe)."""
        with self._lock:
            self._value = float(value)

    def add(self, amount: Number) -> None:
        """Adjust the gauge relative to its current value (NaN -> amount)."""
        with self._lock:
            if math.isnan(self._value):
                self._value = float(amount)
            else:
                self._value += float(amount)

    def merge(self, other: "Gauge") -> None:
        """Adopt another gauge's value (thread-safe; last write wins,
        NaN is skipped)."""
        value = other.value
        if not math.isnan(value):
            self.set(value)

    def snapshot(self) -> dict:
        """Plain-data view for export."""
        with self._lock:
            return {
                "type": "gauge", "name": self.name, "value": self._value
            }


@guarded_by(
    "_lock", "_counts", "_count", "_sum", "_min", "_max", "_exemplars"
)
class Histogram:
    """Fixed-bucket histogram with ``le`` (less-or-equal) upper bounds.

    A value lands in the first bucket whose upper bound is >= the value;
    values above the last bound land in the implicit ``+inf`` overflow
    bucket.  Bucket edges are part of the instrument's identity:
    re-requesting the same name with different edges is a configuration
    error, not a silent re-bucketing.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[Number]):
        edges = tuple(float(b) for b in buckets)
        if len(edges) < 1:
            raise ConfigurationError(f"histogram {name}: need >= 1 bucket")
        if any(not math.isfinite(e) for e in edges):
            raise ConfigurationError(
                f"histogram {name}: bucket edges must be finite"
            )
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram {name}: bucket edges must be strictly increasing"
            )
        self.name = name
        self.edges = edges
        self._counts = [0] * (len(edges) + 1)  # +1 for the +inf overflow
        self._exemplars: List[Optional[Exemplar]] = [None] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = make_lock("Histogram._lock")

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (inf before the first observe)."""
        with self._lock:
            return self._min

    @property
    def max(self) -> float:
        """Largest observation (-inf before the first observe)."""
        with self._lock:
            return self._max

    def observe(
        self, value: Number, trace_id: Optional[str] = None
    ) -> None:
        """Record one observation (thread-safe).

        When ``trace_id`` is given, the observation also becomes the
        bucket's :class:`Exemplar` (last writer wins), linking the
        bucket to a concrete request trace in the exposition.
        """
        v = float(value)
        if math.isnan(v):
            raise ConfigurationError(
                f"histogram {self.name}: cannot observe NaN"
            )
        idx = bisect.bisect_left(self.edges, v)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v
            if trace_id:
                self._exemplars[idx] = Exemplar(
                    value=v, trace_id=trace_id, ts=time.time()
                )

    def bucket_counts(self) -> List[int]:
        """Per-bucket counts (last entry is the +inf overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def exemplars(self) -> List[Optional[Exemplar]]:
        """Per-bucket exemplars, parallel to :meth:`bucket_counts`.

        Thread-safety: copied under the instrument lock.
        """
        with self._lock:
            return list(self._exemplars)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Both histograms must share the same bucket edges (edges are part
        of the instrument identity).  Thread-safety: the other histogram
        is snapshotted under its own lock first, so merging is safe while
        writers are still observing into either side.
        """
        if other.edges != self.edges:
            raise ConfigurationError(
                f"histogram {self.name}: cannot merge edges {other.edges} "
                f"into {self.edges}"
            )
        with other._lock:
            counts = list(other._counts)
            exemplars = list(other._exemplars)
            count = other._count
            total = other._sum
            lo, hi = other._min, other._max
        if count == 0:
            return
        with self._lock:
            self._counts = [a + b for a, b in zip(self._counts, counts)]
            self._count += count
            self._sum += total
            if lo < self._min:
                self._min = lo
            if hi > self._max:
                self._max = hi
            for i, exemplar in enumerate(exemplars):
                if exemplar is None:
                    continue
                mine = self._exemplars[i]
                if mine is None or exemplar.ts >= mine.ts:
                    self._exemplars[i] = exemplar

    def merge_snapshot(self, item: dict) -> None:
        """Fold a plain-data :meth:`snapshot` into this histogram.

        The process-pool backend cannot ship ``Histogram`` objects (they
        hold locks), so workers return snapshots and the parent folds
        them back in here.  The snapshot's bucket edges must match this
        instrument's (edges are part of the identity, as in
        :meth:`merge`).

        Thread-safety: mutates under the instrument lock.
        """
        buckets = item.get("buckets") or []
        if not buckets or buckets[-1].get("le") != "inf":
            raise ConfigurationError(
                f"histogram {self.name}: snapshot lacks the +inf bucket"
            )
        edges = tuple(float(b["le"]) for b in buckets[:-1])
        if edges != self.edges:
            raise ConfigurationError(
                f"histogram {self.name}: cannot merge snapshot edges "
                f"{edges} into {self.edges}"
            )
        count = int(item.get("count") or 0)
        if count == 0:
            return
        counts = [int(b.get("count") or 0) for b in buckets]
        exemplars: List[Optional[Exemplar]] = []
        for bucket in buckets:
            raw = bucket.get("exemplar")
            if raw:
                exemplars.append(
                    Exemplar(
                        value=float(raw["value"]),
                        trace_id=str(raw["trace_id"]),
                        ts=float(raw.get("ts") or 0.0),
                    )
                )
            else:
                exemplars.append(None)
        total = float(item.get("sum") or 0.0)
        lo = float(item["min"]) if item.get("min") is not None else float("inf")
        hi = float(item["max"]) if item.get("max") is not None else float("-inf")
        with self._lock:
            self._counts = [a + b for a, b in zip(self._counts, counts)]
            self._count += count
            self._sum += total
            if lo < self._min:
                self._min = lo
            if hi > self._max:
                self._max = hi
            for i, exemplar in enumerate(exemplars):
                if exemplar is None:
                    continue
                mine = self._exemplars[i]
                if mine is None or exemplar.ts >= mine.ts:
                    self._exemplars[i] = exemplar

    def mean(self) -> float:
        """Mean of the observations (NaN when empty); sum and count are
        read under the lock so the ratio is internally consistent."""
        with self._lock:
            if not self._count:
                return float("nan")
            return self._sum / self._count

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (q in [0, 100]) from the buckets.

        Linear interpolation inside the bucket holding the requested
        rank, with bucket bounds clamped to the observed min/max so the
        open-ended first and overflow buckets stay finite.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            lo, hi = self._min, self._max
        if total == 0:
            return float("nan")
        rank = q / 100.0 * total
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            if cumulative + bucket_count >= rank and bucket_count > 0:
                lower = self.edges[i - 1] if i > 0 else lo
                upper = self.edges[i] if i < len(self.edges) else hi
                lower = max(lower, lo)
                upper = min(upper, hi)
                if upper <= lower:
                    return lower
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return hi

    def snapshot(self) -> dict:
        """Plain-data view for export (includes p50/p95 estimates)."""
        with self._lock:
            counts = list(self._counts)
            exemplars = list(self._exemplars)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        buckets = []
        for i, edge in enumerate(list(self.edges) + ["inf"]):
            bucket: dict = {"le": edge, "count": counts[i]}
            if exemplars[i] is not None:
                bucket["exemplar"] = exemplars[i].to_dict()
            buckets.append(bucket)
        return {
            "type": "histogram",
            "name": self.name,
            "count": count,
            "sum": total,
            "min": lo if count else None,
            "max": hi if count else None,
            "mean": (total / count) if count else None,
            "p50": self.percentile(50.0) if count else None,
            "p95": self.percentile(95.0) if count else None,
            "buckets": buckets,
        }


Instrument = Union[Counter, Gauge, Histogram]


@guarded_by("_lock", "_instruments")
class MetricsRegistry:
    """Named instruments for one observability session.

    Instrument accessors create on first use and return the existing
    instrument afterwards; requesting an existing name as a different
    instrument kind (or a histogram with different buckets) raises
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}
        self._lock = make_lock("MetricsRegistry._lock")

    def _get_or_create(self, name: str, factory, kind: str) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {kind}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(
        self, name: str, buckets: Optional[Sequence[Number]] = None
    ) -> Histogram:
        """Get or create a histogram (default buckets: latency seconds)."""
        requested = tuple(
            float(b) for b in (buckets or LATENCY_BUCKETS_S)
        )
        instrument = self._get_or_create(
            name, lambda: Histogram(name, requested), "histogram"
        )
        if buckets is not None and instrument.edges != requested:
            raise ConfigurationError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.edges}, requested {requested}"
            )
        return instrument

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold every instrument of ``other`` into this registry.

        Counterpart instruments are created on demand; counters add,
        gauges last-write-win, histograms combine bucket counts.  Used by
        the parallel evaluation runner to collapse per-worker registries
        into the session observer.  Thread-safety: each instrument merge
        locks both sides' instruments, so folding is safe while workers
        still write into ``other``.  Returns self for chaining.
        """
        for instrument in other.instruments():
            if instrument.kind == "counter":
                self.counter(instrument.name).merge(instrument)
            elif instrument.kind == "gauge":
                self.gauge(instrument.name).merge(instrument)
            else:
                self.histogram(instrument.name, instrument.edges).merge(
                    instrument
                )
        return self

    def merge_snapshot(self, snapshot: Iterable[dict]) -> "MetricsRegistry":
        """Fold a plain-data :meth:`snapshot` into this registry.

        The cross-process counterpart of :meth:`merge`: registries hold
        locks and are not picklable, so process-pool workers return
        ``registry.snapshot()`` lists and the parent folds them in here.
        Counters add, gauges last-write-win (NaN skipped), histograms
        combine bucket counts via :meth:`Histogram.merge_snapshot`.

        Thread-safety: delegates to the lock-protected per-instrument
        merge paths.  Returns self for chaining.
        """
        for item in snapshot:
            kind = item.get("type")
            name = item.get("name")
            if not name:
                raise ConfigurationError(
                    f"metric snapshot item lacks a name: {item!r}"
                )
            if kind == "counter":
                self.counter(name).inc(float(item.get("value") or 0.0))
            elif kind == "gauge":
                value = item.get("value")
                if value is not None and not math.isnan(float(value)):
                    self.gauge(name).set(float(value))
            elif kind == "histogram":
                buckets = item.get("buckets") or []
                edges = tuple(
                    float(b["le"]) for b in buckets
                    if b.get("le") != "inf"
                )
                self.histogram(name, edges or None).merge_snapshot(item)
            else:
                raise ConfigurationError(
                    f"metric snapshot item {name!r} has unknown "
                    f"type {kind!r}"
                )
        return self

    def get(self, name: str) -> Optional[Instrument]:
        """Look up an instrument without creating it."""
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> List[Instrument]:
        """All instruments, sorted by name."""
        with self._lock:
            return [
                self._instruments[k] for k in sorted(self._instruments)
            ]

    def snapshot(self) -> List[dict]:
        """Plain-data view of every instrument, sorted by name."""
        return [inst.snapshot() for inst in self.instruments()]

    def reset(self) -> None:
        """Forget every instrument."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments
