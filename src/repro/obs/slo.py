"""Declarative SLOs over the bench JSON and the run ledger.

One TOML file (``slo.toml`` at the repository root) is the single
source of truth for every performance threshold: the CI bench guard
(``benchmarks/check_bench_regression.py``) reads its tolerances from
the ``[bench]`` table, and ``repro obs slo`` evaluates every
``[slo.<name>]`` rule against the latest ``BENCH_localize.json`` and
``runs.ndjson`` records, exiting nonzero on any violation so CI can
gate on it.  Guard and gate cannot drift apart because neither embeds
a constant.

Spec format::

    [bench]
    tolerance = 0.25            # warm/direct ratio regression allowance
    absolute_tolerance = 0.25   # warm_s_per_fix allowance (--absolute)

    [slo.warm_fix_s]
    source = "bench"                        # value from the bench JSON
    key = "steering_cache.warm_s_per_fix"   # dotted path into it
    max = 0.1                               # seconds (ceiling)

    [slo.cache_hit_rate]
    source = "ledger"           # value from the latest ledger record
    kind = "ratio"              # num / sum(den) of scalar_view keys
    num = "metric:engine.cache_hits"
    den = ["metric:engine.cache_hits", "metric:engine.cache_misses"]
    min = 0.5                   # floor
    required = false            # skip (not fail) when data is absent

``source = "ledger"`` keys use the namespaced scalar view of
:func:`repro.obs.ledger.scalar_view` (``metric:...``, ``span:...``,
``result:...``); the newest record containing the key wins.  Parsed
with :mod:`tomllib` where available (Python >= 3.11) and a built-in
minimal TOML-subset parser otherwise -- no new dependencies.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.ledger import scalar_view

try:  # Python >= 3.11
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - exercised on 3.10 runners
    _tomllib = None

#: Default spec location, relative to the repository root.
DEFAULT_SLO_PATH = Path(__file__).resolve().parents[3] / "slo.toml"

#: Valid rule sources.
_SOURCES = ("bench", "ledger")


# ---------------------------------------------------------------------------
# Minimal TOML-subset parser (fallback for Python 3.10)
# ---------------------------------------------------------------------------


def _parse_scalar(token: str) -> Union[str, bool, int, float]:
    token = token.strip()
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return token[1:-1]
    if token in ("true", "false"):
        return token == "true"
    try:
        return json.loads(token)  # ints and floats
    except json.JSONDecodeError:
        raise ConfigurationError(
            f"slo spec: cannot parse value {token!r}"
        ) from None


def parse_toml_minimal(text: str) -> dict:
    """Parse the TOML subset the SLO spec uses (fallback parser).

    Supports ``[dotted.tables]``, ``key = scalar`` and
    ``key = [scalar, ...]`` with ``#`` comments; multi-line values,
    inline tables and escapes are out of scope -- the real
    :mod:`tomllib` handles those on 3.11+, and the committed spec stays
    inside the subset so both parsers agree.
    """
    root: Dict[str, Any] = {}
    table = root
    for line_number, raw in enumerate(text.splitlines(), 1):
        # Comments strip at the first '#'; subset strings never embed one.
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for part in line[1:-1].strip().split("."):
                table = table.setdefault(part.strip(), {})
            continue
        if "=" not in line:
            raise ConfigurationError(
                f"slo spec line {line_number}: expected key = value, "
                f"got {raw!r}"
            )
        key, _, value = line.partition("=")
        value = value.strip()
        if value.startswith("[") and value.endswith("]"):
            inner = value[1:-1].strip()
            parsed: Any = (
                [_parse_scalar(tok) for tok in inner.split(",") if tok.strip()]
                if inner
                else []
            )
        else:
            parsed = _parse_scalar(value)
        table[key.strip()] = parsed
    return root


def _load_toml(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(
                f"{path}: invalid TOML: {exc}"
            ) from exc
    return parse_toml_minimal(text)


# ---------------------------------------------------------------------------
# Spec model
# ---------------------------------------------------------------------------


@dataclass
class SloRule:
    """One declarative objective.

    Attributes:
        name: rule name (the ``[slo.<name>]`` table key).
        source: ``"bench"`` (dotted path into BENCH_localize.json) or
            ``"ledger"`` (scalar-view key of the newest run record).
        key: the value to read (unused for ``kind="ratio"``).
        kind: ``"value"`` or ``"ratio"`` (``num / sum(den)``).
        num / den: scalar-view keys for ratio rules.
        min / max: floor / ceiling; at least one must be set.
        required: when True, missing data fails the rule instead of
            skipping it.
    """

    name: str
    source: str
    key: Optional[str] = None
    kind: str = "value"
    num: Optional[str] = None
    den: Tuple[str, ...] = ()
    min: Optional[float] = None
    max: Optional[float] = None
    required: bool = True


@dataclass
class SloSpec:
    """The parsed spec: bench-guard tolerances plus the rule list."""

    path: Optional[Path] = None
    bench_tolerance: float = 0.25
    bench_absolute_tolerance: Optional[float] = None
    rules: List[SloRule] = field(default_factory=list)


def load_slo_spec(path: Union[str, Path, None] = None) -> SloSpec:
    """Load and validate an ``slo.toml`` spec.

    Raises:
        ConfigurationError: unreadable file or malformed rule.
    """
    spec_path = Path(path) if path is not None else DEFAULT_SLO_PATH
    try:
        data = _load_toml(spec_path)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read SLO spec {spec_path}: {exc}"
        ) from exc
    bench = data.get("bench") or {}
    spec = SloSpec(
        path=spec_path,
        bench_tolerance=float(bench.get("tolerance", 0.25)),
        bench_absolute_tolerance=(
            float(bench["absolute_tolerance"])
            if "absolute_tolerance" in bench
            else None
        ),
    )
    for name, body in (data.get("slo") or {}).items():
        if not isinstance(body, dict):
            raise ConfigurationError(
                f"{spec_path}: [slo.{name}] must be a table"
            )
        rule = SloRule(
            name=name,
            source=str(body.get("source", "bench")),
            key=body.get("key"),
            kind=str(body.get("kind", "value")),
            num=body.get("num"),
            den=tuple(body.get("den") or ()),
            min=(
                float(body["min"]) if body.get("min") is not None else None
            ),
            max=(
                float(body["max"]) if body.get("max") is not None else None
            ),
            required=bool(body.get("required", True)),
        )
        if rule.source not in _SOURCES:
            raise ConfigurationError(
                f"{spec_path}: [slo.{name}] source must be one of "
                f"{_SOURCES}, got {rule.source!r}"
            )
        if rule.kind not in ("value", "ratio"):
            raise ConfigurationError(
                f"{spec_path}: [slo.{name}] kind must be 'value' or "
                f"'ratio', got {rule.kind!r}"
            )
        if rule.kind == "value" and not rule.key:
            raise ConfigurationError(
                f"{spec_path}: [slo.{name}] needs a key"
            )
        if rule.kind == "ratio" and (not rule.num or not rule.den):
            raise ConfigurationError(
                f"{spec_path}: [slo.{name}] ratio needs num and den"
            )
        if rule.min is None and rule.max is None:
            raise ConfigurationError(
                f"{spec_path}: [slo.{name}] needs min and/or max"
            )
        spec.rules.append(rule)
    return spec


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


@dataclass
class SloResult:
    """Outcome of one rule: ``ok``, ``fail`` or ``skip`` plus detail."""

    rule: SloRule
    status: str
    value: Optional[float] = None
    detail: str = ""


def _lookup_bench(payload: dict, dotted: str) -> Optional[float]:
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def _lookup_ledger(
    records: Sequence[dict], rule: SloRule
) -> Optional[float]:
    """The rule's value from the newest record that can answer it."""
    for record in reversed(list(records)):
        view = scalar_view(record)
        if rule.kind == "ratio":
            num = view.get(rule.num or "")
            den = [view.get(k) for k in rule.den]
            if num is None or any(v is None for v in den):
                continue
            total = sum(den)
            if math.isclose(total, 0.0):
                continue
            return num / total
        value = view.get(rule.key or "")
        if value is not None:
            return value
    return None


def _bound_text(rule: SloRule) -> str:
    bounds = []
    if rule.min is not None:
        bounds.append(f">= {rule.min:g}")
    if rule.max is not None:
        bounds.append(f"<= {rule.max:g}")
    return " and ".join(bounds)


def evaluate_slos(
    spec: SloSpec,
    bench: Optional[dict] = None,
    ledger_records: Optional[Sequence[dict]] = None,
) -> List[SloResult]:
    """Evaluate every rule; missing data skips or fails per ``required``."""
    results: List[SloResult] = []
    for rule in spec.rules:
        if rule.source == "bench":
            value = (
                _lookup_bench(bench, rule.key or "")
                if bench is not None and rule.kind == "value"
                else None
            )
            missing_reason = (
                "bench payload not provided"
                if bench is None
                else f"bench key {rule.key!r} missing or non-numeric"
            )
        else:
            value = _lookup_ledger(ledger_records or (), rule)
            missing_reason = (
                "no ledger record answers "
                + (rule.key or f"{rule.num}/{rule.den}")
            )
        if value is None:
            status = "fail" if rule.required else "skip"
            results.append(
                SloResult(rule=rule, status=status, detail=missing_reason)
            )
            continue
        violations = []
        if rule.min is not None and value < rule.min:
            violations.append(f"{value:g} < floor {rule.min:g}")
        if rule.max is not None and value > rule.max:
            violations.append(f"{value:g} > ceiling {rule.max:g}")
        results.append(
            SloResult(
                rule=rule,
                status="fail" if violations else "ok",
                value=value,
                detail=(
                    "; ".join(violations)
                    if violations
                    else f"within {_bound_text(rule)}"
                ),
            )
        )
    return results


def slo_exit_code(results: Sequence[SloResult]) -> int:
    """0 when every rule passed or was skipped, 1 otherwise."""
    return 1 if any(r.status == "fail" for r in results) else 0


def render_slo_results(results: Sequence[SloResult]) -> str:
    """Gate report table plus a one-line verdict."""
    from repro.obs.export import format_table

    if not results:
        return "(no SLO rules defined)"
    rows = []
    for result in results:
        rule = result.rule
        rows.append(
            [
                rule.name,
                rule.source,
                (
                    f"{result.value:.6g}"
                    if result.value is not None
                    else "-"
                ),
                _bound_text(rule),
                result.status.upper(),
                result.detail,
            ]
        )
    failed = sum(1 for r in results if r.status == "fail")
    skipped = sum(1 for r in results if r.status == "skip")
    verdict = (
        f"SLO gate: {len(results) - failed - skipped} ok, "
        f"{failed} failed, {skipped} skipped"
    )
    return (
        format_table(
            ["slo", "source", "value", "bound", "status", "detail"], rows
        )
        + "\n"
        + verdict
    )
