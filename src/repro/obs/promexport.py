"""Prometheus/OpenMetrics text exposition for the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` into the
OpenMetrics text format (the ``GET /metrics`` wire format Prometheus
scrapes), with **exemplars** on histogram buckets: the most recent
observation in a bucket that carried a ``trace_id`` is emitted as

    name_bucket{le="0.25"} 17 # {trace_id="3f2a..."} 0.231 1690000000.0

so a slow bucket on a dashboard links straight to one concrete request
trace in the span NDJSON export.

Rendering rules (the subset of the spec this registry needs):

* metric names are sanitised to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (dots in
  registry names become underscores);
* counters are exposed as ``<name>_total`` with a ``# TYPE`` counter
  line (a registry name already ending in ``_total`` is not doubled);
* gauges that were never set (NaN) are skipped entirely -- an unset
  gauge is an absent sample, not a NaN on the wire;
* histograms emit *cumulative* ``le`` buckets (the registry stores
  per-bucket counts), a ``+Inf`` bucket equal to ``_count``, and
  ``_sum`` / ``_count`` samples;
* the exposition ends with ``# EOF`` as OpenMetrics requires.

:func:`parse_exposition` is the inverse used by tests and the CI smoke
to assert the endpoint's output round-trips and its exemplar trace ids
resolve against the exported spans.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, NamedTuple, Optional

from repro.obs.metrics import Exemplar, Histogram, MetricsRegistry

#: Content-Type a /metrics response should carry for this exposition.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s#]+)"
    r"(?:\s+(?P<ts>[0-9.eE+-]+))?"
    r"(?:\s*#\s*\{(?P<exlabels>[^}]*)\}"
    r"\s+(?P<exvalue>[^\s]+)(?:\s+(?P<exts>[0-9.eE+-]+))?)?\s*$"
)

_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str) -> str:
    """Sanitise a registry instrument name for the exposition."""
    cleaned = _NAME_SANITISE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_le(edge: float) -> str:
    """Bucket bound label: integral edges render without the trailing .0."""
    if float(edge).is_integer():
        return str(int(edge))
    return repr(float(edge))


def _exemplar_suffix(exemplar: Optional[Exemplar]) -> str:
    if exemplar is None:
        return ""
    return (
        f' # {{trace_id="{exemplar.trace_id}"}} '
        f"{_format_value(exemplar.value)} {exemplar.ts:.3f}"
    )


def _render_histogram(histogram: Histogram, lines: List[str]) -> None:
    base = metric_name(histogram.name)
    lines.append(f"# TYPE {base} histogram")
    counts = histogram.bucket_counts()
    exemplars = histogram.exemplars()
    cumulative = 0
    for i, edge in enumerate(histogram.edges):
        cumulative += counts[i]
        lines.append(
            f'{base}_bucket{{le="{_format_le(edge)}"}} {cumulative}'
            + _exemplar_suffix(exemplars[i])
        )
    cumulative += counts[-1]
    lines.append(
        f'{base}_bucket{{le="+Inf"}} {cumulative}'
        + _exemplar_suffix(exemplars[-1])
    )
    lines.append(f"{base}_sum {_format_value(histogram.sum)}")
    lines.append(f"{base}_count {histogram.count}")


def render_openmetrics(registry: MetricsRegistry) -> str:
    """The OpenMetrics text exposition of every instrument in ``registry``.

    Instruments render in name order (the registry's iteration order),
    one ``# TYPE`` family header each; the document terminates with
    ``# EOF``.  The output is strict ASCII and parses back through
    :func:`parse_exposition`.
    """
    lines: List[str] = []
    for instrument in registry.instruments():
        if instrument.kind == "counter":
            base = metric_name(instrument.name)
            if base.endswith("_total"):
                base = base[: -len("_total")]
            lines.append(f"# TYPE {base} counter")
            lines.append(f"{base}_total {_format_value(instrument.value)}")
        elif instrument.kind == "gauge":
            if math.isnan(instrument.value):
                continue
            base = metric_name(instrument.name)
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_format_value(instrument.value)}")
        else:
            _render_histogram(instrument, lines)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class Sample(NamedTuple):
    """One parsed exposition sample line.

    Attributes:
        name: full sample name (e.g. ``service_latency_s_bucket``).
        labels: label set (e.g. ``{"le": "0.25"}``).
        value: sample value.
        exemplar: ``{"labels": {...}, "value": float, "ts": float|None}``
            when the line carried one, else None.
    """

    name: str
    labels: Dict[str, str]
    value: float
    exemplar: Optional[dict]


class ParsedFamily(NamedTuple):
    """One metric family from a parsed exposition."""

    name: str
    type: str
    samples: List[Sample]


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return float("inf")
    if lowered == "-inf":
        return float("-inf")
    if lowered == "nan":
        return float("nan")
    return float(text)


def parse_exposition(text: str) -> Dict[str, ParsedFamily]:
    """Parse an OpenMetrics text document back into metric families.

    Covers the subset :func:`render_openmetrics` emits (no escaping in
    label values beyond ``\\"``).  Strictness is the point -- this is
    the CI assertion that ``GET /metrics`` serves valid text format:

    Raises:
        ValueError: on an unparseable line, a sample preceding any
            ``# TYPE`` header, or a missing ``# EOF`` terminator.
    """
    families: Dict[str, ParsedFamily] = {}
    current: Optional[ParsedFamily] = None
    saw_eof = False
    for line_number, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {line_number}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(
                    f"line {line_number}: malformed TYPE line: {raw!r}"
                )
            _, _, name, kind = parts
            current = families.setdefault(
                name, ParsedFamily(name=name, type=kind, samples=[])
            )
            continue
        if line.startswith("#"):
            # HELP/UNIT lines are legal; this renderer never emits them.
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(
                f"line {line_number}: malformed sample line: {raw!r}"
            )
        if current is None:
            raise ValueError(
                f"line {line_number}: sample before any # TYPE header"
            )
        labels = dict(_LABEL_PAIR.findall(match.group("labels") or ""))
        exemplar = None
        if match.group("exlabels") is not None:
            exemplar = {
                "labels": dict(
                    _LABEL_PAIR.findall(match.group("exlabels"))
                ),
                "value": _parse_value(match.group("exvalue")),
                "ts": (
                    float(match.group("exts"))
                    if match.group("exts")
                    else None
                ),
            }
        current.samples.append(
            Sample(
                name=match.group("name"),
                labels=labels,
                value=_parse_value(match.group("value")),
                exemplar=exemplar,
            )
        )
    if not saw_eof:
        raise ValueError("exposition does not terminate with # EOF")
    return families


def exemplar_trace_ids(text: str) -> List[str]:
    """Every distinct exemplar ``trace_id`` in an exposition, sorted."""
    ids = set()
    for family in parse_exposition(text).values():
        for sample in family.samples:
            if sample.exemplar:
                trace_id = sample.exemplar["labels"].get("trace_id")
                if trace_id:
                    ids.add(trace_id)
    return sorted(ids)
