"""Persistent run ledger: one strict-JSON record per pipeline run.

Every ``python -m repro evaluate``, benchmark session and experiment
sweep appends a :class:`RunRecord` line to ``runs.ndjson`` (path
overridable via ``REPRO_RUNS_LEDGER``), so perf and accuracy claims are
attributable to a specific commit, host and configuration, and any two
runs can be diffed metric-by-metric (``repro obs diff``) months apart.

A record carries:

* identity -- ``run_id`` (random, collision-free per line), UTC
  timestamp, the command that produced it, and the git commit;
* comparability keys -- a configuration/scenario ``fingerprint``
  (sha256 of the canonical JSON) and host info including the *real*
  ``os.cpu_count()``, so a 1-core CI "parallel speedup" is never again
  mistaken for a multi-core measurement;
* the measurements -- the metrics-registry snapshot, per-span-name
  latency quantiles (p50/p95/p99), headline ``results`` numbers, and
  paths of artifacts (traces, profiles, bundles) the run wrote.

Strict JSON throughout: NaN/Inf never land in the file
(``allow_nan=False``), via the same :func:`repro.obs.export._json_safe`
normalisation the NDJSON trace export uses.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import subprocess
import threading
import uuid
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.runtime_locks import make_lock
from repro.errors import ConfigurationError
from repro.obs.context import Observability
from repro.obs.export import _json_safe
from repro.obs.trace import Span

#: Environment variable overriding the default ledger location.
LEDGER_ENV = "REPRO_RUNS_LEDGER"

#: Default ledger filename (appended in the working directory).
DEFAULT_LEDGER = "runs.ndjson"

#: Schema version stamped into every record.
LEDGER_VERSION = 1


def default_ledger_path() -> Path:
    """The ledger location: ``$REPRO_RUNS_LEDGER`` or ``./runs.ndjson``."""
    return Path(os.environ.get(LEDGER_ENV) or DEFAULT_LEDGER)


def fingerprint_of(obj: Any) -> str:
    """Short sha256 fingerprint of a config/scenario-like object.

    Canonicalised through the strict-JSON normaliser with sorted keys,
    so two structurally equal configurations fingerprint identically
    regardless of dict ordering or numpy scalar types.
    """
    canonical = json.dumps(
        _json_safe(obj), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def current_git_sha() -> str:
    """The checked-out commit, or ``"unknown"`` outside a git checkout.

    Falls back to ``GITHUB_SHA`` (set by Actions even in shallow or
    detached checkouts) before giving up.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def host_info() -> dict:
    """Host facts every record carries (real cpu_count included)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "node": platform.node(),
    }


def span_quantiles(spans: Sequence[Span]) -> Dict[str, dict]:
    """Per-span-name latency quantiles from raw span durations.

    Returns ``{name: {count, total_s, p50_s, p95_s, p99_s}}`` computed
    from the exact durations (not bucket estimates), first-seen order
    preserved in the dict.
    """
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        if math.isfinite(span.duration_s):
            by_name.setdefault(span.name, []).append(span.duration_s)
    out: Dict[str, dict] = {}
    for name, durations in by_name.items():
        values = np.asarray(durations, dtype=float)
        out[name] = {
            "count": int(values.size),
            "total_s": float(values.sum()),
            "p50_s": float(np.percentile(values, 50)),
            "p95_s": float(np.percentile(values, 95)),
            "p99_s": float(np.percentile(values, 99)),
        }
    return out


@dataclass
class RunRecord:
    """One ledger line (see the module docstring for the field story).

    Attributes mirror the JSON schema one-to-one; :meth:`to_dict`
    produces the strict-JSON-safe dict that lands in the file.
    """

    run_id: str
    timestamp: str
    command: str
    git_sha: str
    fingerprint: str
    host: dict
    label: str = ""
    workers: Optional[int] = None
    metrics: List[dict] = field(default_factory=list)
    spans: Dict[str, dict] = field(default_factory=dict)
    results: dict = field(default_factory=dict)
    artifacts: List[str] = field(default_factory=list)
    profile: Optional[dict] = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The strict-JSON dict written to the ledger."""
        payload = {"type": "run", "version": LEDGER_VERSION}
        payload.update(asdict(self))
        return _json_safe(payload)


def build_run_record(
    command: str,
    observer: Optional[Observability] = None,
    *,
    label: str = "",
    config: Any = None,
    workers: Optional[int] = None,
    results: Optional[dict] = None,
    artifacts: Sequence[Union[str, Path]] = (),
    profile: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` for the run that just finished.

    Args:
        command: what ran (``evaluate``, ``bench:localize``, ...).
        observer: the run's observer; its metrics snapshot and span
            quantiles are embedded when enabled (omitted when None or
            disabled).
        config: any JSON-able configuration/scenario object; only its
            fingerprint is stored.
        results: headline numbers (median error, fixes/s, ...).
        artifacts: paths of files the run wrote (traces, profiles,
            bundles) for later retrieval.
        profile: a :meth:`~repro.obs.prof.ProfileReport.snapshot` dict.
        extra: free-form additions (kept small; the ledger is a log,
            not a blob store).
    """
    metrics: List[dict] = []
    spans: Dict[str, dict] = {}
    if observer is not None and observer.enabled:
        metrics = observer.metrics.snapshot()
        spans = span_quantiles(observer.tracer.finished())
    return RunRecord(
        run_id=uuid.uuid4().hex[:12],
        timestamp=datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        command=command,
        git_sha=current_git_sha(),
        fingerprint=fingerprint_of(config) if config is not None else "",
        host=host_info(),
        label=label,
        workers=workers,
        metrics=metrics,
        spans=spans,
        results=dict(results or {}),
        artifacts=[str(p) for p in artifacts],
        profile=profile,
        extra=dict(extra or {}),
    )


class RunLedger:
    """Append-only NDJSON ledger of :class:`RunRecord` lines.

    The file is plain NDJSON: one strict-JSON object per line, append
    semantics, no header -- trivially greppable, diffable and
    uploadable as a CI artifact.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path is not None else default_ledger_path()
        self._lock = make_lock("RunLedger._lock")

    def append(self, record: Union[RunRecord, dict]) -> dict:
        """Append one record; returns the dict actually written.

        Thread-safe: serialisation happens outside the lock, the
        open-append-close happens under it, so two in-process writers
        cannot interleave half-lines.  (Cross-process appends rely on
        O_APPEND line atomicity, which holds for these short lines on
        every platform we target.)
        """
        payload = (
            record.to_dict()
            if isinstance(record, RunRecord)
            else _json_safe(record)
        )
        line = json.dumps(payload, allow_nan=False)
        with self._lock:
            parent = self.path.parent
            if parent and not parent.exists():
                parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        return payload

    def load(self) -> List[dict]:
        """Every record in the ledger, file order ([] when absent).

        Raises:
            ValueError: on a corrupt line (the ledger is strict JSON).
        """
        if not self.path.exists():
            return []
        records: List[dict] = []
        with self.path.open("r", encoding="utf-8") as fh:
            for line_number, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}:{line_number}: corrupt ledger "
                        f"line: {exc}"
                    ) from exc
        return records

    def last(self, n: int = 1) -> List[dict]:
        """The most recent ``n`` records, oldest first."""
        records = self.load()
        return records[-n:] if n > 0 else []

    def resolve(self, ref: str) -> dict:
        """A record by ``run_id`` prefix or negative index (``-1``).

        Raises:
            ConfigurationError: unknown or ambiguous reference.
        """
        records = self.load()
        if not records:
            raise ConfigurationError(
                f"ledger {self.path} is empty or missing"
            )
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None:
            try:
                return records[index]
            except IndexError:
                raise ConfigurationError(
                    f"ledger index {ref} out of range "
                    f"({len(records)} record(s))"
                ) from None
        matches = [
            r
            for r in records
            if str(r.get("run_id", "")).startswith(ref)
        ]
        if not matches:
            raise ConfigurationError(
                f"no ledger record with run_id prefix {ref!r}"
            )
        if len(matches) > 1:
            ids = ", ".join(str(m.get("run_id")) for m in matches[:5])
            raise ConfigurationError(
                f"run_id prefix {ref!r} is ambiguous ({ids})"
            )
        return matches[0]


# ---------------------------------------------------------------------------
# Diffing and reporting
# ---------------------------------------------------------------------------

#: Histogram fields worth diffing run-to-run.
_HIST_FIELDS = ("count", "mean", "p50", "p95")

#: Span-quantile fields worth diffing run-to-run.
_SPAN_FIELDS = ("count", "p50_s", "p95_s", "p99_s")


#: Result-key suffixes that are recorded as explicit ``null`` when the
#: measurement is not meaningful (rather than being dropped), mapped to
#: the label the report renders for them.
_NULL_RESULT_LABELS = {
    "speedup_parallel_vs_serial": "n/a (1 cpu)",
    "speedup_process_vs_serial": "n/a (1 cpu)",
    "speedup_batched_vs_serial": "n/a (1 cpu)",
}


def null_result_keys(record: dict) -> Dict[str, str]:
    """Result keys explicitly recorded as ``null``, with render labels.

    A bench run on a single-core host records e.g.
    ``speedup_parallel_vs_serial: null`` instead of a misleading ~1.0x
    number; the report shows these as ``n/a (1 cpu)`` instead of
    silently dropping the row.
    """
    out: Dict[str, str] = {}
    for key, value in (record.get("results") or {}).items():
        if value is not None:
            continue
        for suffix, label in _NULL_RESULT_LABELS.items():
            if key.endswith(suffix):
                out[f"result:{key}"] = label
                break
        else:
            out[f"result:{key}"] = "n/a"
    return out


def scalar_view(record: dict) -> Dict[str, float]:
    """Flatten a ledger record to comparable scalar series.

    Keys are namespaced: ``metric:<name>[.<field>]`` for instruments,
    ``span:<name>.<field>`` for latency quantiles, ``result:<key>`` for
    headline numbers.  Non-numeric and missing values are dropped --
    the view feeds diffs and SLO lookups, both of which need numbers.
    """
    out: Dict[str, float] = {}

    def put(key: str, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(
            value, bool
        ):
            out[key] = float(value)

    for metric in record.get("metrics", []):
        kind = metric.get("type")
        name = metric.get("name")
        if not name:
            continue
        if kind in ("counter", "gauge"):
            put(f"metric:{name}", metric.get("value"))
        elif kind == "histogram":
            for fld in _HIST_FIELDS:
                put(f"metric:{name}.{fld}", metric.get(fld))
    for name, quantiles in (record.get("spans") or {}).items():
        for fld in _SPAN_FIELDS:
            put(f"span:{name}.{fld}", (quantiles or {}).get(fld))
    for key, value in (record.get("results") or {}).items():
        put(f"result:{key}", value)
    return out


def diff_records(a: dict, b: dict) -> List[dict]:
    """Metric-by-metric diff rows between two ledger records.

    Each row: ``{"key", "a", "b", "delta", "pct"}`` where ``delta`` is
    ``b - a`` and ``pct`` is the relative change (None when a side is
    missing or ``a`` is zero).  Keys present on only one side are kept
    -- a metric disappearing between runs is itself a finding.
    """
    view_a, view_b = scalar_view(a), scalar_view(b)
    rows: List[dict] = []
    for key in sorted(set(view_a) | set(view_b)):
        va, vb = view_a.get(key), view_b.get(key)
        delta = vb - va if va is not None and vb is not None else None
        pct = (
            delta / abs(va)
            if delta is not None and not math.isclose(va, 0.0)
            else None
        )
        rows.append(
            {"key": key, "a": va, "b": vb, "delta": delta, "pct": pct}
        )
    return rows


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def _describe(record: dict) -> str:
    return (
        f"{record.get('run_id', '?')} ({record.get('command', '?')}"
        f"{'/' + record['label'] if record.get('label') else ''}, "
        f"{record.get('timestamp', '?')})"
    )


def render_runs(records: Sequence[dict]) -> str:
    """One-line-per-run listing table (``repro obs runs``)."""
    from repro.obs.export import format_table

    if not records:
        return "(ledger is empty)"
    rows = []
    for record in records:
        view = scalar_view(record)
        fix_p95 = view.get("span:fix.p95_s")
        fixes = view.get("metric:eval.fixes_total")
        rows.append(
            [
                record.get("run_id", "?"),
                record.get("timestamp", "?"),
                record.get("command", "?"),
                record.get("label", "") or "-",
                str(record.get("git_sha", "?"))[:10],
                str((record.get("host") or {}).get("cpu_count", "?")),
                str(record.get("workers") or "-"),
                _fmt(fixes),
                _fmt(fix_p95),
            ]
        )
    return format_table(
        [
            "run_id",
            "timestamp",
            "command",
            "label",
            "git",
            "cpus",
            "workers",
            "fixes",
            "fix p95 s",
        ],
        rows,
    )


def render_diff(a: dict, b: dict, min_pct: float = 0.0) -> str:
    """Human-readable metric-by-metric diff (``repro obs diff``).

    Args:
        min_pct: hide rows whose relative change is below this
            fraction (rows missing on one side always show).
    """
    from repro.obs.export import format_table

    nulls_a, nulls_b = null_result_keys(a), null_result_keys(b)
    rows = []
    seen = set()
    for row in diff_records(a, b):
        pct = row["pct"]
        if (
            pct is not None
            and min_pct > 0
            and abs(pct) < min_pct
        ):
            continue
        key = row["key"]
        seen.add(key)
        rows.append(
            [
                key,
                nulls_a.get(key) or _fmt(row["a"]),
                nulls_b.get(key) or _fmt(row["b"]),
                _fmt(row["delta"]),
                f"{pct * 100:+.1f}%" if pct is not None else "-",
            ]
        )
    for key in sorted(set(nulls_a) | set(nulls_b)):
        # Null on both sides: diff_records never saw the key, but the
        # report should still say *why* there is no number.
        if key in seen:
            continue
        rows.append(
            [
                key,
                nulls_a.get(key, "-"),
                nulls_b.get(key, "-"),
                "-",
                "-",
            ]
        )
    rows.sort(key=lambda r: r[0])
    header = [
        f"A: {_describe(a)}",
        f"B: {_describe(b)}",
        "",
    ]
    if not rows:
        return "\n".join(header + ["(no comparable metrics)"])
    return "\n".join(
        header
        + [format_table(["metric", "A", "B", "delta", "change"], rows)]
    )


def render_report(records: Sequence[dict], min_pct: float = 0.0) -> str:
    """Regression report: run listing plus the latest-pair diff."""
    if len(records) < 2:
        return (
            "need >= 2 ledger records for a report; have "
            f"{len(records)}\n" + render_runs(records)
        )
    parts = [
        "== runs ==",
        render_runs(records),
        "",
        "== latest diff (previous -> latest) ==",
        render_diff(records[-2], records[-1], min_pct=min_pct),
    ]
    return "\n".join(parts)
