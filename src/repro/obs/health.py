"""Anchor health: rolling per-anchor gauges + structured anomaly events.

An evaluation sweep produces one :class:`~repro.obs.diag.FixDiagnostics`
per fix; the :class:`AnchorHealthMonitor` folds them, in fix order, into
rolling per-anchor state and fires **edge-triggered** anomaly events
through the metrics registry when an anchor's signal chain degrades:

* ``band_outage`` -- too many of the anchor's bands unusable in a fix;
* ``phase_offset_drift`` -- Eq. 10's residual cross-band phase exceeds
  the linearity budget (oscillator drift / broken correction);
* ``low_snr`` -- demod SNR below threshold for N consecutive fixes;
* ``stale_anchor`` -- nothing usable heard from the anchor for N
  consecutive fixes.

Events are edge-triggered: one event when the condition starts, nothing
while it persists, re-armed once the condition clears -- so a dead
anchor produces one actionable event, not one per fix.  Each event also
bumps the matching ``health.anomalies.<kind>`` counter, and every
``observe()`` refreshes the ``health.anchor.<name>.*`` gauges with
rolling-window means, so the run summary shows per-anchor health even
when nothing anomalous happened.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.context import Observability, get_observer
from repro.obs.diag import FixDiagnostics

#: Anomaly kinds, matching the ``health.anomalies.*`` counters in
#: :data:`repro.obs.context.STANDARD_METRICS`.
ANOMALY_KINDS = (
    "band_outage",
    "phase_offset_drift",
    "low_snr",
    "stale_anchor",
)


@dataclass(frozen=True)
class HealthThresholds:
    """Trip points of the anomaly detectors.

    Attributes:
        outage_missing_fraction: a fix with at least this fraction of an
            anchor's bands unusable is a band outage.
        drift_residual_rad: per-anchor RMS residual phase above this is
            a phase-offset-drift anomaly (the calibrated simulator sits
            around 0.2-0.4 rad; a broken correction is >~ 1 rad).
        low_snr_db: per-fix median demod SNR below this counts towards a
            low-SNR streak.
        low_snr_fixes: consecutive low-SNR fixes before the anomaly
            fires.
        stale_fixes: consecutive fixes with *zero* usable bands before
            the anchor is declared stale.
        window: rolling-window length [fixes] for the health gauges.
    """

    outage_missing_fraction: float = 0.25
    drift_residual_rad: float = 0.8
    low_snr_db: float = 6.0
    low_snr_fixes: int = 3
    stale_fixes: int = 5
    window: int = 20

    def __post_init__(self):
        if not 0.0 < self.outage_missing_fraction <= 1.0:
            raise ConfigurationError(
                "outage_missing_fraction must be in (0, 1]"
            )
        if self.drift_residual_rad <= 0:
            raise ConfigurationError("drift_residual_rad must be > 0")
        if self.low_snr_fixes < 1 or self.stale_fixes < 1:
            raise ConfigurationError("streak lengths must be >= 1")
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")


@dataclass(frozen=True)
class AnomalyEvent:
    """One structured anomaly.

    Attributes:
        kind: one of :data:`ANOMALY_KINDS`.
        anchor: name of the affected anchor.
        fix_index: fix at which the condition was detected.
        value: the measured quantity that tripped the detector.
        threshold: the trip point it crossed.
        message: human-readable one-liner.
    """

    kind: str
    anchor: str
    fix_index: int
    value: float
    threshold: float
    message: str


@dataclass
class _AnchorState:
    """Rolling per-anchor accumulators (internal)."""

    snr_db: Deque[float]
    coverage: Deque[float]
    residual_rad: Deque[float]
    low_snr_streak: int = 0
    stale_streak: int = 0
    active: Dict[str, bool] = field(
        default_factory=lambda: {kind: False for kind in ANOMALY_KINDS}
    )


class AnchorHealthMonitor:
    """Folds per-fix diagnostics into per-anchor health state.

    Args:
        thresholds: detector trip points.
        observer: where gauges/counters go; resolved from
            :func:`~repro.obs.context.get_observer` at each ``observe()``
            when omitted, so the monitor works under ``observed()``
            blocks without being rebuilt.

    Attributes:
        events: every anomaly fired so far, detection order.
    """

    def __init__(
        self,
        thresholds: HealthThresholds = HealthThresholds(),
        observer: Optional[Observability] = None,
    ):
        self.thresholds = thresholds
        self.events: List[AnomalyEvent] = []
        self._observer = observer
        self._anchors: Dict[str, _AnchorState] = {}
        self._fixes_seen = 0

    # -- internals --------------------------------------------------------

    def _state(self, name: str) -> _AnchorState:
        state = self._anchors.get(name)
        if state is None:
            window = self.thresholds.window
            state = _AnchorState(
                snr_db=deque(maxlen=window),
                coverage=deque(maxlen=window),
                residual_rad=deque(maxlen=window),
            )
            self._anchors[name] = state
        return state

    def _resolve_observer(self) -> Optional[Observability]:
        observer = (
            self._observer if self._observer is not None else get_observer()
        )
        return observer if observer.enabled else None

    def _transition(
        self,
        state: _AnchorState,
        kind: str,
        condition: bool,
        anchor: str,
        fix_index: int,
        value: float,
        threshold: float,
        message: str,
        observer: Optional[Observability],
    ) -> Optional[AnomalyEvent]:
        """Edge-trigger one detector; returns the event when it fires."""
        was_active = state.active[kind]
        state.active[kind] = condition
        if not condition or was_active:
            return None
        event = AnomalyEvent(
            kind=kind,
            anchor=anchor,
            fix_index=fix_index,
            value=float(value),
            threshold=float(threshold),
            message=message,
        )
        self.events.append(event)
        if observer is not None:
            observer.metrics.counter(f"health.anomalies.{kind}").inc()
        return event

    # -- public API -------------------------------------------------------

    def observe(
        self, diag: FixDiagnostics, fix_index: int
    ) -> List[AnomalyEvent]:
        """Fold one fix's diagnostics in; returns newly fired events.

        Call in fix order -- the streak detectors (low SNR, staleness)
        count *consecutive* fixes.
        """
        thresholds = self.thresholds
        observer = self._resolve_observer()
        fired: List[AnomalyEvent] = []
        self._fixes_seen += 1
        bq = diag.band_quality
        corr = diag.correction
        anchor_snr = bq.anchor_snr_db() if bq is not None else None
        anchor_cov = bq.coverage() if bq is not None else None
        for i, name in enumerate(diag.anchor_names):
            state = self._state(name)
            # -- band outage / staleness (need band quality) --------------
            if bq is not None:
                coverage = float(anchor_cov[i])
                missing_fraction = 1.0 - coverage
                state.coverage.append(coverage)
                missing_bands = np.flatnonzero(bq.missing[i])
                event = self._transition(
                    state,
                    "band_outage",
                    missing_fraction >= thresholds.outage_missing_fraction,
                    name,
                    fix_index,
                    missing_fraction,
                    thresholds.outage_missing_fraction,
                    f"{name}: {missing_bands.size}/{diag.num_bands} bands "
                    f"unusable (bands {missing_bands.tolist()})",
                    observer,
                )
                if event:
                    fired.append(event)
                state.stale_streak = (
                    state.stale_streak + 1 if coverage <= 0.0 else 0
                )
                event = self._transition(
                    state,
                    "stale_anchor",
                    state.stale_streak >= thresholds.stale_fixes,
                    name,
                    fix_index,
                    float(state.stale_streak),
                    float(thresholds.stale_fixes),
                    f"{name}: no usable bands for "
                    f"{state.stale_streak} consecutive fixes",
                    observer,
                )
                if event:
                    fired.append(event)
                # -- sustained low SNR --------------------------------
                snr = float(anchor_snr[i])
                if np.isfinite(snr):
                    state.snr_db.append(snr)
                low = np.isfinite(snr) and snr < thresholds.low_snr_db
                state.low_snr_streak = (
                    state.low_snr_streak + 1 if low else 0
                )
                event = self._transition(
                    state,
                    "low_snr",
                    state.low_snr_streak >= thresholds.low_snr_fixes,
                    name,
                    fix_index,
                    snr,
                    thresholds.low_snr_db,
                    f"{name}: median demod SNR {snr:.1f} dB below "
                    f"{thresholds.low_snr_db:.1f} dB for "
                    f"{state.low_snr_streak} consecutive fixes",
                    observer,
                )
                if event:
                    fired.append(event)
            # -- phase-offset drift (needs correction diagnostics) --------
            if corr is not None:
                residual = float(corr.residual_rms_rad[i])
                state.residual_rad.append(residual)
                event = self._transition(
                    state,
                    "phase_offset_drift",
                    residual > thresholds.drift_residual_rad,
                    name,
                    fix_index,
                    residual,
                    thresholds.drift_residual_rad,
                    f"{name}: Eq. 10 residual phase {residual:.2f} rad "
                    f"exceeds {thresholds.drift_residual_rad:.2f} rad",
                    observer,
                )
                if event:
                    fired.append(event)
            if observer is not None:
                self._export_gauges(observer, name, state)
        return fired

    def _export_gauges(
        self, observer: Observability, name: str, state: _AnchorState
    ) -> None:
        """Refresh the rolling-mean gauges for one anchor."""
        metrics = observer.metrics
        if state.snr_db:
            metrics.gauge(f"health.anchor.{name}.snr_db").set(
                float(np.mean(state.snr_db))
            )
        if state.coverage:
            metrics.gauge(f"health.anchor.{name}.band_coverage").set(
                float(np.mean(state.coverage))
            )
        if state.residual_rad:
            metrics.gauge(f"health.anchor.{name}.residual_phase_rad").set(
                float(np.mean(state.residual_rad))
            )

    def events_for(
        self, kind: Optional[str] = None, anchor: Optional[str] = None
    ) -> List[AnomalyEvent]:
        """Filter fired events by kind and/or anchor name."""
        return [
            e
            for e in self.events
            if (kind is None or e.kind == kind)
            and (anchor is None or e.anchor == anchor)
        ]

    def summary_rows(self) -> List[List[str]]:
        """Per-anchor table rows (anchor, fixes, snr, coverage, residual,
        anomalies) for reports."""
        rows = []
        for name, state in self._anchors.items():
            anomalies = len([e for e in self.events if e.anchor == name])
            rows.append(
                [
                    name,
                    str(max(len(state.coverage), len(state.residual_rad))),
                    f"{np.mean(state.snr_db):.1f}" if state.snr_db else "-",
                    (
                        f"{np.mean(state.coverage):.2f}"
                        if state.coverage
                        else "-"
                    ),
                    (
                        f"{np.mean(state.residual_rad):.3f}"
                        if state.residual_rad
                        else "-"
                    ),
                    str(anomalies),
                ]
            )
        return rows
