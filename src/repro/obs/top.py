"""`repro obs top`: a live terminal dashboard over the access log.

Tails the service's NDJSON access log (rotation-aware: when
``access.ndjson`` is renamed to ``access.ndjson.1`` mid-tail, the
tailer reopens the fresh file without losing its place) and renders a
periodically refreshed frame of request-level health:

* RPS and error rate over a sliding window;
* per-provider share -- how often BLoc answered versus the AoA/RSSI
  fallbacks (the service's graceful-degradation signal);
* latency quantiles (p50/p95/p99) over the window, plus the slowest
  request's ``trace_id`` so the operator can jump straight to
  ``repro obs trace <id>``;
* optionally, live ``/v1/stats`` -- batcher occupancy, steering-cache
  hit ratio, pool warmth -- when given the service URL.

The frame builder and renderer are pure functions over parsed records,
so tests drive them without a terminal or a server; only
:func:`run_top` touches the clock, the filesystem and stdout.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

import numpy as np

#: ANSI clear-screen + cursor-home, printed between live frames.
CLEAR = "\x1b[2J\x1b[H"


def read_access_records(path: Union[str, Path]) -> List[dict]:
    """Parse every well-formed NDJSON line of an access log.

    Malformed lines (a torn write at rotation time, a truncated tail)
    are skipped, not fatal -- a dashboard must keep rendering.
    """
    records: List[dict] = []
    log_path = Path(path)
    if not log_path.exists():
        return records
    with log_path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


class AccessLogTail:
    """Incremental reader of a size-rotated NDJSON access log.

    ``poll()`` returns the records appended since the previous poll.
    Rotation is detected by the file shrinking (the service renames the
    full file to ``<path>.1`` and starts a fresh one); on detection the
    reader finishes nothing from the old generation (its tail was read
    on earlier polls) and restarts at the top of the new file.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._offset = 0

    def poll(self) -> List[dict]:
        """Records appended since the last poll (rotation-aware)."""
        if not self.path.exists():
            return []
        size = self.path.stat().st_size
        if size < self._offset:
            self._offset = 0  # rotated: a fresh, smaller file
        records: List[dict] = []
        with self.path.open("r", encoding="utf-8") as fh:
            fh.seek(self._offset)
            for line in fh:
                if not line.endswith("\n"):
                    break  # torn tail: re-read on the next poll
                self._offset += len(line.encode("utf-8"))
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
        return records


@dataclass
class TopFrame:
    """One rendered dashboard tick, computed from windowed records.

    Attributes:
        window_s: sliding-window length the rates cover.
        requests: requests inside the window.
        rps: requests per second over the window.
        error_rate: non-2xx share of windowed requests (0..1).
        statuses / providers: windowed counts by status / provider.
        fallback_rate: non-``bloc`` share of windowed 200s (0..1).
        latency_ms: p50/p95/p99 over the window, in milliseconds.
        slowest_trace_id / slowest_latency_ms: the window's worst
            request, for ``repro obs trace``.
        stats: live ``/v1/stats`` payload when polled, else None.
    """

    window_s: float
    requests: int = 0
    rps: float = 0.0
    error_rate: float = 0.0
    statuses: Dict[str, int] = field(default_factory=dict)
    providers: Dict[str, int] = field(default_factory=dict)
    fallback_rate: float = 0.0
    latency_ms: Dict[str, float] = field(default_factory=dict)
    slowest_trace_id: str = ""
    slowest_latency_ms: float = 0.0
    stats: Optional[dict] = None


def build_frame(
    records: List[dict],
    window_s: float = 60.0,
    now: Optional[float] = None,
    stats: Optional[dict] = None,
) -> TopFrame:
    """Compute one dashboard frame from access-log records.

    ``now`` anchors the sliding window; omitted, it defaults to the
    newest record's timestamp (so rendering a historical log shows its
    final window rather than an empty one).
    """
    frame = TopFrame(window_s=window_s, stats=stats)
    stamped = [
        r for r in records if isinstance(r.get("ts"), (int, float))
    ]
    if not stamped:
        return frame
    if now is None:
        now = max(float(r["ts"]) for r in stamped)
    windowed = [
        r
        for r in stamped
        if now - window_s <= float(r["ts"]) <= now
    ]
    if not windowed:
        return frame
    frame.requests = len(windowed)
    span = min(window_s, max(now - min(float(r["ts"]) for r in windowed), 1e-9))
    frame.rps = frame.requests / max(span, 1.0)
    errors = 0
    latencies: List[float] = []
    slowest = (0.0, "")
    for record in windowed:
        status = str(record.get("status", "?"))
        frame.statuses[status] = frame.statuses.get(status, 0) + 1
        if not status.startswith("2"):
            errors += 1
        provider = record.get("provider")
        if provider:
            frame.providers[provider] = (
                frame.providers.get(provider, 0) + 1
            )
        latency = record.get("latency_s")
        if isinstance(latency, (int, float)):
            latencies.append(float(latency))
            if float(latency) > slowest[0]:
                slowest = (
                    float(latency),
                    str(record.get("trace_id") or ""),
                )
    frame.error_rate = errors / frame.requests
    served = sum(frame.providers.values())
    if served:
        frame.fallback_rate = (
            served - frame.providers.get("bloc", 0)
        ) / served
    if latencies:
        quantiles = np.percentile(np.array(latencies), [50, 95, 99])
        frame.latency_ms = {
            "p50": float(quantiles[0]) * 1e3,
            "p95": float(quantiles[1]) * 1e3,
            "p99": float(quantiles[2]) * 1e3,
        }
    frame.slowest_latency_ms = slowest[0] * 1e3
    frame.slowest_trace_id = slowest[1]
    return frame


def _share_bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_frame(frame: TopFrame) -> str:
    """Text rendering of one frame (pure; no ANSI control codes)."""
    lines = [
        f"repro obs top -- window {frame.window_s:.0f}s",
        (
            f"requests {frame.requests:6d}   rps {frame.rps:8.2f}   "
            f"errors {frame.error_rate * 100:5.1f}%   "
            f"fallback {frame.fallback_rate * 100:5.1f}%"
        ),
    ]
    if frame.latency_ms:
        lines.append(
            "latency ms  p50 {p50:8.2f}  p95 {p95:8.2f}  "
            "p99 {p99:8.2f}".format(**frame.latency_ms)
        )
    if frame.slowest_trace_id:
        lines.append(
            f"slowest  {frame.slowest_latency_ms:8.2f} ms  "
            f"trace {frame.slowest_trace_id}"
        )
    if frame.statuses:
        shown = "  ".join(
            f"{status}:{count}"
            for status, count in sorted(frame.statuses.items())
        )
        lines.append(f"statuses  {shown}")
    total_served = sum(frame.providers.values())
    for provider in sorted(frame.providers):
        share = frame.providers[provider] / total_served
        lines.append(
            f"  {provider:<6} {_share_bar(share)} "
            f"{share * 100:5.1f}% ({frame.providers[provider]})"
        )
    stats = frame.stats or {}
    cache = stats.get("cache")
    if cache:
        ratio = cache.get("hit_ratio")
        shown_ratio = (
            f"{ratio * 100:.1f}%" if ratio is not None else "n/a"
        )
        lines.append(
            f"cache  hit ratio {shown_ratio}  "
            f"({cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses, "
            f"{cache.get('entries', 0)} entries)"
        )
    warmth = (stats.get("pool") or {}).get("warmth")
    if warmth:
        shown = "  ".join(
            f"{name}:{'warm' if built else 'cold'}"
            for name, built in sorted(warmth.items())
        )
        lines.append(f"pool   {shown}")
    batchers = stats.get("batchers") or {}
    for name in sorted(batchers):
        info = batchers[name]
        mean_batch = info.get("mean_batch")
        occupancy = (
            f"{mean_batch:.2f}" if mean_batch is not None else "n/a"
        )
        lines.append(
            f"batch  {name}: occupancy {occupancy}/"
            f"{info.get('max_batch', '?')}  "
            f"depth {info.get('queue_depth', 0)}  "
            f"batches {info.get('batches_total', 0)}"
        )
    return "\n".join(lines)


def fetch_stats(url: str, timeout_s: float = 2.0) -> Optional[dict]:
    """Best-effort ``GET <url>/v1/stats``; None when unreachable."""
    try:
        with urllib.request.urlopen(
            url.rstrip("/") + "/v1/stats", timeout=timeout_s
        ) as response:
            payload = json.loads(response.read().decode("utf-8"))
            return payload if isinstance(payload, dict) else None
    except (OSError, ValueError):
        return None


def run_top(
    access_log: Union[str, Path],
    url: Optional[str] = None,
    window_s: float = 60.0,
    interval_s: float = 1.0,
    frames: Optional[int] = None,
    out: Optional[IO[str]] = None,
    clear: bool = True,
) -> int:
    """Render the dashboard until interrupted (or for ``frames`` ticks).

    Returns the number of frames rendered.  ``frames=1`` with
    ``clear=False`` is the scripting/CI mode (``repro obs top --once``).
    """
    stream = out if out is not None else sys.stdout
    tail = AccessLogTail(access_log)
    records: List[dict] = read_access_records(
        Path(str(access_log) + ".1")
    )
    rendered = 0
    try:
        while frames is None or rendered < frames:
            records.extend(tail.poll())
            live = frames is None or frames > 1
            if live:
                # Live mode anchors the window on the wall clock and
                # prunes aged-out records; one-shot mode keeps
                # everything and anchors on the newest record, so a
                # historical log renders its final window.
                horizon = time.time() - 2 * window_s
                records = [
                    r
                    for r in records
                    if isinstance(r.get("ts"), (int, float))
                    and float(r["ts"]) >= horizon
                ]
            stats = fetch_stats(url) if url else None
            now = time.time() if live else None
            frame = build_frame(
                records, window_s=window_s, now=now, stats=stats
            )
            if clear:
                stream.write(CLEAR)
            stream.write(render_frame(frame) + "\n")
            stream.flush()
            rendered += 1
            if frames is not None and rendered >= frames:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return rendered
