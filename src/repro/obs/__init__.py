"""repro.obs: pipeline observability (spans, metrics, exporters).

The BLoc pipeline is instrumented with nested timing spans and a metrics
registry so a regression in any figure can be attributed to a stage:

    from repro.obs import observed, export_ndjson, summary

    with observed() as obs:
        run = evaluate(BlocLocalizer(), dataset)
    export_ndjson("run.ndjson", obs)
    print(summary(obs))

By default observability is *disabled*: the instrumented code paths go
through a no-op observer whose cost is a couple of attribute reads per
``locate`` call, so timing-sensitive tests and benchmarks are unaffected
unless a caller opts in.
"""

from repro.obs.context import (
    Observability,
    STANDARD_METRICS,
    get_observer,
    install,
    observed,
    traced,
)
from repro.obs.diag import (
    FixBundle,
    FixDiagnostics,
    FixDiagnosticsBuilder,
    bundle_filename,
    bundle_from_fix,
    load_fix_bundle,
    render_bundle,
    save_fix_bundle,
)
from repro.obs.export import (
    export_folded,
    export_ndjson,
    export_speedscope,
    folded_stacks,
    format_table,
    load_ndjson,
    metrics_summary,
    render_trace,
    resolve_trace_id,
    span_summary,
    speedscope_document,
    summary,
    trace_spans,
)
from repro.obs.health import (
    AnchorHealthMonitor,
    AnomalyEvent,
    HealthThresholds,
)
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    build_run_record,
    default_ledger_path,
    diff_records,
    fingerprint_of,
    render_diff,
    render_report,
    render_runs,
    span_quantiles,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.prof import ProfileReport, SamplingProfiler
from repro.obs.promexport import (
    OPENMETRICS_CONTENT_TYPE,
    exemplar_trace_ids,
    parse_exposition,
    render_openmetrics,
)
from repro.obs.slo import (
    SloResult,
    SloRule,
    SloSpec,
    evaluate_slos,
    load_slo_spec,
    render_slo_results,
    slo_exit_code,
)
from repro.obs.top import (
    AccessLogTail,
    TopFrame,
    build_frame,
    read_access_records,
    render_frame,
    run_top,
)
from repro.obs.trace import (
    Span,
    SpanHandle,
    TraceContext,
    Tracer,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)

__all__ = [
    "AccessLogTail",
    "AnchorHealthMonitor",
    "AnomalyEvent",
    "COUNT_BUCKETS",
    "Counter",
    "Exemplar",
    "FixBundle",
    "FixDiagnostics",
    "FixDiagnosticsBuilder",
    "Gauge",
    "HealthThresholds",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "OPENMETRICS_CONTENT_TYPE",
    "Observability",
    "ProfileReport",
    "RunLedger",
    "RunRecord",
    "STANDARD_METRICS",
    "SamplingProfiler",
    "SloResult",
    "SloRule",
    "SloSpec",
    "Span",
    "SpanHandle",
    "TopFrame",
    "TraceContext",
    "Tracer",
    "build_frame",
    "build_run_record",
    "bundle_filename",
    "bundle_from_fix",
    "default_ledger_path",
    "diff_records",
    "evaluate_slos",
    "exemplar_trace_ids",
    "export_folded",
    "export_ndjson",
    "export_speedscope",
    "fingerprint_of",
    "folded_stacks",
    "format_table",
    "format_traceparent",
    "get_observer",
    "install",
    "load_fix_bundle",
    "load_ndjson",
    "load_slo_spec",
    "metrics_summary",
    "new_trace_id",
    "observed",
    "parse_exposition",
    "parse_traceparent",
    "read_access_records",
    "render_bundle",
    "render_diff",
    "render_frame",
    "render_openmetrics",
    "render_report",
    "render_runs",
    "render_slo_results",
    "render_trace",
    "resolve_trace_id",
    "run_top",
    "save_fix_bundle",
    "slo_exit_code",
    "span_quantiles",
    "span_summary",
    "speedscope_document",
    "summary",
    "trace_spans",
    "traced",
]
