"""repro.obs: pipeline observability (spans, metrics, exporters).

The BLoc pipeline is instrumented with nested timing spans and a metrics
registry so a regression in any figure can be attributed to a stage:

    from repro.obs import observed, export_ndjson, summary

    with observed() as obs:
        run = evaluate(BlocLocalizer(), dataset)
    export_ndjson("run.ndjson", obs)
    print(summary(obs))

By default observability is *disabled*: the instrumented code paths go
through a no-op observer whose cost is a couple of attribute reads per
``locate`` call, so timing-sensitive tests and benchmarks are unaffected
unless a caller opts in.
"""

from repro.obs.context import (
    Observability,
    STANDARD_METRICS,
    get_observer,
    install,
    observed,
    traced,
)
from repro.obs.export import (
    export_ndjson,
    load_ndjson,
    metrics_summary,
    span_summary,
    summary,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "Observability",
    "STANDARD_METRICS",
    "Span",
    "Tracer",
    "export_ndjson",
    "get_observer",
    "install",
    "load_ndjson",
    "metrics_summary",
    "observed",
    "span_summary",
    "summary",
    "traced",
]
