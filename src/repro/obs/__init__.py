"""repro.obs: pipeline observability (spans, metrics, exporters).

The BLoc pipeline is instrumented with nested timing spans and a metrics
registry so a regression in any figure can be attributed to a stage:

    from repro.obs import observed, export_ndjson, summary

    with observed() as obs:
        run = evaluate(BlocLocalizer(), dataset)
    export_ndjson("run.ndjson", obs)
    print(summary(obs))

By default observability is *disabled*: the instrumented code paths go
through a no-op observer whose cost is a couple of attribute reads per
``locate`` call, so timing-sensitive tests and benchmarks are unaffected
unless a caller opts in.
"""

from repro.obs.context import (
    Observability,
    STANDARD_METRICS,
    get_observer,
    install,
    observed,
    traced,
)
from repro.obs.diag import (
    FixBundle,
    FixDiagnostics,
    FixDiagnosticsBuilder,
    bundle_filename,
    bundle_from_fix,
    load_fix_bundle,
    render_bundle,
    save_fix_bundle,
)
from repro.obs.export import (
    export_folded,
    export_ndjson,
    export_speedscope,
    folded_stacks,
    format_table,
    load_ndjson,
    metrics_summary,
    span_summary,
    speedscope_document,
    summary,
)
from repro.obs.health import (
    AnchorHealthMonitor,
    AnomalyEvent,
    HealthThresholds,
)
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    build_run_record,
    default_ledger_path,
    diff_records,
    fingerprint_of,
    render_diff,
    render_report,
    render_runs,
    span_quantiles,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.prof import ProfileReport, SamplingProfiler
from repro.obs.slo import (
    SloResult,
    SloRule,
    SloSpec,
    evaluate_slos,
    load_slo_spec,
    render_slo_results,
    slo_exit_code,
)
from repro.obs.trace import Span, SpanHandle, Tracer

__all__ = [
    "AnchorHealthMonitor",
    "AnomalyEvent",
    "COUNT_BUCKETS",
    "Counter",
    "FixBundle",
    "FixDiagnostics",
    "FixDiagnosticsBuilder",
    "Gauge",
    "HealthThresholds",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "Observability",
    "ProfileReport",
    "RunLedger",
    "RunRecord",
    "STANDARD_METRICS",
    "SamplingProfiler",
    "SloResult",
    "SloRule",
    "SloSpec",
    "Span",
    "SpanHandle",
    "Tracer",
    "build_run_record",
    "bundle_filename",
    "bundle_from_fix",
    "default_ledger_path",
    "diff_records",
    "evaluate_slos",
    "export_folded",
    "export_ndjson",
    "export_speedscope",
    "fingerprint_of",
    "folded_stacks",
    "format_table",
    "get_observer",
    "install",
    "load_fix_bundle",
    "load_ndjson",
    "load_slo_spec",
    "metrics_summary",
    "observed",
    "render_bundle",
    "render_diff",
    "render_report",
    "render_runs",
    "render_slo_results",
    "save_fix_bundle",
    "slo_exit_code",
    "span_quantiles",
    "span_summary",
    "speedscope_document",
    "summary",
    "traced",
]
