"""Exporters: NDJSON dumps and human-readable summary tables.

NDJSON schema (one JSON object per line, strict JSON -- no NaN/Inf):

* ``{"type": "meta", "format": "repro-obs", "version": 1, ...}`` --
  always the first line.
* ``{"type": "span", "name", "span_id", "parent_id", "depth",
  "start_s", "duration_s", "status", "thread", "trace_id",
  "attributes"}`` -- one per finished span, completion order.
* counter / gauge / histogram lines exactly as produced by
  :meth:`repro.obs.metrics.MetricsRegistry.snapshot` (histograms carry
  ``count/sum/min/max/mean/p50/p95`` plus the full ``le`` bucket list).

The summary tables are what ``repro evaluate --metrics`` and the
benchmark hook print: per-span-name timing percentiles (computed from
the raw span durations, not bucket estimates) and one line per
instrument.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.obs.context import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.prof import ProfileReport

NDJSON_FORMAT = "repro-obs"
NDJSON_VERSION = 1


def _finite_or_marker(v: float):
    """Strict-JSON stand-in for a float: NaN -> None (an absent value),
    +/-Inf -> "Infinity"/"-Infinity" strings (the *direction* of an
    overflow is diagnostic signal -- an SNR of -Inf and +Inf tell very
    different stories -- so it must survive the export)."""
    if math.isfinite(v):
        return v
    if math.isnan(v):
        return None
    return "Infinity" if v > 0 else "-Infinity"


def _json_safe(value):
    """Make a value strict-JSON serialisable (NaN/Inf become None/str).

    Handles numpy scalars and arrays nested anywhere inside span
    attributes: bools/ints/floats unwrap to their Python equivalents,
    complex values become ``{"real": ..., "imag": ...}`` pairs, and
    arrays become (nested) lists -- so diagnostics-rich spans never leak
    ``str(ndarray)`` junk or non-JSON floats into an NDJSON export.
    NaN maps to null; +/-Inf map to the strings "Infinity"/"-Infinity"
    (``json.dumps(..., allow_nan=False)`` downstream stays happy).
    """
    # np.bool_ is not a bool subclass; check it before the plain types.
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        return _finite_or_marker(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return _finite_or_marker(float(value))
    if isinstance(value, (complex, np.complexfloating)):
        c = complex(value)
        return {"real": _json_safe(c.real), "imag": _json_safe(c.imag)}
    if isinstance(value, np.ndarray):
        # tolist() gives a bare scalar for 0-d arrays; recurse either way.
        return _json_safe(value.tolist())
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return str(value)


def span_record(span: Span) -> dict:
    """The NDJSON dict for one finished span."""
    return {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "depth": span.depth,
        "start_s": _json_safe(span.start_s),
        "duration_s": _json_safe(span.duration_s),
        "status": span.status,
        "thread": span.thread,
        "trace_id": span.trace_id,
        "attributes": _json_safe(span.attributes),
    }


def export_ndjson(
    path: Union[str, Path], observer: Observability, **meta
) -> int:
    """Write an observer's spans and metrics to an NDJSON file.

    Returns:
        The number of lines written (including the leading meta line).
    """
    spans = observer.tracer.finished()
    metric_lines = observer.metrics.snapshot()
    records: List[dict] = [
        {
            "type": "meta",
            "format": NDJSON_FORMAT,
            "version": NDJSON_VERSION,
            "num_spans": len(spans),
            "num_metrics": len(metric_lines),
            **_json_safe(meta),
        }
    ]
    records.extend(span_record(s) for s in spans)
    records.extend(_json_safe(m) for m in metric_lines)
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, allow_nan=False) + "\n")
    return len(records)


def load_ndjson(path: Union[str, Path]) -> List[dict]:
    """Parse an NDJSON export back into a list of dicts.

    Raises:
        ValueError: on a malformed file (bad JSON or missing meta line).
    """
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {exc}"
                ) from exc
    if not records or records[0].get("type") != "meta":
        raise ValueError(f"{path}: missing leading meta record")
    return records


def format_table(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    """Fixed-width text table (first column left-aligned, rest right).

    Shared by the metrics/span summaries and the ``repro diag`` renderer.
    """
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells):
        return "  ".join(
            str(c).ljust(w) if i == 0 else str(c).rjust(w)
            for i, (c, w) in enumerate(zip(cells, widths))
        )
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def span_summary(spans: Sequence[Span]) -> str:
    """Per-span-name timing table (count, total, mean, p50, p95 in ms)."""
    if not spans:
        return "(no spans recorded)"
    by_name: Dict[str, List[float]] = {}
    order: List[str] = []
    for span in spans:
        if span.name not in by_name:
            by_name[span.name] = []
            order.append(span.name)
        if math.isfinite(span.duration_s):
            by_name[span.name].append(span.duration_s)
    rows = []
    for name in order:
        durations = np.array(by_name[name]) * 1e3
        if durations.size == 0:
            continue
        rows.append(
            [
                name,
                str(durations.size),
                f"{durations.sum():.2f}",
                f"{durations.mean():.3f}",
                f"{np.percentile(durations, 50):.3f}",
                f"{np.percentile(durations, 95):.3f}",
            ]
        )
    return format_table(
        ["span", "count", "total ms", "mean ms", "p50 ms", "p95 ms"], rows
    )


def metrics_summary(registry: MetricsRegistry) -> str:
    """One line per instrument; histograms show count/mean/p50/p95."""
    instruments = registry.instruments()
    if not instruments:
        return "(no metrics recorded)"
    rows = []
    for inst in instruments:
        if inst.kind == "counter":
            rows.append([inst.name, "counter", f"{inst.value:g}", "", "", ""])
        elif inst.kind == "gauge":
            shown = "nan" if math.isnan(inst.value) else f"{inst.value:.4g}"
            rows.append([inst.name, "gauge", shown, "", "", ""])
        else:
            if inst.count:
                rows.append(
                    [
                        inst.name,
                        "histogram",
                        str(inst.count),
                        f"{inst.mean():.4g}",
                        f"{inst.percentile(50):.4g}",
                        f"{inst.percentile(95):.4g}",
                    ]
                )
            else:
                rows.append([inst.name, "histogram", "0", "-", "-", "-"])
    return format_table(
        ["metric", "kind", "value/count", "mean", "p50", "p95"], rows
    )


def summary(observer: Observability) -> str:
    """Combined span + metrics report for one observed run."""
    parts = [
        "== span timings ==",
        span_summary(observer.tracer.finished()),
        "",
        "== metrics ==",
        metrics_summary(observer.metrics),
    ]
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Trace reconstruction (repro obs trace <trace_id>)
# ---------------------------------------------------------------------------


def resolve_trace_id(records: Sequence[dict], prefix: str) -> str:
    """Resolve a (possibly abbreviated) trace id against an export.

    An exact match wins; otherwise a unique prefix match is accepted, so
    ``repro obs trace 3f2a`` works on the ids a dashboard shows
    truncated.

    Raises:
        ValueError: when no span matches or the prefix is ambiguous.
    """
    ids = {
        r["trace_id"]
        for r in records
        if r.get("type") == "span" and r.get("trace_id")
    }
    if prefix in ids:
        return prefix
    hits = sorted(i for i in ids if i.startswith(prefix))
    if len(hits) == 1:
        return hits[0]
    if not hits:
        raise ValueError(f"no span with trace id {prefix!r} in export")
    shown = ", ".join(h[:12] for h in hits[:5])
    raise ValueError(
        f"trace id prefix {prefix!r} is ambiguous ({shown}...)"
    )


def trace_spans(records: Sequence[dict], trace_id: str) -> List[dict]:
    """Span records belonging to one trace, plus linked batch subtrees.

    Selects every span whose ``trace_id`` matches, then follows span
    *links*: a micro-batch span executed on behalf of several requests
    carries their trace ids in a ``member_trace_ids`` attribute, so the
    batch span -- and its whole subtree (the ``locate_batch`` stages,
    including absorbed process-worker spans) -- is grafted into each
    member's reconstruction even though it lives on its own trace.
    """
    spans = [r for r in records if r.get("type") == "span"]
    selected: Dict[int, dict] = {
        r["span_id"]: r for r in spans if r.get("trace_id") == trace_id
    }
    children: Dict[int, List[dict]] = {}
    for r in spans:
        parent = r.get("parent_id")
        if parent is not None:
            children.setdefault(parent, []).append(r)
    queue = [
        r
        for r in spans
        if r["span_id"] not in selected
        and trace_id
        in ((r.get("attributes") or {}).get("member_trace_ids") or [])
    ]
    while queue:
        r = queue.pop()
        if r["span_id"] in selected:
            continue
        selected[r["span_id"]] = r
        queue.extend(children.get(r["span_id"], []))
    return list(selected.values())


def _span_sort_key(record: dict) -> Tuple[float, int]:
    start = record.get("start_s")
    if not isinstance(start, (int, float)):
        start = float("inf")
    return (start, record.get("span_id", 0))


def render_trace(records: Sequence[dict], trace_id: str) -> str:
    """Text tree of one request's spans from an NDJSON export.

    Spans of the trace itself nest by ``parent_id``; linked batch
    subtrees (see :func:`trace_spans`) appear under their own roots
    marked with the trace they ran on.  Cross-thread and cross-process
    children show the thread name that ran them.
    """
    selected = trace_spans(records, trace_id)
    if not selected:
        return f"(no spans for trace {trace_id})"
    by_id = {r["span_id"]: r for r in selected}
    children: Dict[int, List[dict]] = {}
    roots: List[dict] = []
    for r in selected:
        parent = r.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(r)
        else:
            roots.append(r)
    for siblings in children.values():
        siblings.sort(key=_span_sort_key)
    roots.sort(key=_span_sort_key)

    def describe(r: dict) -> str:
        duration = r.get("duration_s")
        if isinstance(duration, (int, float)):
            timing = f"{duration * 1e3:.2f} ms"
        else:
            timing = "-"
        parts = [r.get("name", "?"), timing, str(r.get("status", "?"))]
        thread = r.get("thread")
        if thread:
            parts.append(f"[{thread}]")
        attributes = r.get("attributes") or {}
        shown = []
        for key in sorted(attributes):
            if key == "member_trace_ids":
                continue
            value = attributes[key]
            if isinstance(value, (list, dict)):
                continue
            shown.append(f"{key}={value}")
        if shown:
            text = " ".join(shown)
            if len(text) > 72:
                text = text[:69] + "..."
            parts.append(text)
        if r.get("trace_id") and r["trace_id"] != trace_id:
            parent = r.get("parent_id")
            if parent is None or parent not in by_id:
                parts.append(f"(linked trace {r['trace_id'][:12]})")
        return "  ".join(parts)

    threads = {r.get("thread") for r in selected if r.get("thread")}
    lines = [
        f"trace {trace_id}: {len(selected)} spans, "
        f"{len(threads)} thread(s)"
    ]

    def walk(r: dict, prefix: str, is_last: bool) -> None:
        connector = "`- " if is_last else "|- "
        lines.append(prefix + connector + describe(r))
        child_prefix = prefix + ("   " if is_last else "|  ")
        kids = children.get(r["span_id"], [])
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Profiler exports (flamegraph / speedscope)
# ---------------------------------------------------------------------------

#: JSON schema URL speedscope uses to recognise its file format.
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def folded_stacks(report: "ProfileReport") -> str:
    """Brendan-Gregg folded-stack text for one profile report.

    One line per unique span-stack path, ``root;child;leaf <count>``,
    sorted by descending count -- the input format of
    ``flamegraph.pl`` and most flamegraph viewers.
    """
    ranked = sorted(
        report.stacks.items(), key=lambda kv: (-kv[1], kv[0])
    )
    return "\n".join(
        f"{';'.join(stack)} {count}" for stack, count in ranked
    )


def export_folded(path: Union[str, Path], report: "ProfileReport") -> int:
    """Write folded-stack flamegraph text; returns the line count."""
    text = folded_stacks(report)
    Path(path).write_text(
        text + ("\n" if text else ""), encoding="utf-8"
    )
    return len(report.stacks)


def speedscope_document(
    report: "ProfileReport", name: str = "repro"
) -> dict:
    """A speedscope-compatible ``sampled`` profile document.

    Each unique stack becomes one sample whose weight is
    ``count * interval_s`` seconds; frame order is root-first, matching
    speedscope's convention.  The document is strict JSON (no NaN/Inf)
    and loads directly at https://www.speedscope.app.
    """
    frame_index: Dict[str, int] = {}
    frames: List[dict] = []
    samples: List[List[int]] = []
    weights: List[float] = []
    ranked = sorted(
        report.stacks.items(), key=lambda kv: (-kv[1], kv[0])
    )
    for stack, count in ranked:
        indices = []
        for frame_name in stack:
            if frame_name not in frame_index:
                frame_index[frame_name] = len(frames)
                frames.append({"name": frame_name})
            indices.append(frame_index[frame_name])
        samples.append(indices)
        weights.append(count * report.interval_s)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": _json_safe(sum(weights)),
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def export_speedscope(
    path: Union[str, Path], report: "ProfileReport", name: str = "repro"
) -> int:
    """Write a speedscope JSON profile; returns the sample count."""
    document = speedscope_document(report, name=name)
    Path(path).write_text(
        json.dumps(document, allow_nan=False) + "\n", encoding="utf-8"
    )
    return len(document["profiles"][0]["samples"])
