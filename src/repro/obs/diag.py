"""Per-fix signal-chain diagnostics: FixDiagnostics and fix bundles.

A localization fix that lands two metres off is useless to debug from
its error number alone: the damage could have happened at demodulation
(one anchor's SNR collapsed), at the Eq. 10 correction (oscillator drift
left a non-linear cross-band phase), at the likelihood map (a ghost peak
dominated), or at the Eq. 18 score (the direct-path cue picked the wrong
peak).  :class:`FixDiagnostics` captures one compact measurement per
stage so the failing stage is attributable after the fact:

* per-(anchor, band) CSI quality -- demod SNR (measured or estimated),
  amplitude, flatness, missing-band mask (:class:`BandQuality`);
* Eq. 10 residual phase after collaborative cancellation plus
  stitch-continuity at the band seams (:class:`CorrectionDiagnostics`);
* likelihood-map statistics -- entropy, peak-to-mean, top-k peaks
  (:class:`MapDiagnostics`);
* the full Eq. 18 score decomposition per candidate peak
  (:class:`ScoreBreakdown`).

A **fix bundle** serializes the diagnostics *and everything needed to
replay the fix offline* -- raw observations, anchor geometry, the full
pipeline configuration -- into one deterministic ``.npz`` (fixed zip
timestamps, sorted members, a ``meta.json`` member with sorted keys), so
re-saving a loaded bundle is byte-identical and a bundle attached to a
bug report reproduces the original winning peak bit-exactly via
``repro diag <bundle> --explain``.

Import-order note: :mod:`repro.core.localizer` imports this module, and
``repro.core.__init__`` imports the localizer -- so nothing here may
import ``repro.core`` at module level.  The few core helpers used
(``usable_band_mask``, ``linear_phase_residual``, ``shannon_entropy``,
the replay constructors) are imported lazily inside functions, and the
stage hooks are duck-typed against the pipeline objects.
"""

from __future__ import annotations

import io
import json
import re
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.export import _json_safe, format_table

#: Format tag + schema version of the fix-bundle ``meta.json``.
FIX_BUNDLE_FORMAT = "repro-fix-bundle"
FIX_BUNDLE_SCHEMA = 1

#: Fixed zip member timestamp: the earliest the format allows, so bundle
#: bytes depend only on content, never on the wall clock.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


# ---------------------------------------------------------------------------
# Per-stage diagnostics
# ---------------------------------------------------------------------------


@dataclass
class BandQuality:
    """Per-(anchor, band) CSI quality of one fix.

    Attributes:
        source: ``"demod"`` when the SNR came from the demodulator's
            decision statistic (IQ-fidelity measurements), ``"estimate"``
            when it was inferred from the channel amplitudes themselves.
        snr_db: SNR per (anchor, band), shape ``(I, K)``; NaN where the
            band is missing.
        amplitude_db: mean per-band power [dB] over antennas, ``(I, K)``.
        flatness_db: std of ``amplitude_db`` across usable bands per
            anchor, shape ``(I,)`` -- large values flag frequency-
            selective fading or a broken receive chain.
        missing: bool mask of unusable (anchor, band) cells, ``(I, K)``.
    """

    source: str
    snr_db: np.ndarray
    amplitude_db: np.ndarray
    flatness_db: np.ndarray
    missing: np.ndarray

    def coverage(self) -> np.ndarray:
        """Fraction of usable bands per anchor, shape ``(I,)``."""
        return 1.0 - self.missing.mean(axis=1)

    def anchor_snr_db(self) -> np.ndarray:
        """Median SNR over usable bands per anchor (NaN if none usable)."""
        out = np.full(self.snr_db.shape[0], np.nan)
        for i in range(self.snr_db.shape[0]):
            usable = self.snr_db[i][np.isfinite(self.snr_db[i])]
            if usable.size:
                out[i] = float(np.median(usable))
        return out


@dataclass
class CorrectionDiagnostics:
    """How well Eq. 10's collaborative cancellation worked for one fix.

    Attributes:
        residual_rms_rad: RMS deviation of the corrected cross-band
            phase from its linear trend, per anchor, shape ``(I,)``.
        residual_per_band_rad: the same residual RMS'd over antennas
            only, shape ``(I, K)`` -- pinpoints *which* hop drifted.
        seam_jump_rad: stitch-continuity at band seams: deviation of
            each consecutive-band phase step from the anchor's median
            step, RMS over antennas, shape ``(I, K-1)``.
        worst_seam_rad: the largest seam jump anywhere.
        hop_coverage: fraction of (anchor, band) cells with a usable
            tag measurement.
    """

    residual_rms_rad: np.ndarray
    residual_per_band_rad: np.ndarray
    seam_jump_rad: np.ndarray
    worst_seam_rad: float
    hop_coverage: float


@dataclass
class MapDiagnostics:
    """Shape statistics of the combined likelihood map.

    Attributes:
        entropy_nats: Shannon entropy of the normalised map -- low means
            concentrated (confident), high means smeared.
        peak_to_mean: global maximum over map mean; a direct measure of
            how much the winner stood out.
        top_peaks_xy: world coordinates of the strongest candidate
            peaks, shape ``(P, 2)`` (filled once peaks are found).
        top_peak_values: their likelihood values, shape ``(P,)``.
    """

    entropy_nats: float
    peak_to_mean: float
    top_peaks_xy: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 2))
    )
    top_peak_values: np.ndarray = field(default_factory=lambda: np.zeros(0))


@dataclass
class ScoreBreakdown:
    """Eq. 18 decomposition for every candidate peak of one fix.

    Arrays share the candidate order the localizer ranked them in (best
    first by the *active* selection strategy), so index 0 is the chosen
    peak.

    Attributes:
        positions_xy: candidate positions, shape ``(P, 2)``.
        likelihood: the peak likelihood ``p_x`` per candidate.
        entropy_nats: neighbourhood negentropy ``H`` per candidate.
        distance_sum_m: ``sum_i d_i`` per candidate.
        entropy_term: ``exp(b * H)`` per candidate.
        path_term: ``exp(-a * sum_i d_i)`` per candidate.
        score: the combined Eq. 18 score ``s_x`` per candidate.
        margin: relative score margin between the chosen peak and the
            runner-up (1.0 with a single candidate, NaN when the chosen
            score is not positive).
    """

    positions_xy: np.ndarray
    likelihood: np.ndarray
    entropy_nats: np.ndarray
    distance_sum_m: np.ndarray
    entropy_term: np.ndarray
    path_term: np.ndarray
    score: np.ndarray
    margin: float

    @property
    def num_candidates(self) -> int:
        """Number of scored candidate peaks."""
        return int(self.score.size)


#: Pipeline stages a fix can reach, in order; ``stage_reached`` is the
#: last one that completed before the fix finished or failed.
FIX_STAGES = ("observations", "corrected", "likelihood", "scored", "located")


@dataclass
class FixDiagnostics:
    """Everything captured about one fix's signal chain.

    Stage fields fill in as the pipeline progresses; a fix that failed
    mid-way carries the stages it completed plus ``stage_reached``
    naming the last one, so a failure bundle still shows *where* the
    chain broke.
    """

    anchor_names: List[str]
    frequencies_hz: np.ndarray
    stage_reached: str = "observations"
    band_quality: Optional[BandQuality] = None
    correction: Optional[CorrectionDiagnostics] = None
    likelihood_map: Optional[MapDiagnostics] = None
    scores: Optional[ScoreBreakdown] = None
    estimate_xy: Optional[Tuple[float, float]] = None

    @property
    def num_anchors(self) -> int:
        """Number of anchors the fix was measured with."""
        return len(self.anchor_names)

    @property
    def num_bands(self) -> int:
        """Number of frequency bands in the sweep."""
        return int(self.frequencies_hz.size)


# ---------------------------------------------------------------------------
# Stage computations (duck-typed against the pipeline objects)
# ---------------------------------------------------------------------------


def _estimate_band_snr_db(
    tag: np.ndarray, usable: np.ndarray
) -> np.ndarray:
    """Amplitude-roughness SNR proxy when no demod SNR was measured.

    The channel amplitude varies smoothly across the 2 MHz band lattice
    (multipath fading has >> 2 MHz coherence at indoor delay spreads)
    while estimation noise is white, so the second difference of the
    per-band amplitude isolates the noise: ``var(d2) = 6 sigma^2`` for
    iid noise.  Crude, but it ranks anchors by quality the same way the
    real demod statistic does.
    """
    num_anchors, _, num_bands = tag.shape
    snr = np.full((num_anchors, num_bands), np.nan)
    if num_bands < 3:
        return snr
    amplitude = np.abs(tag)  # (I, J, K)
    d2 = amplitude[:, :, :-2] - 2 * amplitude[:, :, 1:-1] + amplitude[:, :, 2:]
    noise_power = np.mean(d2**2, axis=(1, 2)) / 6.0  # (I,)
    signal_power = np.mean(amplitude**2, axis=1)  # (I, K)
    for i in range(num_anchors):
        floor = max(noise_power[i], 1e-15 * max(signal_power[i].max(), 1e-300))
        with np.errstate(divide="ignore"):
            snr[i] = 10.0 * np.log10(signal_power[i] / floor)
    snr[~usable] = np.nan
    return snr


def band_quality(observations) -> BandQuality:
    """Per-(anchor, band) quality of a :class:`ChannelObservations`."""
    from repro.core.correction import usable_band_mask

    tag = observations.tag_to_anchor
    usable = usable_band_mask(tag)
    power = np.mean(np.abs(tag) ** 2, axis=1)  # (I, K)
    amplitude_db = np.full(power.shape, -np.inf)
    np.log10(power, out=amplitude_db, where=power > 0)
    amplitude_db *= 10.0
    flatness = np.full(power.shape[0], np.nan)
    for i in range(power.shape[0]):
        cells = amplitude_db[i][usable[i]]
        if cells.size >= 2:
            flatness[i] = float(np.std(cells))
    measured = getattr(observations, "band_snr_db", None)
    if measured is not None:
        snr = np.array(measured, dtype=float)
        snr[~usable] = np.nan
        source = "demod"
    else:
        snr = _estimate_band_snr_db(tag, usable)
        source = "estimate"
    return BandQuality(
        source=source,
        snr_db=snr,
        amplitude_db=amplitude_db,
        flatness_db=flatness,
        missing=~usable,
    )


def correction_diagnostics(
    tag: np.ndarray, alpha: np.ndarray
) -> CorrectionDiagnostics:
    """Residual phase + seam continuity of the corrected channels."""
    from repro.core.correction import linear_phase_residual, usable_band_mask

    residual = linear_phase_residual(alpha)  # (I, J, K)
    residual_per_band = np.sqrt(np.mean(residual**2, axis=1))  # (I, K)
    residual_rms = np.sqrt(np.mean(residual**2, axis=(1, 2)))  # (I,)
    phase = np.unwrap(np.angle(alpha), axis=2)
    if phase.shape[2] >= 2:
        steps = np.diff(phase, axis=2)  # (I, J, K-1)
        median_step = np.median(steps, axis=2, keepdims=True)
        seam = np.sqrt(np.mean((steps - median_step) ** 2, axis=1))
    else:
        seam = np.zeros((phase.shape[0], 0))
    return CorrectionDiagnostics(
        residual_rms_rad=residual_rms,
        residual_per_band_rad=residual_per_band,
        seam_jump_rad=seam,
        worst_seam_rad=float(seam.max()) if seam.size else 0.0,
        hop_coverage=float(np.mean(usable_band_mask(tag))),
    )


def map_diagnostics(combined: np.ndarray) -> MapDiagnostics:
    """Entropy + peak-to-mean of a combined likelihood map."""
    from repro.core.entropy import shannon_entropy

    arr = np.asarray(combined, dtype=float)
    mean = float(arr.mean())
    peak_to_mean = float(arr.max() / mean) if mean > 0 else float("nan")
    return MapDiagnostics(
        entropy_nats=float(shannon_entropy(arr)),
        peak_to_mean=peak_to_mean,
    )


def score_breakdown(scored: Sequence, scoring_config) -> ScoreBreakdown:
    """Eq. 18 decomposition from the localizer's ranked scored peaks.

    ``scored`` is the (strategy-sorted) ``ScoredPeak`` list;
    ``scoring_config`` supplies the ``a``/``b`` weights so the
    likelihood x path-length x negentropy factors can be re-derived
    exactly as the score multiplied them.
    """
    positions = np.array(
        [[s.peak.position.x, s.peak.position.y] for s in scored]
    )
    likelihood = np.array([s.peak.value for s in scored])
    entropy = np.array([s.entropy for s in scored])
    distance = np.array([s.distance_sum_m for s in scored])
    score = np.array([s.score for s in scored])
    if score.size > 1 and score[0] > 0:
        margin = float((score[0] - score[1]) / score[0])
    elif score.size == 1 and score[0] > 0:
        margin = 1.0
    else:
        margin = float("nan")
    return ScoreBreakdown(
        positions_xy=positions,
        likelihood=likelihood,
        entropy_nats=entropy,
        distance_sum_m=distance,
        entropy_term=np.exp(scoring_config.entropy_weight * entropy),
        path_term=np.exp(-scoring_config.distance_weight * distance),
        score=score,
        margin=margin,
    )


#: How many top peaks the map diagnostics keep coordinates for.
TOP_PEAKS = 5


class FixDiagnosticsBuilder:
    """Accumulates :class:`FixDiagnostics` as ``locate()`` progresses.

    The localizer feeds each stage's products through the ``on_*`` hooks
    in pipeline order; :meth:`build` returns whatever was captured, so a
    fix that raised mid-pipeline still yields the completed stages.
    """

    __slots__ = ("_diag",)

    def __init__(self, observations):
        self._diag = FixDiagnostics(
            anchor_names=[
                a.name or f"anchor{i}"
                for i, a in enumerate(observations.anchors)
            ],
            frequencies_hz=np.asarray(
                observations.frequencies_hz, dtype=float
            ).copy(),
            band_quality=band_quality(observations),
        )

    def on_corrected(self, observations, corrected) -> None:
        """Record Eq. 10 residuals from the corrected channels."""
        self._diag.correction = correction_diagnostics(
            observations.tag_to_anchor, corrected.alpha
        )
        self._diag.stage_reached = "corrected"

    def on_likelihood(self, likelihood) -> None:
        """Record combined-map statistics."""
        self._diag.likelihood_map = map_diagnostics(likelihood.combined)
        self._diag.stage_reached = "likelihood"

    def on_scored(self, scored, scoring_config) -> None:
        """Record the Eq. 18 decomposition + top peak locations."""
        self._diag.scores = score_breakdown(scored, scoring_config)
        if self._diag.likelihood_map is not None:
            top = scored[:TOP_PEAKS]
            self._diag.likelihood_map.top_peaks_xy = np.array(
                [[s.peak.position.x, s.peak.position.y] for s in top]
            )
            self._diag.likelihood_map.top_peak_values = np.array(
                [s.peak.value for s in top]
            )
        self._diag.stage_reached = "scored"

    def on_position(self, position) -> None:
        """Record the final (possibly refined) estimate."""
        self._diag.estimate_xy = (float(position.x), float(position.y))
        self._diag.stage_reached = "located"

    def build(self) -> FixDiagnostics:
        """The diagnostics captured so far."""
        return self._diag


# ---------------------------------------------------------------------------
# Fix bundles: deterministic NPZ + JSON serialization
# ---------------------------------------------------------------------------


@dataclass
class FixBundle:
    """One fix, frozen for offline replay.

    Carries the raw observations, the anchor geometry, the complete
    pipeline configuration and the recorded outcome, plus the captured
    :class:`FixDiagnostics`.  ``replay()`` reconstructs the localizer
    and re-runs the fix; with an unchanged pipeline the replayed winning
    peak is bit-identical to the recorded one (the bundle stores every
    float at full precision and whether the steering engine was used).
    """

    label: str
    fix_index: int
    anchors: List[Dict[str, Any]]
    master_index: int
    frequencies_hz: np.ndarray
    tag_to_anchor: np.ndarray
    master_to_anchor: np.ndarray
    band_snr_db: Optional[np.ndarray]
    ground_truth_xy: Optional[Tuple[float, float]]
    config: Dict[str, Any]
    bounds: Optional[Tuple[float, float, float, float]]
    engine_used: bool
    estimate_xy: Optional[Tuple[float, float]]
    error_m: Optional[float]
    failure_reason: Optional[str]
    diagnostics: Optional[FixDiagnostics] = None

    # -- reconstruction ---------------------------------------------------

    def observations(self):
        """Rebuild the :class:`ChannelObservations` of this fix."""
        from repro.core.observations import ChannelObservations
        from repro.rf.antenna import Anchor
        from repro.utils.geometry2d import Point

        anchors = [
            Anchor(
                position=Point(a["x"], a["y"]),
                boresight_rad=a["boresight_rad"],
                num_antennas=a["num_antennas"],
                spacing_m=a["spacing_m"],
                name=a["name"],
            )
            for a in self.anchors
        ]
        truth = (
            Point(*self.ground_truth_xy)
            if self.ground_truth_xy is not None
            else None
        )
        return ChannelObservations(
            anchors=anchors,
            master_index=self.master_index,
            frequencies_hz=self.frequencies_hz,
            tag_to_anchor=self.tag_to_anchor,
            master_to_anchor=self.master_to_anchor,
            ground_truth=truth,
            band_snr_db=self.band_snr_db,
        )

    def localizer(self):
        """Rebuild the :class:`BlocLocalizer` the fix was produced with."""
        from repro.core.engine import SteeringCache
        from repro.core.localizer import BlocConfig, BlocLocalizer
        from repro.core.peaks import PeakConfig
        from repro.core.scoring import ScoringConfig

        cfg = dict(self.config)
        peak = PeakConfig(**cfg.pop("peak"))
        scoring = ScoringConfig(**cfg.pop("scoring"))
        config = BlocConfig(peak=peak, scoring=scoring, **cfg)
        bounds = tuple(self.bounds) if self.bounds is not None else None
        return BlocLocalizer(
            config=config,
            bounds=bounds,
            engine=SteeringCache() if self.engine_used else None,
        )

    def replay(self, keep_map: bool = False, diagnostics: bool = True):
        """Re-run the fix offline; returns the ``LocalizationResult``.

        Raises:
            LocalizationError: exactly when the original fix failed.
        """
        return self.localizer().locate(
            self.observations(), keep_map=keep_map, diagnostics=diagnostics
        )


def bundle_from_fix(
    observations,
    localizer,
    label: str = "",
    fix_index: int = 0,
    estimate=None,
    error_m: Optional[float] = None,
    failure_reason: Optional[str] = None,
    diagnostics: Optional[FixDiagnostics] = None,
) -> FixBundle:
    """Freeze one evaluated fix into a :class:`FixBundle`.

    ``localizer`` must be a :class:`BlocLocalizer`-shaped object (has
    ``config``, ``bounds``, ``engine``); the bundle records its full
    configuration so replay reconstructs the identical pipeline.
    """
    import dataclasses

    anchors = [
        {
            "name": a.name,
            "x": float(a.position.x),
            "y": float(a.position.y),
            "boresight_rad": float(a.boresight_rad),
            "num_antennas": int(a.num_antennas),
            "spacing_m": float(a.spacing_m),
        }
        for a in observations.anchors
    ]
    truth = observations.ground_truth
    snr = getattr(observations, "band_snr_db", None)
    return FixBundle(
        label=label,
        fix_index=int(fix_index),
        anchors=anchors,
        master_index=int(observations.master_index),
        frequencies_hz=np.asarray(observations.frequencies_hz, dtype=float),
        tag_to_anchor=np.asarray(observations.tag_to_anchor, dtype=complex),
        master_to_anchor=np.asarray(
            observations.master_to_anchor, dtype=complex
        ),
        band_snr_db=None if snr is None else np.asarray(snr, dtype=float),
        ground_truth_xy=(
            (float(truth.x), float(truth.y)) if truth is not None else None
        ),
        config=dataclasses.asdict(localizer.config),
        bounds=(
            tuple(float(b) for b in localizer.bounds)
            if localizer.bounds is not None
            else None
        ),
        engine_used=localizer.engine is not None,
        estimate_xy=(
            (float(estimate.x), float(estimate.y))
            if estimate is not None
            else None
        ),
        error_m=None if error_m is None else float(error_m),
        failure_reason=failure_reason,
        diagnostics=diagnostics,
    )


def _diag_to_members(
    diag: FixDiagnostics,
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Split diagnostics into NPZ arrays + a JSON-able meta dict."""
    arrays: Dict[str, np.ndarray] = {
        "diag_frequencies_hz": diag.frequencies_hz
    }
    meta: Dict[str, Any] = {
        "anchor_names": list(diag.anchor_names),
        "stage_reached": diag.stage_reached,
        "estimate_xy": diag.estimate_xy,
    }
    if diag.band_quality is not None:
        bq = diag.band_quality
        meta["band_source"] = bq.source
        arrays["diag_band_snr_db"] = bq.snr_db
        arrays["diag_band_amplitude_db"] = bq.amplitude_db
        arrays["diag_band_flatness_db"] = bq.flatness_db
        arrays["diag_band_missing"] = bq.missing
    if diag.correction is not None:
        corr = diag.correction
        meta["worst_seam_rad"] = corr.worst_seam_rad
        meta["hop_coverage"] = corr.hop_coverage
        arrays["diag_corr_residual_rms_rad"] = corr.residual_rms_rad
        arrays["diag_corr_residual_band_rad"] = corr.residual_per_band_rad
        arrays["diag_corr_seam_rad"] = corr.seam_jump_rad
    if diag.likelihood_map is not None:
        lm = diag.likelihood_map
        meta["map_entropy_nats"] = lm.entropy_nats
        meta["map_peak_to_mean"] = lm.peak_to_mean
        arrays["diag_map_top_xy"] = lm.top_peaks_xy
        arrays["diag_map_top_values"] = lm.top_peak_values
    if diag.scores is not None:
        sc = diag.scores
        meta["score_margin"] = sc.margin
        arrays["diag_score_positions_xy"] = sc.positions_xy
        arrays["diag_score_likelihood"] = sc.likelihood
        arrays["diag_score_entropy"] = sc.entropy_nats
        arrays["diag_score_distance_sum_m"] = sc.distance_sum_m
        arrays["diag_score_entropy_term"] = sc.entropy_term
        arrays["diag_score_path_term"] = sc.path_term
        arrays["diag_score_value"] = sc.score
    return arrays, meta


def _diag_from_members(
    arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
) -> FixDiagnostics:
    """Inverse of :func:`_diag_to_members`."""
    diag = FixDiagnostics(
        anchor_names=list(meta["anchor_names"]),
        frequencies_hz=arrays["diag_frequencies_hz"],
        stage_reached=meta["stage_reached"],
        estimate_xy=(
            tuple(meta["estimate_xy"])
            if meta.get("estimate_xy") is not None
            else None
        ),
    )
    if "diag_band_snr_db" in arrays:
        diag.band_quality = BandQuality(
            source=meta["band_source"],
            snr_db=arrays["diag_band_snr_db"],
            amplitude_db=arrays["diag_band_amplitude_db"],
            flatness_db=arrays["diag_band_flatness_db"],
            missing=arrays["diag_band_missing"],
        )
    if "diag_corr_residual_rms_rad" in arrays:
        worst = meta.get("worst_seam_rad")
        diag.correction = CorrectionDiagnostics(
            residual_rms_rad=arrays["diag_corr_residual_rms_rad"],
            residual_per_band_rad=arrays["diag_corr_residual_band_rad"],
            seam_jump_rad=arrays["diag_corr_seam_rad"],
            worst_seam_rad=float(worst) if worst is not None else 0.0,
            hop_coverage=float(meta["hop_coverage"]),
        )
    if "diag_map_top_xy" in arrays:
        entropy = meta.get("map_entropy_nats")
        ptm = meta.get("map_peak_to_mean")
        diag.likelihood_map = MapDiagnostics(
            entropy_nats=(
                float(entropy) if entropy is not None else float("nan")
            ),
            peak_to_mean=float(ptm) if ptm is not None else float("nan"),
            top_peaks_xy=arrays["diag_map_top_xy"],
            top_peak_values=arrays["diag_map_top_values"],
        )
    if "diag_score_value" in arrays:
        margin = meta.get("score_margin")
        diag.scores = ScoreBreakdown(
            positions_xy=arrays["diag_score_positions_xy"],
            likelihood=arrays["diag_score_likelihood"],
            entropy_nats=arrays["diag_score_entropy"],
            distance_sum_m=arrays["diag_score_distance_sum_m"],
            entropy_term=arrays["diag_score_entropy_term"],
            path_term=arrays["diag_score_path_term"],
            score=arrays["diag_score_value"],
            margin=float(margin) if margin is not None else float("nan"),
        )
    return diag


def _write_deterministic_npz(
    path: Path, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
) -> None:
    """NPZ-compatible zip with content-only bytes.

    ``np.savez`` stamps members with the wall clock, so two saves of the
    same fix differ; writing the zip by hand with the fixed DOS epoch
    and sorted member order makes bundle bytes a pure function of the
    payload (the byte-stability tests rely on this).
    """
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
        for name in sorted(arrays):
            buf = io.BytesIO()
            np.save(buf, np.asarray(arrays[name]), allow_pickle=False)
            info = zipfile.ZipInfo(name + ".npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_DEFLATED
            zf.writestr(info, buf.getvalue())
        info = zipfile.ZipInfo("meta.json", date_time=_ZIP_EPOCH)
        info.compress_type = zipfile.ZIP_DEFLATED
        zf.writestr(
            info,
            json.dumps(
                _json_safe(meta), sort_keys=True, separators=(",", ":")
            ),
        )


def save_fix_bundle(path: Union[str, Path], bundle: FixBundle) -> Path:
    """Serialize a bundle to a deterministic ``.npz``; returns the path."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {
        "obs_frequencies_hz": bundle.frequencies_hz,
        "obs_tag_to_anchor": bundle.tag_to_anchor,
        "obs_master_to_anchor": bundle.master_to_anchor,
    }
    if bundle.band_snr_db is not None:
        arrays["obs_band_snr_db"] = bundle.band_snr_db
    meta: Dict[str, Any] = {
        "format": FIX_BUNDLE_FORMAT,
        "schema": FIX_BUNDLE_SCHEMA,
        "label": bundle.label,
        "fix_index": bundle.fix_index,
        "anchors": bundle.anchors,
        "master_index": bundle.master_index,
        "ground_truth_xy": bundle.ground_truth_xy,
        "config": bundle.config,
        "bounds": bundle.bounds,
        "engine_used": bundle.engine_used,
        "result": {
            "estimate_xy": bundle.estimate_xy,
            "error_m": bundle.error_m,
            "failure_reason": bundle.failure_reason,
        },
        "diagnostics": None,
    }
    if bundle.diagnostics is not None:
        diag_arrays, diag_meta = _diag_to_members(bundle.diagnostics)
        arrays.update(diag_arrays)
        meta["diagnostics"] = diag_meta
    _write_deterministic_npz(path, arrays, meta)
    return path


def load_fix_bundle(path: Union[str, Path]) -> FixBundle:
    """Load a bundle written by :func:`save_fix_bundle`.

    Raises:
        ConfigurationError: when the file is not a fix bundle or its
            schema version is unknown.
    """
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path, "r") as zf:
            names = zf.namelist()
            if "meta.json" not in names:
                raise ConfigurationError(
                    f"{path}: not a fix bundle (no meta.json member)"
                )
            meta = json.loads(zf.read("meta.json").decode("utf-8"))
            for name in names:
                if name.endswith(".npy"):
                    arrays[name[:-4]] = np.load(
                        io.BytesIO(zf.read(name)), allow_pickle=False
                    )
    except zipfile.BadZipFile as exc:
        raise ConfigurationError(f"{path}: not a zip file: {exc}") from exc
    if meta.get("format") != FIX_BUNDLE_FORMAT:
        raise ConfigurationError(
            f"{path}: format {meta.get('format')!r} is not "
            f"{FIX_BUNDLE_FORMAT!r}"
        )
    if meta.get("schema") != FIX_BUNDLE_SCHEMA:
        raise ConfigurationError(
            f"{path}: unsupported bundle schema {meta.get('schema')!r}"
        )
    result = meta.get("result") or {}
    diagnostics = None
    if meta.get("diagnostics") is not None:
        diagnostics = _diag_from_members(arrays, meta["diagnostics"])
    return FixBundle(
        label=meta["label"],
        fix_index=int(meta["fix_index"]),
        anchors=meta["anchors"],
        master_index=int(meta["master_index"]),
        frequencies_hz=arrays["obs_frequencies_hz"],
        tag_to_anchor=arrays["obs_tag_to_anchor"],
        master_to_anchor=arrays["obs_master_to_anchor"],
        band_snr_db=arrays.get("obs_band_snr_db"),
        ground_truth_xy=(
            tuple(meta["ground_truth_xy"])
            if meta.get("ground_truth_xy") is not None
            else None
        ),
        config=meta["config"],
        bounds=(
            tuple(meta["bounds"]) if meta.get("bounds") is not None else None
        ),
        engine_used=bool(meta["engine_used"]),
        estimate_xy=(
            tuple(result["estimate_xy"])
            if result.get("estimate_xy") is not None
            else None
        ),
        error_m=result.get("error_m"),
        failure_reason=result.get("failure_reason"),
        diagnostics=diagnostics,
    )


def bundle_filename(label: str, fix_index: int) -> str:
    """Canonical bundle file name; labels sanitised for the filesystem."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "fix"
    return f"{slug}-{fix_index:05d}.npz"


# ---------------------------------------------------------------------------
# Rendering (the `repro diag` CLI)
# ---------------------------------------------------------------------------


def _fmt(value, digits: int = 3) -> str:
    """Compact numeric cell: fixed digits, '-' for missing."""
    if value is None:
        return "-"
    value = float(value)
    if not np.isfinite(value):
        return "-" if np.isnan(value) else ("inf" if value > 0 else "-inf")
    return f"{value:.{digits}f}"


def render_bundle_summary(bundle: FixBundle) -> str:
    """Header block: provenance, outcome, stage reached."""
    lines = [
        f"fix bundle  label={bundle.label or '(none)'}  "
        f"index={bundle.fix_index}  schema={FIX_BUNDLE_SCHEMA}",
        f"anchors: {', '.join(a['name'] or '?' for a in bundle.anchors)}  "
        f"(master: {bundle.anchors[bundle.master_index]['name'] or '?'})",
        f"bands: {bundle.frequencies_hz.size}  "
        f"span {bundle.frequencies_hz.min() / 1e6:.1f}-"
        f"{bundle.frequencies_hz.max() / 1e6:.1f} MHz  "
        f"engine={'on' if bundle.engine_used else 'off'}",
    ]
    if bundle.ground_truth_xy is not None:
        lines.append(
            "truth: "
            f"({_fmt(bundle.ground_truth_xy[0])}, "
            f"{_fmt(bundle.ground_truth_xy[1])}) m"
        )
    if bundle.estimate_xy is not None:
        lines.append(
            "estimate: "
            f"({_fmt(bundle.estimate_xy[0])}, "
            f"{_fmt(bundle.estimate_xy[1])}) m  "
            f"error={_fmt(bundle.error_m)} m"
        )
    if bundle.failure_reason:
        lines.append(f"FAILED: {bundle.failure_reason}")
    if bundle.diagnostics is not None:
        lines.append(f"stage reached: {bundle.diagnostics.stage_reached}")
    return "\n".join(lines)


def render_anchor_table(diag: FixDiagnostics) -> str:
    """Per-anchor health roll-up: coverage, SNR, residual, worst seam."""
    bq = diag.band_quality
    corr = diag.correction
    rows = []
    for i, name in enumerate(diag.anchor_names):
        coverage = snr = flatness = residual = seam = None
        if bq is not None:
            coverage = bq.coverage()[i]
            snr = bq.anchor_snr_db()[i]
            flatness = bq.flatness_db[i]
        if corr is not None:
            residual = corr.residual_rms_rad[i]
            if corr.seam_jump_rad.shape[1]:
                seam = corr.seam_jump_rad[i].max()
        rows.append(
            [
                name,
                _fmt(coverage, 2),
                _fmt(snr, 1),
                _fmt(flatness, 1),
                _fmt(residual),
                _fmt(seam),
            ]
        )
    return format_table(
        [
            "anchor",
            "coverage",
            "snr dB",
            "flatness dB",
            "residual rad",
            "worst seam rad",
        ],
        rows,
    )


def render_band_table(diag: FixDiagnostics) -> str:
    """Per-band detail: frequency, per-anchor SNR (x marks missing)."""
    bq = diag.band_quality
    if bq is None:
        return "(no band quality captured)"
    headers = ["band", "MHz"] + [
        f"{name} snr" for name in diag.anchor_names
    ]
    rows = []
    for k in range(diag.num_bands):
        cells = [str(k), f"{diag.frequencies_hz[k] / 1e6:.0f}"]
        for i in range(diag.num_anchors):
            if bq.missing[i, k]:
                cells.append("x")
            else:
                cells.append(_fmt(bq.snr_db[i, k], 1))
        rows.append(cells)
    return format_table(headers, rows)


def render_score_table(diag: FixDiagnostics) -> str:
    """Eq. 18 decomposition table, ranked order (row 0 = chosen peak)."""
    sc = diag.scores
    if sc is None:
        return "(no scored peaks captured)"
    rows = []
    for p in range(sc.num_candidates):
        rows.append(
            [
                ("*" if p == 0 else " ") + str(p),
                _fmt(sc.positions_xy[p, 0]),
                _fmt(sc.positions_xy[p, 1]),
                _fmt(sc.likelihood[p]),
                _fmt(sc.entropy_nats[p]),
                _fmt(sc.distance_sum_m[p], 2),
                _fmt(sc.entropy_term[p]),
                _fmt(sc.path_term[p]),
                _fmt(sc.score[p]),
            ]
        )
    table = format_table(
        [
            "peak",
            "x m",
            "y m",
            "p_x",
            "H nats",
            "sum d m",
            "exp(bH)",
            "exp(-ad)",
            "score",
        ],
        rows,
    )
    return table + f"\nscore margin: {_fmt(sc.margin)}"


def render_replay(bundle: FixBundle, result, failure: Optional[str]) -> str:
    """--explain epilogue: replayed outcome vs the recorded one."""
    lines = ["", "== replay =="]
    if failure is not None:
        lines.append(f"replay FAILED: {failure}")
        lines.append(
            "matches recorded outcome"
            if bundle.failure_reason
            else "MISMATCH: original fix succeeded"
        )
        return "\n".join(lines)
    position = result.position
    lines.append(
        f"replayed estimate: ({position.x!r}, {position.y!r}) m"
    )
    if bundle.estimate_xy is not None:
        exact = (
            float(position.x) == bundle.estimate_xy[0]
            and float(position.y) == bundle.estimate_xy[1]
        )
        lines.append(
            "bit-exact match with recorded estimate"
            if exact
            else (
                "MISMATCH with recorded estimate "
                f"({bundle.estimate_xy[0]!r}, {bundle.estimate_xy[1]!r}) -- "
                "pipeline changed since capture"
            )
        )
    elif bundle.failure_reason:
        lines.append("MISMATCH: original fix failed, replay succeeded")
    if bundle.ground_truth_xy is not None:
        dx = position.x - bundle.ground_truth_xy[0]
        dy = position.y - bundle.ground_truth_xy[1]
        lines.append(f"replay error vs truth: {np.hypot(dx, dy):.3f} m")
    return "\n".join(lines)


def render_bundle(
    bundle: FixBundle, bands: bool = False, explain: bool = False
) -> str:
    """Full ``repro diag`` report for one bundle.

    Args:
        bundle: the loaded fix bundle.
        bands: include the per-band SNR table.
        explain: replay the fix offline and append the comparison of the
            replayed winning peak against the recorded one.
    """
    parts = [render_bundle_summary(bundle)]
    diag = bundle.diagnostics
    if diag is not None:
        parts += ["", "== anchors ==", render_anchor_table(diag)]
        if bands:
            parts += ["", "== bands ==", render_band_table(diag)]
        parts += ["", "== score decomposition ==", render_score_table(diag)]
    else:
        parts.append("(bundle carries no diagnostics)")
    if explain:
        from repro.errors import LocalizationError

        result, failure = None, None
        try:
            result = bundle.replay(keep_map=False, diagnostics=False)
        except LocalizationError as exc:
            failure = str(exc)
        parts.append(render_replay(bundle, result, failure))
    return "\n".join(parts)
