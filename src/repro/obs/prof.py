"""Sampling wall-clock profiler attributing time to open obs spans.

Span timings say how long each stage took; they cannot say where the
wall time of a whole run *went* when stages interleave across worker
threads.  The :class:`SamplingProfiler` answers that: a background
daemon thread wakes every ``interval_s``, snapshots every thread's
open-span stack via :meth:`repro.obs.trace.Tracer.active_stacks`, and
counts one sample against each stack path (root ``;`` ... ``;``
innermost).  The result folds straight into flamegraph tools
(:func:`repro.obs.export.export_folded`) or speedscope
(:func:`repro.obs.export.export_speedscope`).

Cost model: a tick copies one small list per thread with an open span
-- O(threads x depth) python-level work, a few microseconds -- so at
the default 5 ms interval the profiler's own budget is well under 1% of
wall time; the perf benchmark records the measured overhead in
``BENCH_localize.json`` (``profiler.overhead_frac``) and the SLO spec
bounds it at 5%.  When no profiler is constructed, nothing runs: the
tracer's registry upkeep is one dict write per thread lifetime, so the
feature is zero-cost off.  The CLI and benchmarks only construct one
when ``--profile`` / ``REPRO_BENCH_PROFILE`` ask for it.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.analysis.runtime_locks import make_lock
from repro.errors import ConfigurationError
from repro.obs.trace import Tracer

#: Stack key used for ticks during which no thread had an open span.
IDLE_STACK: Tuple[str, ...] = ("(no active span)",)


@dataclass
class ProfileReport:
    """Aggregated samples of one profiling session.

    Attributes:
        interval_s: nominal seconds between samples.
        ticks: number of sampling passes taken.
        stacks: sample count per span-stack path (root first).  Ticks
            with no open span on any thread count against
            :data:`IDLE_STACK`.
        sample_cost_s: wall-clock the sampler spent inside its own
            sampling passes (the profiler's self-time; its overhead
            bound is this divided by the observed duration).
        started_s / stopped_s: clock readings bracketing the session
            (``stopped_s`` is NaN while still running).
    """

    interval_s: float
    ticks: int = 0
    stacks: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    sample_cost_s: float = 0.0
    started_s: float = float("nan")
    stopped_s: float = float("nan")

    @property
    def duration_s(self) -> float:
        """Observed session length [s] (NaN while running)."""
        return self.stopped_s - self.started_s

    @property
    def samples_total(self) -> int:
        """Samples attributed to real span stacks (idle excluded)."""
        return sum(
            count
            for stack, count in self.stacks.items()
            if stack != IDLE_STACK
        )

    @property
    def samples_idle(self) -> int:
        """Ticks that found no open span anywhere."""
        return self.stacks.get(IDLE_STACK, 0)

    def snapshot(self, top: int = 10) -> dict:
        """Plain-data view for the run ledger (top stacks only)."""
        ranked = sorted(
            self.stacks.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return {
            "interval_s": self.interval_s,
            "ticks": self.ticks,
            "samples": self.samples_total,
            "idle": self.samples_idle,
            "sample_cost_s": self.sample_cost_s,
            "top_stacks": [
                {"stack": ";".join(stack), "count": count}
                for stack, count in ranked[:top]
            ],
        }


class SamplingProfiler:
    """Background wall-clock sampler over a tracer's open spans.

    Usage::

        with observed() as obs, SamplingProfiler(obs.tracer) as profiler:
            run = evaluate(localizer, dataset)
        export_folded("run.folded", profiler.report)

    The sampling thread is a daemon: a crashed run never hangs on it.
    ``clock`` and ``sleep`` are injectable so tests can drive
    :meth:`sample_once` deterministically without a real thread.
    """

    def __init__(
        self,
        tracer: Tracer,
        interval_s: float = 0.005,
        clock: Callable[[], float] = time.perf_counter,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if interval_s <= 0:
            raise ConfigurationError(
                f"profiler interval must be > 0, got {interval_s}"
            )
        self.tracer = tracer
        self.report = ProfileReport(interval_s=float(interval_s))
        self.clock = clock
        self._sleep = sleep
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = make_lock("SamplingProfiler._lock")

    def sample_once(self) -> None:
        """Take one sampling pass over every thread's open spans.

        Thread-safe: the pass reads the tracer's stack registry through
        :meth:`Tracer.active_stacks` (lock-protected snapshot) and
        mutates only this profiler's report under the profiler lock, so
        it may run concurrently with worker threads opening/closing
        spans and with a caller polling :attr:`report`.
        """
        tick_start = self.clock()
        stacks = self.tracer.active_stacks()
        keys: List[Tuple[str, ...]] = [
            tuple(span.name for span in stack)
            for stack in stacks.values()
        ] or [IDLE_STACK]
        with self._lock:
            self.report.ticks += 1
            for key in keys:
                self.report.stacks[key] = (
                    self.report.stacks.get(key, 0) + 1
                )
            self.report.sample_cost_s += self.clock() - tick_start

    def _run(self) -> None:
        wait = self._sleep or self._stop.wait
        while not self._stop.is_set():
            self.sample_once()
            wait(self.report.interval_s)

    def start(self) -> "SamplingProfiler":
        """Start the sampling thread; returns self for chaining."""
        if self._thread is not None:
            raise ConfigurationError("profiler already started")
        self.report.started_s = self.clock()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> ProfileReport:
        """Stop sampling and return the report.

        Thread-safe and idempotent: signalling the stop event is atomic,
        the join waits out any in-flight :meth:`sample_once`, and a
        second stop() simply returns the already-final report.
        """
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            if math.isnan(self.report.stopped_s):
                self.report.stopped_s = self.clock()
        return self.report

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.stop()
        return False
