"""repro: a full reproduction of BLoc (CoNEXT 2018) in Python.

BLoc is a CSI-based localization system for BLE tags.  This package
implements the paper's contribution (:mod:`repro.core`) together with every
substrate it depends on: the BLE PHY/link layer (:mod:`repro.ble`), an
indoor RF propagation simulator (:mod:`repro.rf`), a software-radio front
end (:mod:`repro.sdr`), baselines (:mod:`repro.baselines`) and the
evaluation harness (:mod:`repro.sim`).

Quickstart::

    from repro import vicon_testbed, ChannelMeasurementModel, BlocLocalizer
    from repro.utils.geometry2d import Point

    testbed = vicon_testbed()
    model = ChannelMeasurementModel(testbed=testbed, seed=1)
    observations = model.measure(Point(0.8, 0.4))
    result = BlocLocalizer().locate(observations)
    print(result.position, result.error_m(Point(0.8, 0.4)))
"""

from repro.baselines import (
    AoaLocalizer,
    RssiFingerprinting,
    RssiTrilateration,
    ShortestDistanceLocalizer,
    shortest_distance_localizer,
)
from repro.core import (
    BlocConfig,
    BlocLocalizer,
    ChannelObservations,
    CorrectedChannels,
    EngineConfig,
    LocalizationResult,
    SteeringCache,
    correct_phase_offsets,
)
from repro.sim import (
    ChannelMeasurementModel,
    ErrorStats,
    EvaluationDataset,
    IqMeasurementModel,
    Testbed,
    build_dataset,
    evaluate,
    evaluate_anchor_subsets,
    open_room_testbed,
    sample_tag_positions,
    vicon_testbed,
)
from repro.utils.geometry2d import Point

__version__ = "1.0.0"

__all__ = [
    "AoaLocalizer",
    "BlocConfig",
    "BlocLocalizer",
    "ChannelMeasurementModel",
    "ChannelObservations",
    "CorrectedChannels",
    "EngineConfig",
    "ErrorStats",
    "EvaluationDataset",
    "IqMeasurementModel",
    "LocalizationResult",
    "Point",
    "RssiFingerprinting",
    "RssiTrilateration",
    "ShortestDistanceLocalizer",
    "SteeringCache",
    "Testbed",
    "build_dataset",
    "correct_phase_offsets",
    "evaluate",
    "evaluate_anchor_subsets",
    "open_room_testbed",
    "sample_tag_positions",
    "shortest_distance_localizer",
    "vicon_testbed",
    "__version__",
]
