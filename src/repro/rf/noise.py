"""Noise models: AWGN for IQ streams and estimation noise for channels.

Two entry points, one per simulation fidelity:

* :func:`add_awgn` corrupts complex baseband samples at a target SNR, for
  the IQ-level PHY pipeline.
* :func:`channel_estimation_noise` perturbs directly-synthesised channel
  values the way averaging a tone over ``n`` samples at a given SNR would,
  for the fast channel-level campaigns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.contracts import arr, shaped
from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, make_rng


def snr_to_noise_std(signal_power: float, snr_db: float) -> float:
    """Per-component (I or Q) noise standard deviation for a target SNR."""
    if signal_power < 0:
        raise ConfigurationError("signal power must be >= 0")
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    return float(np.sqrt(noise_power / 2.0))


def add_awgn(
    iq: np.ndarray, snr_db: float, rng: RngLike = None
) -> np.ndarray:
    """Add complex white Gaussian noise at ``snr_db`` relative to the
    *average* power of ``iq``."""
    samples = np.asarray(iq, dtype=complex)
    if samples.size == 0:
        return samples.copy()
    power = float(np.mean(np.abs(samples) ** 2))
    std = snr_to_noise_std(power, snr_db)
    generator = make_rng(rng)
    noise = generator.normal(0.0, std, samples.shape) + 1j * generator.normal(
        0.0, std, samples.shape
    )
    return samples + noise


@shaped(channels=arr(None, np.complexfloating))
def channel_estimation_noise(
    channels: np.ndarray,
    snr_db: float,
    averaging_gain: float = 1.0,
    rng: RngLike = None,
    reference_power: Optional[float] = None,
) -> np.ndarray:
    """Perturb channel estimates with the noise a tone estimator would see.

    Estimating ``h = y / x`` from a tone averaged over ``n`` samples at
    per-sample SNR ``snr_db`` leaves complex Gaussian error with power
    ``noise_power / n``; ``averaging_gain`` is that ``n``.

    Args:
        channels: complex channel values (any shape).
        snr_db: per-sample SNR, relative to ``reference_power`` (or to the
            mean power of ``channels`` if not given).  Using a fixed
            reference makes weak (heavily obstructed) channels noisier
            than strong ones, as in reality.
        averaging_gain: number of coherently averaged samples.
        rng: random source.
    """
    arr = np.asarray(channels, dtype=complex)
    if averaging_gain <= 0:
        raise ConfigurationError("averaging gain must be > 0")
    if arr.size == 0:
        return arr.copy()
    if reference_power is None:
        reference_power = float(np.mean(np.abs(arr) ** 2))
    noise_power = reference_power / (10.0 ** (snr_db / 10.0)) / averaging_gain
    std = float(np.sqrt(noise_power / 2.0))
    generator = make_rng(rng)
    noise = generator.normal(0.0, std, arr.shape) + 1j * generator.normal(
        0.0, std, arr.shape
    )
    return arr + noise


def measure_snr_db(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR between a clean signal and its noisy version."""
    clean = np.asarray(clean, dtype=complex)
    noisy = np.asarray(noisy, dtype=complex)
    if clean.shape != noisy.shape:
        raise ConfigurationError("shapes must match")
    noise = noisy - clean
    noise_power = float(np.mean(np.abs(noise) ** 2))
    if noise_power == 0:
        return float("inf")
    signal_power = float(np.mean(np.abs(clean) ** 2))
    return 10.0 * np.log10(signal_power / noise_power)
