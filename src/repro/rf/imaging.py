"""Image-method ray tracer: enumerate propagation paths in an environment.

For every transmitter/receiver pair the tracer produces:

* the direct path (attenuated by any opaque faces it crosses),
* one specular reflection per visible face (walls + interior reflectors),
  via the classic mirror-image construction,
* optionally second-order wall-wall reflections,
* a deterministic *scatter cluster* around each specular bounce point,
  modelling the paper's non-ideal reflectors: the cluster's sub-paths have
  slightly different lengths, so across frequency and antennas the
  reflected energy decorrelates and spreads out in the likelihood map --
  the physical basis of BLoc's spatial-entropy multipath test (Section 5.4).

Everything is deterministic given the geometry: no random draws here, so a
tag at the same spot always sees the same multipath (like a real room).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.rf.environment import Environment, Reflector
from repro.rf.paths import PathKind, PropagationPath
from repro.utils.geometry2d import (
    Point,
    Segment,
    mirror_point,
    segment_intersection,
)

#: Normalised scatter-cluster offsets (units of the material's spread) and
#: their Gaussian weights; chosen symmetric so the cluster centroid stays at
#: the specular point.
_SCATTER_OFFSETS = np.array([-1.6, -0.9, -0.35, 0.35, 0.9, 1.6])
_SCATTER_WEIGHTS = np.exp(-0.5 * _SCATTER_OFFSETS**2)


@dataclass(frozen=True)
class ImagingConfig:
    """Ray-tracing knobs.

    Attributes:
        max_order: highest reflection order to trace (1 or 2).
        include_scatter: whether to expand scatter clusters.
        min_gain: paths weaker than this amplitude are dropped.
        reference_gain: free-space amplitude at 1 m (the paper's ``A``).
    """

    max_order: int = 1
    include_scatter: bool = True
    min_gain: float = 1e-4
    reference_gain: float = 1.0

    def __post_init__(self):
        if self.max_order not in (1, 2):
            raise ConfigurationError("max_order must be 1 or 2")
        if self.min_gain < 0:
            raise ConfigurationError("min_gain must be >= 0")


def _on_face_line(p: Point, face: Segment, tolerance: float = 1e-6) -> bool:
    """Whether ``p`` lies (numerically) on the infinite line of the face."""
    d = face.direction()
    offset = (p - face.a) - d * (p - face.a).dot(d)
    return offset.norm() < tolerance


def _leg_transmission(
    env: Environment,
    a: Point,
    b: Point,
    bouncing: Sequence[Reflector],
) -> float:
    """Obstruction factor of one leg, ignoring the faces being bounced."""
    return env.transmission_along(a, b, ignore=bouncing)


def trace_paths(
    env: Environment,
    tx: Point,
    rx: Point,
    config: Optional[ImagingConfig] = None,
) -> List[PropagationPath]:
    """All propagation paths from ``tx`` to ``rx`` in ``env``.

    Returns at least the direct path (possibly heavily attenuated); the
    list is ordered with the direct path first, then reflections in face
    order.
    """
    cfg = config or ImagingConfig()
    paths: List[PropagationPath] = []

    direct_length = max((rx - tx).norm(), 1e-6)
    direct_gain = (
        cfg.reference_gain
        / direct_length
        * env.transmission_along(tx, rx)
    )
    paths.append(
        PropagationPath(
            length_m=direct_length,
            gain=complex(direct_gain),
            kind=PathKind.DIRECT,
        )
    )

    faces = env.all_faces()
    for face in faces:
        paths.extend(_first_order_paths(env, tx, rx, face, cfg))

    if cfg.max_order >= 2:
        walls = env.walls
        for first in walls:
            for second in walls:
                if first is second:
                    continue
                path = _second_order_path(env, tx, rx, first, second, cfg)
                if path is not None:
                    paths.append(path)

    return [p for p in paths if abs(p.gain) >= cfg.min_gain]


def _first_order_paths(
    env: Environment,
    tx: Point,
    rx: Point,
    face: Reflector,
    cfg: ImagingConfig,
) -> List[PropagationPath]:
    segment = face.segment
    if _on_face_line(tx, segment) or _on_face_line(rx, segment):
        return []
    image = mirror_point(tx, segment)
    if (image - rx).norm() < 1e-9:
        # rx sits exactly at tx's mirror image: the "reflection" would be
        # the normal-incidence ray straight through the face -- degenerate.
        return []
    bounce = segment_intersection(Segment(image, rx), segment)
    if bounce is None:
        return []
    out: List[PropagationPath] = []
    ignore = [face]
    base_transmission = _leg_transmission(
        env, tx, bounce, ignore
    ) * _leg_transmission(env, bounce, rx, ignore)
    specular_length = (bounce - tx).norm() + (rx - bounce).norm()
    specular_gain = (
        cfg.reference_gain
        / max(specular_length, 1e-6)
        * face.material.specular_amplitude
        * base_transmission
    )
    if abs(specular_gain) >= cfg.min_gain:
        out.append(
            PropagationPath(
                length_m=specular_length,
                gain=complex(specular_gain),
                kind=PathKind.SPECULAR,
                bounce_point=bounce,
                reflector_name=face.name,
            )
        )
    if cfg.include_scatter and face.material.scattered_amplitude > 0:
        out.extend(
            _scatter_cluster(env, tx, rx, face, bounce, base_transmission, cfg)
        )
    return out


def _scatter_cluster(
    env: Environment,
    tx: Point,
    rx: Point,
    face: Reflector,
    specular_point: Point,
    base_transmission: float,
    cfg: ImagingConfig,
) -> List[PropagationPath]:
    """Deterministic diffuse sub-paths spread along the face."""
    segment = face.segment
    spread = face.material.scattering_spread_m
    direction = segment.direction()
    t_specular = segment.project_parameter(specular_point)
    length = segment.length()
    cluster: List[PropagationPath] = []
    # Amplitude budget: total scattered power equals the power a specular
    # bounce with coefficient `scattered_amplitude` would carry.
    weights = _SCATTER_WEIGHTS / np.sqrt(np.sum(_SCATTER_WEIGHTS**2))
    for offset, weight in zip(_SCATTER_OFFSETS, weights):
        t = t_specular + offset * spread / max(length, 1e-9)
        if not 0.0 < t < 1.0:
            continue
        point = segment.point_at(t)
        path_length = (point - tx).norm() + (rx - point).norm()
        gain = (
            cfg.reference_gain
            / max(path_length, 1e-6)
            * face.material.scattered_amplitude
            * weight
            * base_transmission
        )
        if abs(gain) < cfg.min_gain:
            continue
        cluster.append(
            PropagationPath(
                length_m=path_length,
                gain=complex(gain),
                kind=PathKind.SCATTER,
                bounce_point=point,
                reflector_name=face.name,
            )
        )
    return cluster


def _second_order_path(
    env: Environment,
    tx: Point,
    rx: Point,
    first: Reflector,
    second: Reflector,
    cfg: ImagingConfig,
) -> Optional[PropagationPath]:
    """Wall-wall double bounce via double mirror images."""
    s1, s2 = first.segment, second.segment
    if _on_face_line(tx, s1) or _on_face_line(rx, s2):
        return None
    image1 = mirror_point(tx, s1)
    image2 = mirror_point(image1, s2)
    if (image2 - rx).norm() < 1e-9:
        return None
    bounce2 = segment_intersection(Segment(image2, rx), s2)
    if bounce2 is None:
        return None
    if (image1 - bounce2).norm() < 1e-9:
        return None
    bounce1 = segment_intersection(Segment(image1, bounce2), s1)
    if bounce1 is None:
        return None
    length = (
        (bounce1 - tx).norm()
        + (bounce2 - bounce1).norm()
        + (rx - bounce2).norm()
    )
    ignore = [first, second]
    transmission = (
        _leg_transmission(env, tx, bounce1, ignore)
        * _leg_transmission(env, bounce1, bounce2, ignore)
        * _leg_transmission(env, bounce2, rx, ignore)
    )
    gain = (
        cfg.reference_gain
        / max(length, 1e-6)
        * first.material.specular_amplitude
        * second.material.specular_amplitude
        * transmission
    )
    if abs(gain) < cfg.min_gain:
        return None
    return PropagationPath(
        length_m=length,
        gain=complex(gain),
        kind=PathKind.SPECULAR,
        bounce_point=bounce1,
        reflector_name=f"{first.name}+{second.name}",
    )
