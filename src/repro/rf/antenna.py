"""Antenna arrays and anchor points.

Each BLoc anchor is a uniform linear array (ULA) of ``J`` antennas driven
by one oscillator (paper Section 7: USRP N210s building 4-antenna anchors).
Antenna 0 is the reference element: Eq. 14 measures relative distances with
respect to "anchor 0, antenna 0".

The default element spacing is half a wavelength at the centre of the BLE
band, the standard choice that keeps the array unambiguous over +-90 deg.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.utils.geometry2d import Point

#: Centre of the BLE band, used to pick the default element spacing.
BLE_BAND_CENTRE_HZ = 2.441e9

#: Half-wavelength spacing at the band centre [m].
HALF_WAVELENGTH_M = SPEED_OF_LIGHT / BLE_BAND_CENTRE_HZ / 2.0


@dataclass(frozen=True)
class Anchor:
    """A multi-antenna anchor point.

    Attributes:
        position: centre of the antenna array.
        boresight_rad: direction the array faces (normal to the array
            line); angles of arrival are measured relative to it.
        num_antennas: number of ULA elements.
        spacing_m: element separation (the paper's ``l``).
        name: label used in datasets and reports.
    """

    position: Point
    boresight_rad: float = 0.0
    num_antennas: int = 4
    spacing_m: float = HALF_WAVELENGTH_M
    name: str = ""

    def __post_init__(self):
        if self.num_antennas < 1:
            raise ConfigurationError("an anchor needs at least 1 antenna")
        if self.spacing_m <= 0:
            raise ConfigurationError("antenna spacing must be > 0")

    def array_axis(self) -> Point:
        """Unit vector along the array line (boresight rotated +90 deg)."""
        return Point(
            -math.sin(self.boresight_rad), math.cos(self.boresight_rad)
        )

    def antenna_position(self, antenna_index: int) -> Point:
        """Position of element ``antenna_index`` (0-based).

        Elements are laid out symmetrically around :attr:`position`, with
        element 0 at the most negative offset along the array axis.
        """
        if not 0 <= antenna_index < self.num_antennas:
            raise ConfigurationError(
                f"antenna index {antenna_index} out of range "
                f"[0, {self.num_antennas})"
            )
        offset = (antenna_index - (self.num_antennas - 1) / 2.0) * self.spacing_m
        return self.position + self.array_axis() * offset

    def antenna_positions(self) -> List[Point]:
        """Positions of all elements, index order."""
        return [self.antenna_position(j) for j in range(self.num_antennas)]

    def antenna_array(self) -> np.ndarray:
        """Element positions as an ``(num_antennas, 2)`` array."""
        return np.array([tuple(p) for p in self.antenna_positions()])

    def with_antennas(self, num_antennas: int) -> "Anchor":
        """Copy of this anchor with a different element count, array centre
        fixed (for *designing* a deployment with another antenna count)."""
        return Anchor(
            position=self.position,
            boresight_rad=self.boresight_rad,
            num_antennas=num_antennas,
            spacing_m=self.spacing_m,
            name=self.name,
        )

    def truncated(self, num_antennas: int) -> "Anchor":
        """Anchor describing only the first ``num_antennas`` elements of
        this array, *keeping their physical positions*.

        This models the paper's Section 8.4 experiment (evaluate with 3 of
        the 4 antennas): element ``j`` of the truncated anchor sits exactly
        where element ``j`` of the original sat.
        """
        if not 1 <= num_antennas <= self.num_antennas:
            raise ConfigurationError(
                f"cannot truncate {self.num_antennas}-element array "
                f"to {num_antennas}"
            )
        shift = (
            (num_antennas - 1) / 2.0 - (self.num_antennas - 1) / 2.0
        ) * self.spacing_m
        return Anchor(
            position=self.position + self.array_axis() * shift,
            boresight_rad=self.boresight_rad,
            num_antennas=num_antennas,
            spacing_m=self.spacing_m,
            name=self.name,
        )

    def angle_to(self, target: Point) -> float:
        """Angle of ``target`` relative to boresight, in radians.

        Positive angles are towards the positive array axis, matching the
        sign convention of the steering equations (paper Fig. 2).
        """
        bearing = self.position.angle_to(target)
        angle = bearing - self.boresight_rad
        # Wrap to (-pi, pi].
        return math.atan2(math.sin(angle), math.cos(angle))


def default_anchor_ring(
    room_width: float,
    room_height: float,
    origin: Point = Point(0.0, 0.0),
    num_antennas: int = 4,
    inset_m: float = 0.1,
) -> List[Anchor]:
    """The paper's deployment: one anchor at the centre of each room edge,
    facing inwards (Fig. 7c), slightly inset from the wall.

    Returns anchors named AP1..AP4 on the south, east, north and west
    edges respectively; AP1 is the master in the default testbed.
    """
    if room_width <= 0 or room_height <= 0:
        raise ConfigurationError("room dimensions must be positive")
    cx = origin.x + room_width / 2.0
    cy = origin.y + room_height / 2.0
    placements = [
        (Point(cx, origin.y + inset_m), math.pi / 2.0),  # south, faces north
        (Point(origin.x + room_width - inset_m, cy), math.pi),  # east, faces west
        (Point(cx, origin.y + room_height - inset_m), -math.pi / 2.0),  # north
        (Point(origin.x + inset_m, cy), 0.0),  # west, faces east
    ]
    return [
        Anchor(
            position=position,
            boresight_rad=boresight,
            num_antennas=num_antennas,
            name=f"AP{k + 1}",
        )
        for k, (position, boresight) in enumerate(placements)
    ]
