"""Reflector materials: reflection, scattering and transmission behaviour.

The paper's environment is "full of metallic objects, like robotic
equipment, large metal cupboards" (Section 7) -- i.e. strong but *non-ideal*
reflectors.  Section 5.4 builds on exactly that non-ideality: real
reflectors scatter, so reflected peaks are spatially spread out while the
direct path stays peaky.  A material here therefore carries:

* ``reflectivity``: complex amplitude coefficient of the specular bounce
  (negative real part models the phase inversion of a conductor).
* ``scattering_fraction``: share of the reflected energy that leaves as
  diffuse scatter around the specular point instead of in it.
* ``scattering_spread_m``: spatial extent of the scatter cluster along the
  reflector face.
* ``transmission``: amplitude coefficient of the through-path (0 for a
  metal cupboard, close to 1 for a thin partition).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Material:
    """Electromagnetic surface behaviour of a reflector or obstruction."""

    name: str
    reflectivity: complex
    scattering_fraction: float
    scattering_spread_m: float
    transmission: float

    def __post_init__(self):
        if abs(self.reflectivity) > 1.0 + 1e-9:
            raise ConfigurationError(
                f"{self.name}: |reflectivity| must be <= 1"
            )
        if not 0.0 <= self.scattering_fraction <= 1.0:
            raise ConfigurationError(
                f"{self.name}: scattering_fraction must be in [0, 1]"
            )
        if self.scattering_spread_m < 0.0:
            raise ConfigurationError(
                f"{self.name}: scattering_spread_m must be >= 0"
            )
        if not 0.0 <= self.transmission <= 1.0:
            raise ConfigurationError(
                f"{self.name}: transmission must be in [0, 1]"
            )

    @property
    def specular_amplitude(self) -> complex:
        """Amplitude coefficient of the coherent specular component."""
        return self.reflectivity * (1.0 - self.scattering_fraction)

    @property
    def scattered_amplitude(self) -> float:
        """Total amplitude budget of the diffuse scatter cluster."""
        return abs(self.reflectivity) * self.scattering_fraction


#: Reinforced concrete / brick wall: moderate reflection, some scatter,
#: strong attenuation through.
CONCRETE = Material(
    name="concrete",
    reflectivity=-0.55 + 0.0j,
    scattering_fraction=0.35,
    scattering_spread_m=0.5,
    transmission=0.12,
)

#: Interior drywall partition: weak reflector, lets most energy through.
DRYWALL = Material(
    name="drywall",
    reflectivity=-0.30 + 0.0j,
    scattering_fraction=0.30,
    scattering_spread_m=0.4,
    transmission=0.65,
)

#: Sheet metal (cupboards, robot chassis): near-perfect mirror, opaque,
#: with the surface irregularity that drives the paper's entropy insight.
METAL = Material(
    name="metal",
    reflectivity=-0.92 + 0.0j,
    scattering_fraction=0.40,
    scattering_spread_m=0.6,
    transmission=0.0,
)

#: Glass screen/window: modest reflection, mostly transparent.
GLASS = Material(
    name="glass",
    reflectivity=-0.40 + 0.0j,
    scattering_fraction=0.15,
    scattering_spread_m=0.2,
    transmission=0.80,
)

#: Human body / furniture padding: absorbs most incident energy.
ABSORBER = Material(
    name="absorber",
    reflectivity=-0.15 + 0.0j,
    scattering_fraction=0.60,
    scattering_spread_m=0.5,
    transmission=0.30,
)

#: Registry by name, for configuration files and examples.
MATERIALS = {
    m.name: m for m in (CONCRETE, DRYWALL, METAL, GLASS, ABSORBER)
}


def material_by_name(name: str) -> Material:
    """Look up a built-in material.

    Raises:
        ConfigurationError: for unknown names.
    """
    try:
        return MATERIALS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown material {name!r}; available: {sorted(MATERIALS)}"
        ) from None
