"""Rooms, reflectors and obstructions: the 2-D world the signals live in.

The environment is a rectangular room (the paper's 5 m x 6 m VICON space)
whose four walls reflect, plus free-standing reflectors (metal cupboards,
robot equipment, screens).  Any reflector whose material has zero or low
transmission also acts as an obstruction that attenuates paths crossing it
-- that is how NLOS situations arise, making "the reflections of the tag
overwhelm the direct path" (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import GeometryError
from repro.rf.materials import CONCRETE, METAL, Material
from repro.utils.geometry2d import Point, Segment, segment_intersection


@dataclass(frozen=True)
class Reflector:
    """A planar reflector face with a material.

    Attributes:
        segment: the face in the 2-D plane.
        material: surface behaviour.
        name: optional label for debugging and plots.
    """

    segment: Segment
    material: Material
    name: str = ""

    def blocks(self) -> bool:
        """Whether this face meaningfully attenuates through-paths."""
        return self.material.transmission < 0.999


@dataclass
class Environment:
    """A room plus its contents.

    Attributes:
        width: room extent along x [m].
        height: room extent along y [m].
        origin: coordinates of the room's lower-left corner.
        wall_material: material of the four boundary walls.
        reflectors: free-standing reflector faces inside the room.
    """

    width: float
    height: float
    origin: Point = field(default_factory=lambda: Point(0.0, 0.0))
    wall_material: Material = CONCRETE
    reflectors: List[Reflector] = field(default_factory=list)

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0:
            raise GeometryError("room dimensions must be positive")
        self._walls = self._build_walls()

    def _build_walls(self) -> List[Reflector]:
        o = self.origin
        corners = [
            o,
            Point(o.x + self.width, o.y),
            Point(o.x + self.width, o.y + self.height),
            Point(o.x, o.y + self.height),
        ]
        names = ["south", "east", "north", "west"]
        walls = []
        for k in range(4):
            walls.append(
                Reflector(
                    segment=Segment(corners[k], corners[(k + 1) % 4]),
                    material=self.wall_material,
                    name=f"wall-{names[k]}",
                )
            )
        return walls

    # -- queries ------------------------------------------------------------

    @property
    def walls(self) -> List[Reflector]:
        """The four boundary walls."""
        return list(self._walls)

    def all_faces(self) -> List[Reflector]:
        """Walls followed by interior reflectors."""
        return self.walls + list(self.reflectors)

    def bounds(self) -> Tuple[float, float, float, float]:
        """Room rectangle as ``(x_min, x_max, y_min, y_max)``."""
        return (
            self.origin.x,
            self.origin.x + self.width,
            self.origin.y,
            self.origin.y + self.height,
        )

    def contains(self, p: Point, margin: float = 0.0) -> bool:
        """Whether ``p`` is inside the room, ``margin`` away from walls."""
        x_min, x_max, y_min, y_max = self.bounds()
        return (
            x_min + margin <= p.x <= x_max - margin
            and y_min + margin <= p.y <= y_max - margin
        )

    def add_reflector(
        self,
        a: Point,
        b: Point,
        material: Material = METAL,
        name: str = "",
    ) -> Reflector:
        """Add an interior reflector face and return it."""
        for endpoint in (a, b):
            if not self.contains(endpoint):
                raise GeometryError(
                    f"reflector endpoint {tuple(endpoint)} outside the room"
                )
        reflector = Reflector(segment=Segment(a, b), material=material, name=name)
        self.reflectors.append(reflector)
        return reflector

    # -- obstruction handling ---------------------------------------------

    def transmission_along(
        self,
        a: Point,
        b: Point,
        ignore: Sequence[Reflector] = (),
    ) -> float:
        """Amplitude factor a straight path from ``a`` to ``b`` keeps after
        punching through every blocking face it crosses.

        Faces listed in ``ignore`` are skipped; the ray tracer uses this to
        avoid counting the reflector a path is bouncing off as blocking it.
        Walls are not tested: both endpoints are indoors, so a direct
        segment between them cannot cross a boundary wall.
        """
        path = Segment(a, b) if (b - a).norm() > 1e-12 else None
        if path is None:
            return 1.0
        ignored = set(id(r) for r in ignore)
        factor = 1.0
        for reflector in self.reflectors:
            if id(reflector) in ignored or not reflector.blocks():
                continue
            hit = segment_intersection(path, reflector.segment)
            if hit is None:
                continue
            # A hit at the very endpoint means the path starts/ends on the
            # face (e.g. the bounce point itself); that is not a crossing.
            if (hit - a).norm() < 1e-9 or (hit - b).norm() < 1e-9:
                continue
            factor *= reflector.material.transmission
        return factor

    def line_of_sight(self, a: Point, b: Point) -> bool:
        """Whether the straight path keeps most of its energy (no opaque
        face crossed)."""
        return self.transmission_along(a, b) > 0.5
