"""Local-oscillator model: the random phase offsets BLoc must defeat.

Every BLE device synthesises its carrier with a PLL-based local oscillator.
Retuning to a new channel re-locks the PLL at an arbitrary phase, so each
hop gives the device a fresh uniform phase offset (paper Section 5.1).
Crucially (footnote 3), all antennas of one anchor share one oscillator, so
the offset is per *device* per *retune*, not per antenna -- the property
that keeps angle-of-arrival usable and makes Eq. 10's cancellation work.

The model optionally adds slow phase drift within a dwell, bounding how
"simultaneous" the two packets of one connection event must be.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngLike, make_rng


@dataclass
class Oscillator:
    """Carrier phase state of one device.

    Attributes:
        name: device label (for debugging).
        drift_std_rad_per_s: standard deviation of the phase random walk
            while dwelling on one channel (0 = ideal dwell).
        frequency_offset_hz: constant carrier frequency offset of this
            device (crystal ppm error); informational for IQ simulations.
    """

    name: str = ""
    drift_std_rad_per_s: float = 0.0
    frequency_offset_hz: float = 0.0
    rng: RngLike = None
    _phase: float = field(init=False, default=0.0)
    _generator: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self):
        if self.drift_std_rad_per_s < 0:
            raise ConfigurationError("drift std must be >= 0")
        self._generator = make_rng(self.rng)
        self.retune()

    def retune(self) -> float:
        """Lock onto a (new) channel: draw a fresh uniform phase offset."""
        self._phase = float(
            self._generator.uniform(-np.pi, np.pi)
        )
        return self._phase

    def phase_offset(self, elapsed_s: float = 0.0) -> float:
        """Current phase offset, ``elapsed_s`` after the last retune.

        Drift is modelled as a Brownian increment; querying twice with the
        same ``elapsed_s`` inside one dwell returns different draws, so
        callers sample once per packet.
        """
        if elapsed_s < 0:
            raise ConfigurationError("elapsed time must be >= 0")
        phase = self._phase
        if self.drift_std_rad_per_s > 0 and elapsed_s > 0:
            phase += float(
                self._generator.normal(
                    0.0, self.drift_std_rad_per_s * np.sqrt(elapsed_s)
                )
            )
        return phase

    def phasor(self, elapsed_s: float = 0.0) -> complex:
        """``e^{j phase_offset}`` for multiplying onto a channel."""
        return complex(np.exp(1j * self.phase_offset(elapsed_s)))
