"""Propagation paths: the geometric rays the channel model sums over.

A path is fully described by its length, its complex gain (everything that
multiplies the ``e^{-j 2 pi f d / c}`` phasor: spreading loss, reflection
coefficients, obstruction losses) and bookkeeping about how it was formed.
The channel at frequency ``f`` is then Eq. 2 of the paper:

    h(f) = sum_paths gain_p * exp(-j 2 pi f d_p / c)

where ``gain_p`` already includes the ``A_p / d_p`` spreading factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.utils.geometry2d import Point


class PathKind:
    """Classification of how a propagation path was formed."""

    DIRECT = "direct"
    SPECULAR = "specular"
    SCATTER = "scatter"


@dataclass(frozen=True)
class PropagationPath:
    """One ray from a transmitter to a receiver.

    Attributes:
        length_m: total travelled distance.
        gain: complex amplitude (includes spreading and reflection losses).
        kind: one of :class:`PathKind`.
        bounce_point: reflection/scatter point, if any.
        reflector_name: face the path bounced off, if any.
    """

    length_m: float
    gain: complex
    kind: str = PathKind.DIRECT
    bounce_point: Optional[Point] = None
    reflector_name: str = ""

    def phasor(self, frequency_hz) -> np.ndarray:
        """Complex channel contribution of this path at the frequencies."""
        f = np.asarray(frequency_hz, dtype=float)
        return self.gain * np.exp(
            -2j * np.pi * f * self.length_m / SPEED_OF_LIGHT
        )

    def delay_s(self) -> float:
        """Propagation delay of the path."""
        return self.length_m / SPEED_OF_LIGHT


def paths_to_channel(
    paths: Sequence[PropagationPath], frequency_hz
) -> np.ndarray:
    """Sum path phasors into a channel value per frequency (Eq. 2).

    Args:
        paths: the rays between one tx/rx pair.
        frequency_hz: scalar or array of frequencies.

    Returns:
        Complex channel, with the same shape as ``frequency_hz``.
    """
    f = np.atleast_1d(np.asarray(frequency_hz, dtype=float))
    if not paths:
        return np.zeros(f.shape, dtype=complex) if f.size > 1 else np.zeros(
            (), dtype=complex
        )
    lengths = np.array([p.length_m for p in paths])
    gains = np.array([p.gain for p in paths], dtype=complex)
    phases = -2j * np.pi * np.outer(f, lengths) / SPEED_OF_LIGHT
    h = (gains[None, :] * np.exp(phases)).sum(axis=1)
    if np.isscalar(frequency_hz) or np.asarray(frequency_hz).ndim == 0:
        return h[0]
    return h


def dominant_path(paths: Sequence[PropagationPath]) -> PropagationPath:
    """The strongest path by |gain| (for diagnostics)."""
    if not paths:
        raise ValueError("no paths")
    return max(paths, key=lambda p: abs(p.gain))


def shortest_path(paths: Sequence[PropagationPath]) -> PropagationPath:
    """The geometrically shortest path (the 'direct path' heuristic)."""
    if not paths:
        raise ValueError("no paths")
    return min(paths, key=lambda p: p.length_m)


def total_power(paths: Sequence[PropagationPath]) -> float:
    """Sum of per-path powers (incoherent)."""
    return float(sum(abs(p.gain) ** 2 for p in paths))
