"""Channel synthesis: geometry in, complex channels out (paper Eq. 2).

:class:`ChannelSimulator` is the bridge between the ray tracer and
everything downstream.  Given an :class:`~repro.rf.environment.Environment`
it produces the *true physical* channel ``h`` between any two points at any
set of frequencies -- no oscillator offsets, no noise; those are applied by
the measurement layer (:mod:`repro.sim.measurement`) and the radio front
end (:mod:`repro.sdr.frontend`), which own the imperfections.

Paths depend only on geometry, so they are memoised per (tx, rx) pair;
sweeping 40 BLE channels re-uses one trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rf.antenna import Anchor
from repro.rf.environment import Environment
from repro.rf.imaging import ImagingConfig, trace_paths
from repro.rf.paths import PropagationPath, paths_to_channel
from repro.utils.geometry2d import Point


def _key(p: Point) -> Tuple[float, float]:
    return (round(p.x, 9), round(p.y, 9))


@dataclass
class ChannelSimulator:
    """Synthesises physical channels over an environment.

    Attributes:
        environment: the room and its contents.
        imaging: ray-tracing configuration.
    """

    environment: Environment
    imaging: ImagingConfig = field(default_factory=ImagingConfig)
    _path_cache: Dict[tuple, List[PropagationPath]] = field(
        init=False, default_factory=dict, repr=False
    )

    def paths(self, tx: Point, rx: Point) -> List[PropagationPath]:
        """Propagation paths from ``tx`` to ``rx`` (memoised).

        Reciprocity holds in this model (every mechanism is symmetric), so
        the cache is keyed on the unordered point pair.
        """
        key = tuple(sorted([_key(tx), _key(rx)]))
        cached = self._path_cache.get(key)
        if cached is None:
            cached = trace_paths(self.environment, tx, rx, self.imaging)
            self._path_cache[key] = cached
        return cached

    def clear_cache(self) -> None:
        """Drop memoised paths (call after mutating the environment)."""
        self._path_cache.clear()

    def channel(
        self, tx: Point, rx: Point, frequency_hz
    ) -> np.ndarray:
        """Physical channel between two points at given frequencies.

        Args:
            tx: transmitter position.
            rx: receiver position.
            frequency_hz: scalar or array of carrier frequencies.

        Returns:
            Complex channel with the shape of ``frequency_hz``.
        """
        return paths_to_channel(self.paths(tx, rx), frequency_hz)

    def channels_to_anchor(
        self, tx: Point, anchor: Anchor, frequencies_hz: Sequence[float]
    ) -> np.ndarray:
        """Channels from ``tx`` to every antenna of ``anchor``.

        Returns:
            Complex array of shape ``(num_antennas, num_frequencies)``.
        """
        freqs = np.asarray(list(frequencies_hz), dtype=float)
        out = np.empty((anchor.num_antennas, freqs.size), dtype=complex)
        for j, rx in enumerate(anchor.antenna_positions()):
            out[j] = np.atleast_1d(self.channel(tx, rx, freqs))
        return out

    def anchor_to_anchor(
        self,
        tx_anchor: Anchor,
        rx_anchor: Anchor,
        frequencies_hz: Sequence[float],
        tx_antenna: int = 0,
    ) -> np.ndarray:
        """Channels from one antenna of ``tx_anchor`` to all antennas of
        ``rx_anchor`` -- the overheard master-response channels of Fig. 5.

        Returns:
            Complex array of shape ``(num_rx_antennas, num_frequencies)``.
        """
        tx = tx_anchor.antenna_position(tx_antenna)
        return self.channels_to_anchor(tx, rx_anchor, frequencies_hz)

    def rssi_dbm(
        self,
        tx: Point,
        rx: Point,
        frequency_hz: float,
        tx_power_dbm: float = 0.0,
    ) -> float:
        """Received signal strength for the RSSI baseline.

        The multipath channel magnitude directly gives the fade: this is
        exactly the |h| quantity the paper's Section 2.2 critiques.
        """
        h = self.channel(tx, rx, frequency_hz)
        magnitude = abs(complex(h))
        if magnitude <= 0:
            return float("-inf")
        return tx_power_dbm + 20.0 * np.log10(magnitude)
