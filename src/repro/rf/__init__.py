"""RF propagation substrate: rooms, rays, antennas, oscillators, noise.

Simulates the 2.4 GHz indoor radio environment the paper measures with
USRPs: image-method multipath with non-ideal (scattering) reflectors,
per-retune oscillator phase offsets, and AWGN.
"""

from repro.rf.antenna import Anchor, default_anchor_ring
from repro.rf.channel_model import ChannelSimulator
from repro.rf.environment import Environment, Reflector
from repro.rf.imaging import ImagingConfig, trace_paths
from repro.rf.materials import (
    ABSORBER,
    CONCRETE,
    DRYWALL,
    GLASS,
    MATERIALS,
    METAL,
    Material,
    material_by_name,
)
from repro.rf.noise import add_awgn, channel_estimation_noise, measure_snr_db
from repro.rf.oscillator import Oscillator
from repro.rf.paths import (
    PathKind,
    PropagationPath,
    dominant_path,
    paths_to_channel,
    shortest_path,
)

__all__ = [
    "ABSORBER",
    "Anchor",
    "CONCRETE",
    "ChannelSimulator",
    "DRYWALL",
    "Environment",
    "GLASS",
    "ImagingConfig",
    "MATERIALS",
    "METAL",
    "Material",
    "Oscillator",
    "PathKind",
    "PropagationPath",
    "Reflector",
    "add_awgn",
    "channel_estimation_noise",
    "default_anchor_ring",
    "dominant_path",
    "material_by_name",
    "measure_snr_db",
    "paths_to_channel",
    "shortest_path",
    "trace_paths",
]
