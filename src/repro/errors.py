"""Exception hierarchy for the repro library.

Every exception raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish specific failure modes.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class ProtocolError(ReproError):
    """A BLE protocol rule was violated (bad channel index, PDU, CRC...)."""


class CrcError(ProtocolError):
    """A received PDU failed its CRC check."""

    def __init__(self, expected: int, actual: int):
        super().__init__(
            f"CRC mismatch: expected 0x{expected:06X}, got 0x{actual:06X}"
        )
        self.expected = expected
        self.actual = actual


class DemodulationError(ReproError):
    """The receiver could not recover a packet from the IQ stream."""


class CsiExtractionError(ReproError):
    """CSI could not be measured from a captured packet."""


class GeometryError(ReproError):
    """Invalid geometric configuration (degenerate room, antenna layout...)."""


class MeasurementError(ReproError):
    """A measurement campaign produced inconsistent or missing data."""


class LocalizationError(ReproError):
    """The localization pipeline could not produce a position estimate."""


class ContractViolation(ReproError):
    """A runtime shape/dtype contract (:mod:`repro.analysis.contracts`)
    was broken: an array argument's shape, dtype, or cross-parameter
    dimension binding does not match the declared invariant."""


class ConcurrencyViolation(ReproError):
    """A runtime concurrency contract (:mod:`repro.analysis.runtime_locks`)
    was broken: a lock-order inversion against the observed acquisition
    DAG, a guarded field written without its lock held, or a
    ``@holds_lock`` method entered lock-free."""
