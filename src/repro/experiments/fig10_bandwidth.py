"""Fig. 10 reproduction: localization error vs stitched bandwidth.

The paper sweeps the emulated aperture over {2, 20, 40, 80} MHz and finds
the median error shrinking from 160 cm to 86 cm -- the value of BLoc's
band stitching (Section 8.5).  Error bars in the paper are standard
deviations; we report those too.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.common import (
    PAPER,
    ExperimentResult,
    ExperimentRow,
    run_scheme,
    stats_of,
)

#: The sweep points: (label, transform key, paper median cm).
SWEEP = (
    ("2 MHz", "bw2", PAPER["bw_2mhz"]),
    ("20 MHz", "bw20", PAPER["bw_20mhz"]),
    ("40 MHz", "bw40", PAPER["bw_40mhz"]),
    ("80 MHz", "bw80", PAPER["bw_80mhz"]),
)


def run(num_positions: Optional[int] = None) -> ExperimentResult:
    """Reproduce the bandwidth sweep."""
    rows = []
    medians = []
    for label, transform, paper_median in SWEEP:
        stats = stats_of(
            run_scheme("bloc", transform, num_positions=num_positions)
        )
        medians.append(stats.median_m())
        rows.append(
            ExperimentRow(
                f"BLoc median @ {label}",
                100 * stats.median_m(),
                paper_median,
            )
        )
        rows.append(
            ExperimentRow(
                f"BLoc error std @ {label}",
                100 * float(np.std(stats.errors_m)),
                None,
            )
        )
    rows.append(
        ExperimentRow(
            "median ratio 2 MHz / 80 MHz",
            medians[0] / medians[-1],
            PAPER["bw_2mhz"] / PAPER["bw_80mhz"],
            units="x",
        )
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="Effect of stitched bandwidth on median error",
        rows=rows,
        notes=[
            "Required shape: error decreases monotonically with "
            "bandwidth, roughly halving from 2 MHz to 80 MHz.",
        ],
    )
