"""Figure-by-figure reproduction runners for the paper's evaluation.

Each ``figXX`` module exposes a ``run(...) -> ExperimentResult`` that the
benchmark harness executes and whose report feeds EXPERIMENTS.md.  Run
them all from the command line with ``python -m repro.experiments``.
"""

from repro.experiments import (
    ablations,
    export,
    fig04_gfsk,
    fig06_profiles,
    fig08_micro,
    fig09_accuracy,
    fig10_bandwidth,
    fig11_interference,
    fig12_multipath,
    fig13_location,
)
from repro.experiments.common import (
    PAPER,
    ExperimentResult,
    ExperimentRow,
    default_dataset,
    default_testbed,
    run_scheme,
)

#: Registry of every experiment, in paper order.
EXPERIMENTS = {
    "fig4": fig04_gfsk.run,
    "fig6": fig06_profiles.run,
    "fig8": fig08_micro.run,
    "fig9": fig09_accuracy.run,
    "fig10": fig10_bandwidth.run,
    "fig11": fig11_interference.run,
    "fig12": fig12_multipath.run,
    "fig13": fig13_location.run,
    "ablations": ablations.run,
}

__all__ = [
    "EXPERIMENTS",
    "PAPER",
    "export",
    "ExperimentResult",
    "ExperimentRow",
    "default_dataset",
    "default_testbed",
    "run_scheme",
]
