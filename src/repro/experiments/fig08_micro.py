"""Fig. 8 reproduction: the three microbenchmarks.

* Fig. 8a -- CSI phase stability: repeat the IQ-fidelity CSI measurement
  of subbands {6, 16, 26, 36} nine times and check the per-band phase
  stays consistent across time.
* Fig. 8b -- offset cancellation: in a LOS, low-multipath setting the
  corrected cross-band phase must be (piecewise) linear in frequency,
  while the uncorrected phase is random per band.
* Fig. 8c -- a sample multipath profile over X-Y: several peaks exist and
  the strongest neighbourhood contains the true location after scoring.
"""

from __future__ import annotations

import numpy as np

from repro.ble.channels import ChannelMap
from repro.core import (
    compute_likelihood_map,
    correct_phase_offsets,
    find_peaks,
    score_peaks,
)
from repro.experiments.common import (
    ExperimentResult,
    ExperimentRow,
    default_testbed,
    grid_resolution,
)
from repro.sim import ChannelMeasurementModel, IqMeasurementModel
from repro.sim.testbed import open_room_testbed
from repro.utils.complexutils import wrap_phase
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D

#: Subbands highlighted by the paper's Fig. 8a.
FIG8A_SUBBANDS = (6, 16, 26, 36)


def run_csi_stability(
    tag: Point = Point(0.5, 0.8),
    repeats: int = 9,
    seed: int = 8,
) -> ExperimentResult:
    """Fig. 8a: per-band CSI phase consistency over repeated measurements.

    Runs the *IQ-fidelity* pipeline (GFSK packets, correlation acquisition,
    tone CSI) on the four highlighted subbands.  Raw per-packet phases are
    garbled by the random oscillator offsets, so -- like the paper, which
    plots stable phases -- we look at the offset-corrected channels and
    report the worst per-band circular phase standard deviation.
    """
    testbed = open_room_testbed()
    model = IqMeasurementModel(
        testbed=testbed,
        seed=seed,
        snr_db=35.0,
        channel_map=ChannelMap(FIG8A_SUBBANDS),
    )
    phases = []  # (repeat, band) corrected phase at anchor 1, antenna 0
    for r in range(repeats):
        observations = model.measure(tag, round_index=r)
        corrected = correct_phase_offsets(observations)
        phases.append(np.angle(corrected.alpha[1, 0, :]))
    phases = np.array(phases)  # (repeats, bands)
    # Circular std per band across repeats.
    resultant = np.abs(np.mean(np.exp(1j * phases), axis=0))
    circular_std = np.sqrt(-2.0 * np.log(np.maximum(resultant, 1e-12)))
    worst_deg = float(np.degrees(circular_std.max()))
    return ExperimentResult(
        experiment_id="fig8a",
        title="CSI measurement stability over time (IQ fidelity)",
        rows=[
            ExperimentRow(
                label=f"worst per-band phase std over {repeats} repeats",
                measured=worst_deg,
                paper=None,
                units="deg",
            ),
        ],
        notes=[
            "Paper plots visually constant phases across 9 instants; a "
            "small circular std reproduces that.",
        ],
    )


def run_offset_cancellation(
    seed: int = 8, tag: Point = Point(1.2, 0.0)
) -> ExperimentResult:
    """Fig. 8b: corrected phase is linear across subbands, raw is not.

    A phase that is linear in frequency has *constant* adjacent-band
    increments; random per-band offsets make the increments uniform over
    the circle.  We therefore report the circular standard deviation of
    the adjacent-band phase increments: small for BLoc's corrected
    channels, near the uniform limit (~104 deg) without correction.
    """
    testbed = open_room_testbed()
    model = ChannelMeasurementModel(
        testbed=testbed,
        seed=seed,
        snr_db=30.0,
        oscillator_drift_std=10.0,
        calibration_error_m=0.0,
    )
    observations = model.measure(tag)
    corrected = correct_phase_offsets(observations)

    def increment_spread_deg(phase_wrapped: np.ndarray) -> float:
        increments = wrap_phase(np.diff(phase_wrapped))
        resultant = abs(np.mean(np.exp(1j * increments)))
        circular_std = np.sqrt(-2.0 * np.log(max(resultant, 1e-12)))
        return float(np.degrees(circular_std))

    slave = 1  # a slave anchor with LOS to both tag and master
    raw_phase = np.angle(observations.tag_to_anchor[slave, 0, :])
    corrected_phase = np.angle(corrected.alpha[slave, 0, :])
    return ExperimentResult(
        experiment_id="fig8b",
        title="Phase across subbands with / without offset correction",
        rows=[
            ExperimentRow(
                label="phase-increment spread, no correction",
                measured=increment_spread_deg(raw_phase),
                paper=None,
                units="deg",
            ),
            ExperimentRow(
                label="phase-increment spread, BLoc correction",
                measured=increment_spread_deg(corrected_phase),
                paper=None,
                units="deg",
            ),
        ],
        notes=[
            "Paper's red (BLoc) curve is linear in frequency, the blue "
            "(uncorrected) one random: the corrected increment spread "
            "must be far below the uncorrected (~uniform, >90 deg) one.",
        ],
    )


def run_multipath_profile(
    tag: Point = Point(-1.2, 1.1), seed: int = 9
) -> ExperimentResult:
    """Fig. 8c: a sample multipath profile with several candidate peaks."""
    testbed = default_testbed()
    model = ChannelMeasurementModel(testbed=testbed, seed=seed)
    observations = model.measure(tag)
    corrected = correct_phase_offsets(observations)
    x_min, x_max, y_min, y_max = testbed.environment.bounds()
    grid = Grid2D(x_min, x_max, y_min, y_max, grid_resolution())
    likelihood = compute_likelihood_map(corrected, grid)
    peaks = find_peaks(likelihood.combined, grid)
    scored = score_peaks(
        peaks, likelihood.combined, grid, corrected.anchors
    )
    winner_error = (scored[0].peak.position - tag).norm()
    return ExperimentResult(
        experiment_id="fig8c",
        title="Sample multipath profile over X-Y",
        rows=[
            ExperimentRow(
                label="candidate peaks in the combined profile",
                measured=float(len(peaks)),
                paper=None,
                units="",
            ),
            ExperimentRow(
                label="error of the best-scored peak",
                measured=100.0 * winner_error,
                paper=None,
            ),
        ],
        notes=[
            "Paper's profile shows multiple maxima (reflections) with the "
            "predicted and actual location in the same neighbourhood.",
        ],
    )


def run() -> ExperimentResult:
    """All three Fig. 8 microbenchmarks merged into one report."""
    merged = ExperimentResult(
        experiment_id="fig8",
        title="Microbenchmarks (Fig. 8a/8b/8c)",
    )
    for sub in (
        run_csi_stability(),
        run_offset_cancellation(),
        run_multipath_profile(),
    ):
        merged.rows.extend(sub.rows)
        merged.notes.extend(sub.notes)
    return merged
