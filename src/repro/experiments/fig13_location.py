"""Fig. 13 reproduction: error as a function of tag location.

The paper bins RMSE over the room and observes that errors concentrate in
the corners -- near +-90 deg where the array's sin(theta) response flattens
-- with no other consistent spatial pattern.  We reproduce the binned RMSE
map and report the corner-to-interior RMSE ratio.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    ExperimentRow,
    default_testbed,
    run_scheme,
)
from repro.sim.metrics import spatial_rmse_map


def corner_and_interior_rmse(
    x_edges: np.ndarray, y_edges: np.ndarray, rmse: np.ndarray
) -> Tuple[float, float]:
    """RMSE aggregated over corner bins vs interior bins."""
    rows, cols = rmse.shape
    corner_mask = np.zeros_like(rmse, dtype=bool)
    span_r = max(rows // 3, 1)
    span_c = max(cols // 3, 1)
    for r0 in (slice(0, span_r), slice(rows - span_r, rows)):
        for c0 in (slice(0, span_c), slice(cols - span_c, cols)):
            corner_mask[r0, c0] = True
    valid = np.isfinite(rmse)
    corner = rmse[corner_mask & valid]
    interior = rmse[~corner_mask & valid]
    corner_rmse = float(np.sqrt(np.mean(corner**2))) if corner.size else np.nan
    interior_rmse = (
        float(np.sqrt(np.mean(interior**2))) if interior.size else np.nan
    )
    return corner_rmse, interior_rmse


def run(num_positions: Optional[int] = None) -> ExperimentResult:
    """Reproduce the spatial error map analysis."""
    run_bloc = run_scheme("bloc", num_positions=num_positions)
    testbed = default_testbed()
    x_edges, y_edges, rmse = spatial_rmse_map(
        run_bloc.truths(),
        run_bloc.errors(),
        bounds=testbed.environment.bounds(),
        bin_size_m=1.0,
    )
    corner, interior = corner_and_interior_rmse(x_edges, y_edges, rmse)
    return ExperimentResult(
        experiment_id="fig13",
        title="Correlation of accuracy with tag location",
        rows=[
            ExperimentRow("corner-region RMSE", 100 * corner, None),
            ExperimentRow("interior RMSE", 100 * interior, None),
            ExperimentRow(
                "corner / interior RMSE ratio",
                corner / interior if interior > 0 else float("inf"),
                None,
                units="x",
            ),
        ],
        notes=[
            "Paper: errors are 'particularly high in the corner "
            "locations' (near-90-degree angles); expect a ratio > 1.",
        ],
    )
