"""Fig. 11 reproduction: interference avoidance by channel subsampling.

BLE blacklists channels that collide with Wi-Fi; Section 8.6 shows that
*subsampling* the 40 channels by 2x or 4x -- keeping the full 80 MHz span
but leaving gaps -- has almost no effect on accuracy, because gaps only
introduce aliasing at distances beyond indoor scales (c / gap >= 15 m for
gaps up to one Wi-Fi channel).
"""

from __future__ import annotations

from typing import Optional

from repro.core.steering import aliasing_distance_m
from repro.experiments.common import (
    PAPER,
    ExperimentResult,
    ExperimentRow,
    run_scheme,
    stats_of,
)

#: The sweep: (label, transform key, approximate band count with 37 data
#: channels).
SWEEP = (
    ("all 37 subbands", "full", 37),
    ("every 2nd subband (19)", "sub2", 19),
    ("every 4th subband (10)", "sub4", 10),
)


def run(num_positions: Optional[int] = None) -> ExperimentResult:
    """Reproduce the channel-subsampling experiment."""
    rows = []
    medians = []
    for label, transform, bands in SWEEP:
        stats = stats_of(
            run_scheme("bloc", transform, num_positions=num_positions)
        )
        medians.append(stats.median_m())
        paper = PAPER["bloc_median"] if transform == "full" else None
        rows.append(
            ExperimentRow(f"BLoc median, {label}", 100 * stats.median_m(), paper)
        )
    rows.append(
        ExperimentRow(
            "median ratio x4-subsampled / full",
            medians[-1] / medians[0],
            1.0,  # paper: "almost no effect"
            units="x",
        )
    )
    rows.append(
        ExperimentRow(
            "aliasing distance for 8 MHz gaps",
            aliasing_distance_m(8e6),
            37.5,  # c / 8 MHz
            units="m",
        )
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Interference avoidance: subsampled channels over 80 MHz",
        rows=rows,
        notes=[
            "Required shape: subsampling by 2x / 4x leaves the median "
            "nearly unchanged (any change is SNR loss, not aliasing).",
        ],
    )
