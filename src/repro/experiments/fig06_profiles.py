"""Fig. 6 reproduction: the three likelihood-profile views.

Fig. 6 shows, for one tag placement, (a) the angle-only likelihood of a
single anchor mapped over space, (b) the relative-distance (hyperbolic)
likelihood, and (c) the joint Eq. 17 map combined over anchors, peaking
at the true location.  We reproduce all three and report how far each
view's argmax lands from the truth -- angle-only and distance-only views
are expected to be ambiguous (ridge/hyperbola shaped), the joint map
tight.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    compute_likelihood_map,
    correct_phase_offsets,
)
from repro.core.correction import CorrectedChannels
from repro.experiments.common import (
    ExperimentResult,
    ExperimentRow,
    default_testbed,
    grid_resolution,
)
from repro.sim import ChannelMeasurementModel
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D


def _argmax_position(values: np.ndarray, grid: Grid2D) -> Point:
    row, col = np.unravel_index(int(np.argmax(values)), values.shape)
    return grid.point_at(int(row), int(col))


def _restricted(corrected: CorrectedChannels, bands) -> CorrectedChannels:
    return CorrectedChannels(
        anchors=corrected.anchors,
        master_index=corrected.master_index,
        frequencies_hz=corrected.frequencies_hz[bands],
        alpha=corrected.alpha[:, :, bands],
        anchor_baselines_m=corrected.anchor_baselines_m,
    )


def run(tag: Point = Point(0.9, 0.6), seed: int = 5) -> ExperimentResult:
    """Reproduce Fig. 6's three views for one tag placement."""
    testbed = default_testbed()
    model = ChannelMeasurementModel(testbed=testbed, seed=seed)
    observations = model.measure(tag)
    corrected = correct_phase_offsets(observations)
    x_min, x_max, y_min, y_max = testbed.environment.bounds()
    grid = Grid2D(x_min, x_max, y_min, y_max, grid_resolution())

    # (a) Angle-only view: a single band kills the distance information,
    # and a single anchor leaves only its AoA ridge.
    single_band = _restricted(corrected, [corrected.num_bands // 2])
    angle_map = compute_likelihood_map(single_band, grid).per_anchor[1]
    angle_error = (_argmax_position(angle_map, grid) - tag).norm()

    # (b) Distance-only view: one antenna per anchor removes the angle
    # information; the remaining relative distance draws a hyperbola.
    one_antenna = CorrectedChannels(
        anchors=[a.truncated(1) for a in corrected.anchors],
        master_index=corrected.master_index,
        frequencies_hz=corrected.frequencies_hz,
        alpha=corrected.alpha[:, :1, :],
        anchor_baselines_m=corrected.anchor_baselines_m,
    )
    distance_map = compute_likelihood_map(one_antenna, grid).per_anchor[1]
    distance_error = (_argmax_position(distance_map, grid) - tag).norm()

    # (c) Joint view: everything combined (Eq. 17 over all anchors).
    joint = compute_likelihood_map(corrected, grid)
    joint_error = (_argmax_position(joint.combined, grid) - tag).norm()

    return ExperimentResult(
        experiment_id="fig6",
        title="Likelihood profiles: angle-only, distance-only, joint",
        rows=[
            ExperimentRow(
                label="argmax error, single-anchor angle view (a)",
                measured=100.0 * angle_error,
                paper=None,
            ),
            ExperimentRow(
                label="argmax error, single-antenna distance view (b)",
                measured=100.0 * distance_error,
                paper=None,
            ),
            ExperimentRow(
                label="argmax error, joint map (c)",
                measured=100.0 * joint_error,
                paper=None,
            ),
        ],
        notes=[
            "Fig. 6 is qualitative. Expected shape: (a) and (b) are "
            "ambiguous (ridge / hyperbola) so their argmax can be far "
            "off; the joint map (c) should peak near the true location.",
        ],
    )
