"""Run every figure reproduction and print (or save) the full report.

Usage::

    python -m repro.experiments                # print all reports
    python -m repro.experiments fig9 fig10     # selected experiments
    python -m repro.experiments --output EXPERIMENTS.md

``REPRO_EVAL_POINTS`` scales the dataset (default 60; the paper used
1700).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.common import eval_points


def build_report(experiment_ids) -> str:
    """Run the selected experiments and assemble the markdown report."""
    sections = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Reproduction of *BLoc: CSI-based Accurate Localization for BLE "
        "Tags* (CoNEXT 2018).",
        f"Dataset: {eval_points()} simulated tag placements "
        "(`REPRO_EVAL_POINTS` scales this; the paper used 1700).",
        "Absolute numbers come from a physics simulator, not the authors' "
        "testbed; the comparison targets are the paper's *shapes* "
        "(who wins, by what factor, monotonicities).",
        "",
    ]
    for experiment_id in experiment_ids:
        runner = EXPERIMENTS[experiment_id]
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        sections.append(f"## {result.experiment_id}: {result.title}")
        sections.append("")
        sections.append("```")
        sections.append(result.format_report())
        sections.append(f"(ran in {elapsed:.1f}s)")
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the BLoc figure reproductions"
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiment ids (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--output", help="write the report to this file instead of stdout"
    )
    args = parser.parse_args(argv)
    ids = args.experiments or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    report = build_report(ids)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
