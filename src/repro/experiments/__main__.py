"""Run every figure reproduction and print (or save) the full report.

Usage::

    python -m repro.experiments                # print all reports
    python -m repro.experiments fig9 fig10     # selected experiments
    python -m repro.experiments --output EXPERIMENTS.md

``REPRO_EVAL_POINTS`` scales the dataset (default 60; the paper used
1700).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, Optional, Sequence

from repro.experiments import EXPERIMENTS
from repro.experiments.common import eval_points
from repro.obs import get_observer
from repro.obs.ledger import RunLedger, build_run_record


def build_report(
    experiment_ids: Sequence[str],
    timings: Optional[Dict[str, float]] = None,
) -> str:
    """Run the selected experiments and assemble the markdown report.

    When ``timings`` is a dict it is filled with
    ``{experiment_id: elapsed_seconds}`` for the run ledger.
    """
    sections = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Reproduction of *BLoc: CSI-based Accurate Localization for BLE "
        "Tags* (CoNEXT 2018).",
        f"Dataset: {eval_points()} simulated tag placements "
        "(`REPRO_EVAL_POINTS` scales this; the paper used 1700).",
        "Absolute numbers come from a physics simulator, not the authors' "
        "testbed; the comparison targets are the paper's *shapes* "
        "(who wins, by what factor, monotonicities).",
        "",
    ]
    for experiment_id in experiment_ids:
        runner = EXPERIMENTS[experiment_id]
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        if timings is not None:
            timings[experiment_id] = elapsed
        sections.append(f"## {result.experiment_id}: {result.title}")
        sections.append("")
        sections.append("```")
        sections.append(result.format_report())
        sections.append(f"(ran in {elapsed:.1f}s)")
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the BLoc figure reproductions"
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"experiment ids (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--output", help="write the report to this file instead of stdout"
    )
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        help="append a RunRecord to this NDJSON run ledger "
        "(default: runs.ndjson, or REPRO_RUNS_LEDGER)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip the run-ledger append",
    )
    args = parser.parse_args(argv)
    ids = args.experiments or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    timings = {}
    report = build_report(ids, timings=timings)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    if not args.no_ledger:
        ledger = RunLedger(args.ledger)
        record = build_run_record(
            "experiments",
            get_observer(),
            label=",".join(ids),
            config={"experiments": ids, "eval_points": eval_points()},
            results={
                f"{exp_id}.elapsed_s": elapsed
                for exp_id, elapsed in timings.items()
            },
            artifacts=[args.output] if args.output else [],
        )
        ledger.append(record)
        print(
            f"[obs] run {record.run_id} appended to {ledger.path}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
