"""Ablations of BLoc's design choices (beyond the paper's figures).

DESIGN.md calls out the decisions worth stress-testing:

* the Eq. 18 peak-selection strategy vs max-likelihood and vs
  shortest-distance (partially covered by Fig. 12);
* the entropy term's sign convention (we implement H as negentropy /
  peakiness; flipping ``b`` negative must hurt);
* the score weights (a, b) = (0.1, 0.05) from Section 7;
* the Eq. 10 phase correction itself (feeding raw channels into Eq. 17
  must collapse accuracy to the aliasing scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core import (
    BlocConfig,
    BlocLocalizer,
    ScoringConfig,
)
from repro.core.correction import CorrectedChannels, anchor_baselines
from repro.core.observations import ChannelObservations
from repro.experiments.common import (
    ExperimentResult,
    ExperimentRow,
    default_dataset,
    grid_resolution,
    run_scheme,
    stats_of,
)
from repro.sim import evaluate


@dataclass
class UncorrectedBloc(BlocLocalizer):
    """BLoc with the Eq. 10 correction disabled: raw channels as alpha.

    The random per-hop offsets then garble the cross-band phase, which is
    exactly the failure mode Section 5.1 describes.
    """

    def correct(self, observations: ChannelObservations) -> CorrectedChannels:
        return CorrectedChannels(
            anchors=list(observations.anchors),
            master_index=observations.master_index,
            frequencies_hz=observations.frequencies_hz.copy(),
            alpha=observations.tag_to_anchor.copy(),
            anchor_baselines_m=np.zeros(observations.num_anchors),
        )


def _bloc_with_scoring(scoring: ScoringConfig) -> BlocLocalizer:
    return BlocLocalizer(
        config=BlocConfig(
            grid_resolution_m=grid_resolution(), scoring=scoring
        )
    )


def run_selection_strategies(
    num_positions: Optional[int] = None,
) -> ExperimentResult:
    """Score vs max-likelihood vs shortest-distance selection."""
    rows = []
    for scheme, label in (
        ("bloc", "Eq. 18 score (BLoc)"),
        ("maxlik", "max-likelihood peak"),
        ("shortest", "shortest-distance peak"),
    ):
        stats = stats_of(run_scheme(scheme, num_positions=num_positions))
        rows.append(
            ExperimentRow(f"median, {label}", 100 * stats.median_m(), None)
        )
    return ExperimentResult(
        experiment_id="ablation-selection",
        title="Peak-selection strategy ablation",
        rows=rows,
        notes=["The Eq. 18 score should be the best of the three."],
    )


def run_entropy_sign(num_positions: Optional[int] = None) -> ExperimentResult:
    """Negentropy convention vs a flipped entropy weight."""
    dataset = default_dataset(num_positions)
    rows = []
    for b, label in ((0.05, "b = +0.05 (paper, negentropy)"),
                     (0.0, "b = 0 (entropy term off)"),
                     (-0.05, "b = -0.05 (flipped sign)")):
        localizer = _bloc_with_scoring(ScoringConfig(entropy_weight=b))
        run = evaluate(localizer, dataset, label=f"b={b}")
        rows.append(
            ExperimentRow(
                f"median, {label}", 100 * run.stats().median_m(), None
            )
        )
    return ExperimentResult(
        experiment_id="ablation-entropy-sign",
        title="Entropy term sign convention",
        rows=rows,
        notes=[
            "DESIGN.md: we read the paper's H as negentropy (peaky = "
            "direct).  Flipping the sign should not improve accuracy.",
        ],
    )


def run_score_weights(num_positions: Optional[int] = None) -> ExperimentResult:
    """Sweep the Eq. 18 weights around the paper's (0.1, 0.05)."""
    dataset = default_dataset(num_positions)
    rows = []
    for a in (0.0, 0.05, 0.1, 0.2, 0.4):
        localizer = _bloc_with_scoring(ScoringConfig(distance_weight=a))
        run = evaluate(localizer, dataset, label=f"a={a}")
        rows.append(
            ExperimentRow(
                f"median, a = {a} (b = 0.05)",
                100 * run.stats().median_m(),
                None,
            )
        )
    return ExperimentResult(
        experiment_id="ablation-weights",
        title="Eq. 18 weight sweep (distance weight a)",
        rows=rows,
        notes=["The paper's a = 0.1 should sit near the optimum."],
    )


def run_correction_off(num_positions: Optional[int] = None) -> ExperimentResult:
    """BLoc with and without the Eq. 10 phase correction."""
    dataset = default_dataset(num_positions)
    with_correction = stats_of(
        run_scheme("bloc", num_positions=num_positions)
    )
    uncorrected = UncorrectedBloc(
        config=BlocConfig(grid_resolution_m=grid_resolution())
    )
    without = evaluate(uncorrected, dataset, label="no-correction").stats()
    return ExperimentResult(
        experiment_id="ablation-correction",
        title="Eq. 10 phase-offset correction on/off",
        rows=[
            ExperimentRow(
                "median, correction on", 100 * with_correction.median_m(), None
            ),
            ExperimentRow(
                "median, correction off", 100 * without.median_m(), None
            ),
            ExperimentRow(
                "degradation factor",
                without.median_m() / with_correction.median_m(),
                None,
                units="x",
            ),
        ],
        notes=[
            "Without correction the cross-band phase is random, so the "
            "error should collapse towards the AoA-only scale or worse.",
        ],
    )


def run(num_positions: Optional[int] = None) -> ExperimentResult:
    """All ablations merged."""
    merged = ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablations",
    )
    for sub in (
        run_selection_strategies(num_positions),
        run_entropy_sign(num_positions),
        run_score_weights(num_positions),
        run_correction_off(num_positions),
    ):
        merged.rows.extend(sub.rows)
        merged.notes.extend(sub.notes)
    return merged
