"""Fig. 4 reproduction: GFSK smoothing vs batched localization bits.

The paper's Fig. 4 contrasts (a) random BLE data, where the Gaussian
filter keeps the instantaneous frequency perpetually in motion, with (b)
BLoc's batched 0/1 runs, where the frequency settles long enough for CSI
measurement.  We quantify the figure: the fraction of symbol time the
transmit frequency sits within 5% of a nominal tone.
"""

from __future__ import annotations

import numpy as np

from repro.ble.gfsk import GfskModulator
from repro.ble.localization import tone_pattern
from repro.experiments.common import ExperimentResult, ExperimentRow
from repro.utils.rng import make_rng

#: Tolerance band around the nominal tone, as a fraction of deviation.
SETTLE_TOLERANCE = 0.05


def stable_fraction(modulator: GfskModulator, bits: np.ndarray) -> float:
    """Fraction of samples whose frequency is within the settle band."""
    levels = modulator.filtered_levels(bits)
    return float(np.mean(np.abs(np.abs(levels) - 1.0) < SETTLE_TOLERANCE))


def run(num_bits: int = 400, run_length: int = 5, seed: int = 4) -> ExperimentResult:
    """Reproduce Fig. 4's comparison.

    Args:
        num_bits: length of the evaluated bit streams.
        run_length: bits per 0/1 run (the figure demonstrates 5).
        seed: RNG seed for the random stream.
    """
    modulator = GfskModulator()
    rng = make_rng(seed)
    random_bits = rng.integers(0, 2, num_bits).astype(np.uint8)
    pairs = max(num_bits // (2 * run_length), 1)
    batched_bits = tone_pattern(run_length, pairs)[:num_bits]
    random_fraction = stable_fraction(modulator, random_bits)
    batched_fraction = stable_fraction(modulator, batched_bits)
    result = ExperimentResult(
        experiment_id="fig4",
        title="GFSK frequency settling: random data vs batched 0/1 runs",
        rows=[
            ExperimentRow(
                label="stable-frequency fraction, random bits",
                measured=100.0 * random_fraction,
                paper=None,
                units="%",
            ),
            ExperimentRow(
                label=f"stable-frequency fraction, {run_length}-bit runs",
                measured=100.0 * batched_fraction,
                paper=None,
                units="%",
            ),
            ExperimentRow(
                label="settling improvement factor",
                measured=(
                    batched_fraction / random_fraction
                    if random_fraction > 0
                    else float("inf")
                ),
                paper=None,
                units="x",
            ),
        ],
        notes=[
            "Fig. 4 is qualitative; the measured fractions quantify it: "
            "batched runs must settle for a large share of the packet "
            "while random data almost never does."
        ],
    )
    return result
