"""Shared infrastructure for the figure-reproduction experiments.

Every experiment runner returns an :class:`ExperimentResult` made of
``paper vs measured`` rows, so the benchmark harness and the
EXPERIMENTS.md generator print identical reports.

Dataset and evaluation-run caching lives here: the Section 8 figures all
evaluate over the *same* measured dataset (like the paper, which records
1700 placements once), so one pytest session builds the dataset once and
each (scheme, transform) evaluation once.

Environment knobs:

* ``REPRO_EVAL_POINTS`` -- number of tag placements (default 60; the
  paper's full scale is 1700, which takes a few hours).
* ``REPRO_GRID_RES`` -- localizer grid resolution in metres (default 0.06).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines import AoaLocalizer, shortest_distance_localizer
from repro.constants import BLE_TOTAL_SPAN_HZ
from repro.core import BlocConfig, BlocLocalizer
from repro.core.observations import ChannelObservations
from repro.sim import (
    ChannelMeasurementModel,
    ErrorStats,
    EvaluationDataset,
    EvaluationRun,
    Testbed,
    build_dataset,
    evaluate,
    evaluate_anchor_subsets,
    vicon_testbed,
)

#: Paper's headline numbers (Section 8), in centimetres.
PAPER = {
    "bloc_median": 86.0,
    "bloc_p90": 170.0,
    "aoa_median": 242.0,
    "aoa_p90": 340.0,
    "bloc3_median": 91.5,
    "bloc3_p90": 175.0,
    "aoa3_median": 247.0,
    "aoa3_p90": 350.0,
    "bloc_3ant_median": 90.0,
    "bloc_3ant_p90": 171.0,
    "aoa_3ant_median": 241.0,
    "aoa_3ant_p90": 320.0,
    "bw_2mhz": 160.0,
    "bw_20mhz": 134.0,
    "bw_40mhz": 110.0,
    "bw_80mhz": 86.0,
    "shortest_median": 195.0,
    "shortest_p90": 331.0,
    "bloc_fig12_p90": 178.0,
}

#: Default evaluation-campaign size (paper: 1700).
DEFAULT_EVAL_POINTS = 60

#: Seed used by all default experiment datasets.
DEFAULT_SEED = 2018  # the paper's year


def eval_points() -> int:
    """Number of evaluation placements, from the environment or default."""
    return int(os.environ.get("REPRO_EVAL_POINTS", DEFAULT_EVAL_POINTS))


def grid_resolution() -> float:
    """Localizer grid resolution, from the environment or default."""
    return float(os.environ.get("REPRO_GRID_RES", 0.06))


@dataclass
class ExperimentRow:
    """One paper-vs-measured comparison line.

    Attributes:
        label: what the line reports.
        paper: the paper's value (None when the figure is qualitative).
        measured: our value.
        units: unit string for the report.
    """

    label: str
    measured: float
    paper: Optional[float] = None
    units: str = "cm"

    def format(self) -> str:
        """Fixed-width report line."""
        paper = f"{self.paper:8.1f}" if self.paper is not None else "       -"
        return (
            f"  {self.label:<44} paper={paper} {self.units:<4} "
            f"measured={self.measured:8.1f} {self.units}"
        )


@dataclass
class ExperimentResult:
    """Everything one figure reproduction produced.

    Attributes:
        experiment_id: e.g. ``"fig9a"``.
        title: human-readable description.
        rows: paper-vs-measured comparisons.
        notes: free-form caveats / observations.
    """

    experiment_id: str
    title: str
    rows: List[ExperimentRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def format_report(self) -> str:
        """Multi-line report block."""
        lines = [f"[{self.experiment_id}] {self.title}"]
        lines.extend(row.format() for row in self.rows)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)

    def measured(self, label: str) -> float:
        """Measured value of the row with the given label."""
        for row in self.rows:
            if row.label == label:
                return row.measured
        raise KeyError(label)


# ---------------------------------------------------------------------------
# Cached testbed / dataset / evaluation runs
# ---------------------------------------------------------------------------

_CACHE: Dict[tuple, object] = {}


def default_testbed() -> Testbed:
    """The shared VICON-room testbed."""
    key = ("testbed",)
    if key not in _CACHE:
        _CACHE[key] = vicon_testbed()
    return _CACHE[key]


def default_dataset(num_positions: Optional[int] = None) -> EvaluationDataset:
    """The shared evaluation dataset (one measurement per placement)."""
    n = num_positions or eval_points()
    key = ("dataset", n)
    if key not in _CACHE:
        testbed = default_testbed()
        model = ChannelMeasurementModel(testbed=testbed, seed=DEFAULT_SEED)
        _CACHE[key] = build_dataset(
            testbed,
            num_positions=n,
            seed=DEFAULT_SEED,
            model=model,
            min_separation_m=0.1,
        )
    return _CACHE[key]


def make_bloc(selection: str = "score") -> BlocLocalizer:
    """A BLoc localizer at the experiment grid resolution."""
    return BlocLocalizer(
        config=BlocConfig(
            grid_resolution_m=grid_resolution(), selection=selection
        )
    )


def make_aoa() -> AoaLocalizer:
    """The AoA-combining baseline at the experiment grid resolution."""
    return AoaLocalizer(grid_resolution_m=grid_resolution())


#: Named observation transforms usable as cache keys.
TRANSFORMS: Dict[str, Callable[[ChannelObservations], ChannelObservations]] = {
    "full": lambda o: o,
    "bw2": lambda o: o.select_bandwidth(2e6),
    "bw20": lambda o: o.select_bandwidth(20e6),
    "bw40": lambda o: o.select_bandwidth(40e6),
    "bw80": lambda o: o.select_bandwidth(BLE_TOTAL_SPAN_HZ),
    "sub2": lambda o: o.subsample_bands(2),
    "sub4": lambda o: o.subsample_bands(4),
    "ant3": lambda o: o.select_antennas(3),
    "ant2": lambda o: o.select_antennas(2),
}

_SCHEMES = {
    "bloc": lambda: make_bloc("score"),
    "aoa": make_aoa,
    "shortest": lambda: make_bloc("shortest"),
    "maxlik": lambda: make_bloc("max_likelihood"),
}


def run_scheme(
    scheme: str,
    transform: str = "full",
    anchor_subset_size: Optional[int] = None,
    num_positions: Optional[int] = None,
) -> EvaluationRun:
    """Evaluate a named scheme over the shared dataset (cached).

    Args:
        scheme: "bloc", "aoa", "shortest" or "maxlik".
        transform: a key of :data:`TRANSFORMS`.
        anchor_subset_size: when given, average over all master-containing
            anchor subsets of this size (Section 8.3 protocol).
        num_positions: dataset size override.
    """
    n = num_positions or eval_points()
    key = ("run", scheme, transform, anchor_subset_size, n)
    if key not in _CACHE:
        dataset = default_dataset(n)
        if transform != "full":
            dataset = dataset.transformed(TRANSFORMS[transform])
        localizer = _SCHEMES[scheme]()
        if anchor_subset_size is not None and anchor_subset_size < len(
            dataset.testbed.anchors
        ):
            run = evaluate_anchor_subsets(
                localizer,
                dataset,
                subset_size=anchor_subset_size,
                label=f"{scheme}/{transform}/{anchor_subset_size}anchors",
            )
        else:
            run = evaluate(
                localizer, dataset, label=f"{scheme}/{transform}"
            )
        _CACHE[key] = run
    return _CACHE[key]


def stats_of(run: EvaluationRun) -> ErrorStats:
    """Error statistics of a run with the standard failure padding."""
    return run.stats()
