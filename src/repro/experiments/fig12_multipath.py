"""Fig. 12 reproduction: the multipath-rejection ablation.

Section 8.7 disables BLoc's Eq. 18 scoring and replaces it with "a naive
baseline that just picks the shortest distance path": the median error
doubles (86 -> 195 cm) and the 90th percentile goes 178 -> 331 cm.  We run
BLoc and the shortest-distance variant on the same dataset and likelihood
maps -- only the peak-selection strategy differs.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    PAPER,
    ExperimentResult,
    ExperimentRow,
    run_scheme,
    stats_of,
)


def run(num_positions: Optional[int] = None) -> ExperimentResult:
    """Reproduce the multipath-rejection comparison."""
    bloc = stats_of(run_scheme("bloc", num_positions=num_positions))
    shortest = stats_of(run_scheme("shortest", num_positions=num_positions))
    return ExperimentResult(
        experiment_id="fig12",
        title="Multipath rejection vs shortest-distance selection",
        rows=[
            ExperimentRow(
                "BLoc median", 100 * bloc.median_m(), PAPER["bloc_median"]
            ),
            ExperimentRow(
                "BLoc 90th percentile",
                100 * bloc.percentile_m(90),
                PAPER["bloc_fig12_p90"],
            ),
            ExperimentRow(
                "shortest-distance median",
                100 * shortest.median_m(),
                PAPER["shortest_median"],
            ),
            ExperimentRow(
                "shortest-distance 90th percentile",
                100 * shortest.percentile_m(90),
                PAPER["shortest_p90"],
            ),
            ExperimentRow(
                "median degradation factor",
                shortest.median_m() / bloc.median_m(),
                195.0 / 86.0,
                units="x",
            ),
        ],
        notes=[
            "Required shape: removing the Eq. 18 score roughly doubles "
            "the median error.",
        ],
    )
