"""Export figure data series as CSV for external plotting.

The experiment runners print paper-vs-measured summary rows; this module
exports the underlying *curves* -- the error CDFs of Fig. 9/12, the
bandwidth sweep of Fig. 10, the spatial RMSE map of Fig. 13 -- as plain
CSV files, so the figures can be redrawn with any plotting tool.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.experiments.common import (
    default_testbed,
    run_scheme,
    stats_of,
)
from repro.sim.metrics import spatial_rmse_map


def _write_rows(path: Path, header, rows) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_cdf_csv(
    output_dir: Union[str, Path],
    num_positions: Optional[int] = None,
) -> Dict[str, Path]:
    """Fig. 9a / Fig. 12 CDF curves: error vs cumulative probability.

    Returns a mapping of scheme name to the written CSV path.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    written = {}
    for scheme in ("bloc", "aoa", "shortest"):
        stats = stats_of(run_scheme(scheme, num_positions=num_positions))
        errors, probabilities = stats.cdf()
        path = output_dir / f"cdf_{scheme}.csv"
        _write_rows(
            path,
            ["error_m", "cdf"],
            zip(np.round(errors, 4), np.round(probabilities, 4)),
        )
        written[scheme] = path
    return written


def export_bandwidth_csv(
    output_dir: Union[str, Path],
    num_positions: Optional[int] = None,
) -> Path:
    """Fig. 10 series: bandwidth vs median error and std."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    rows = []
    for bandwidth_mhz, transform in (
        (2, "bw2"), (20, "bw20"), (40, "bw40"), (80, "bw80"),
    ):
        stats = stats_of(
            run_scheme("bloc", transform, num_positions=num_positions)
        )
        rows.append(
            (
                bandwidth_mhz,
                round(stats.median_m(), 4),
                round(float(np.std(stats.errors_m)), 4),
            )
        )
    path = output_dir / "bandwidth_sweep.csv"
    _write_rows(path, ["bandwidth_mhz", "median_error_m", "std_m"], rows)
    return path


def export_spatial_rmse_csv(
    output_dir: Union[str, Path],
    num_positions: Optional[int] = None,
    bin_size_m: float = 1.0,
) -> Path:
    """Fig. 13 map: binned RMSE over the room (long format)."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    run = run_scheme("bloc", num_positions=num_positions)
    testbed = default_testbed()
    x_edges, y_edges, rmse = spatial_rmse_map(
        run.truths(),
        run.errors(),
        bounds=testbed.environment.bounds(),
        bin_size_m=bin_size_m,
    )
    rows = []
    for r in range(rmse.shape[0]):
        for c in range(rmse.shape[1]):
            value = rmse[r, c]
            rows.append(
                (
                    round((x_edges[c] + x_edges[c + 1]) / 2, 3),
                    round((y_edges[r] + y_edges[r + 1]) / 2, 3),
                    "" if np.isnan(value) else round(float(value), 4),
                )
            )
    path = output_dir / "spatial_rmse.csv"
    _write_rows(path, ["x_m", "y_m", "rmse_m"], rows)
    return path


def export_all(
    output_dir: Union[str, Path],
    num_positions: Optional[int] = None,
) -> Dict[str, Path]:
    """Write every exportable series; returns name -> path."""
    written = dict(export_cdf_csv(output_dir, num_positions))
    written["bandwidth"] = export_bandwidth_csv(output_dir, num_positions)
    written["spatial_rmse"] = export_spatial_rmse_csv(
        output_dir, num_positions
    )
    return written
