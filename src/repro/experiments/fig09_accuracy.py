"""Fig. 9 reproduction: localization accuracy CDFs.

* Fig. 9a -- BLoc vs the AoA-combining baseline (paper: 86 cm vs 242 cm
  median; 170 cm vs 340 cm at the 90th percentile).
* Fig. 9b -- effect of the number of anchors in {2, 3, 4}; the 3-anchor
  numbers average over all master-containing subsets (Section 8.3).
* Fig. 9c -- effect of the number of antennas in {3, 4} (Section 8.4).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    PAPER,
    ExperimentResult,
    ExperimentRow,
    run_scheme,
    stats_of,
)


def run_accuracy(num_positions: Optional[int] = None) -> ExperimentResult:
    """Fig. 9a: BLoc vs AoA baseline over the shared dataset."""
    bloc = stats_of(run_scheme("bloc", num_positions=num_positions))
    aoa = stats_of(run_scheme("aoa", num_positions=num_positions))
    return ExperimentResult(
        experiment_id="fig9a",
        title="Localization accuracy: BLoc vs AoA-combining baseline",
        rows=[
            ExperimentRow(
                "BLoc median", 100 * bloc.median_m(), PAPER["bloc_median"]
            ),
            ExperimentRow(
                "BLoc 90th percentile",
                100 * bloc.percentile_m(90),
                PAPER["bloc_p90"],
            ),
            ExperimentRow(
                "AoA median", 100 * aoa.median_m(), PAPER["aoa_median"]
            ),
            ExperimentRow(
                "AoA 90th percentile",
                100 * aoa.percentile_m(90),
                PAPER["aoa_p90"],
            ),
            ExperimentRow(
                "median improvement factor (AoA / BLoc)",
                aoa.median_m() / bloc.median_m(),
                242.0 / 86.0,
                units="x",
            ),
        ],
    )


def run_anchor_sweep(num_positions: Optional[int] = None) -> ExperimentResult:
    """Fig. 9b: accuracy with 2, 3 and 4 anchors for both schemes."""
    rows = []
    paper_medians = {
        ("bloc", 4): PAPER["bloc_median"],
        ("bloc", 3): PAPER["bloc3_median"],
        ("aoa", 4): PAPER["aoa_median"],
        ("aoa", 3): PAPER["aoa3_median"],
    }
    for scheme in ("bloc", "aoa"):
        for anchors in (4, 3, 2):
            run = run_scheme(
                scheme,
                anchor_subset_size=anchors if anchors < 4 else None,
                num_positions=num_positions,
            )
            stats = stats_of(run)
            rows.append(
                ExperimentRow(
                    f"{scheme} median, {anchors} anchors",
                    100 * stats.median_m(),
                    paper_medians.get((scheme, anchors)),
                )
            )
    return ExperimentResult(
        experiment_id="fig9b",
        title="Effect of the number of anchor points",
        rows=rows,
        notes=[
            "Paper: 4->3 anchors degrades mildly for BLoc (86 -> 91.5 cm) "
            "and 2 anchors degrades significantly for both schemes.",
            "KNOWN DIVERGENCE: our simulated 4->3 anchor drop is steeper "
            "than the paper's. The triple-product likelihood in our "
            "simulated room produces cross-term ghost ridges that three "
            "anchors cannot always out-vote (they persist even with "
            "noise-free channels); the ordering 4 < 3 < 2 and '3-anchor "
            "BLoc still beats 4-anchor AoA' both hold.",
        ],
    )


def run_antenna_sweep(num_positions: Optional[int] = None) -> ExperimentResult:
    """Fig. 9c: accuracy with 3 vs 4 antennas per anchor."""
    rows = []
    paper_values = {
        ("bloc", 4): (PAPER["bloc_median"], PAPER["bloc_p90"]),
        ("bloc", 3): (PAPER["bloc_3ant_median"], PAPER["bloc_3ant_p90"]),
        ("aoa", 4): (PAPER["aoa_median"], PAPER["aoa_p90"]),
        ("aoa", 3): (PAPER["aoa_3ant_median"], PAPER["aoa_3ant_p90"]),
    }
    for scheme in ("bloc", "aoa"):
        for antennas, transform in ((4, "full"), (3, "ant3")):
            stats = stats_of(
                run_scheme(scheme, transform, num_positions=num_positions)
            )
            paper_median, paper_p90 = paper_values[(scheme, antennas)]
            rows.append(
                ExperimentRow(
                    f"{scheme} median, {antennas} antennas",
                    100 * stats.median_m(),
                    paper_median,
                )
            )
            rows.append(
                ExperimentRow(
                    f"{scheme} p90, {antennas} antennas",
                    100 * stats.percentile_m(90),
                    paper_p90,
                )
            )
    return ExperimentResult(
        experiment_id="fig9c",
        title="Effect of the number of antennas",
        rows=rows,
        notes=[
            "Paper: dropping 4 -> 3 antennas has minimal effect on BLoc "
            "because bandwidth compensates for array resolution.",
        ],
    )


def run(num_positions: Optional[int] = None) -> ExperimentResult:
    """All Fig. 9 panels merged."""
    merged = ExperimentResult(
        experiment_id="fig9",
        title="Localization accuracy (Fig. 9a/9b/9c)",
    )
    for sub in (
        run_accuracy(num_positions),
        run_anchor_sweep(num_positions),
        run_antenna_sweep(num_positions),
    ):
        merged.rows.extend(sub.rows)
        merged.notes.extend(sub.notes)
    return merged
