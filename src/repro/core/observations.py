"""Channel observations: the data interface between measurement and DSP.

One BLoc measurement round (a full hop sweep, Section 5.1) yields, for
every frequency band ``k``:

* ``tag_to_anchor[i, j, k]`` -- the channel from the tag to antenna ``j``
  of anchor ``i``, measured from the tag's packet (``h-hat`` in Eq. 7/8);
* ``master_to_anchor[i, j, k]`` -- the channel from the master anchor's
  antenna 0 to antenna ``j`` of anchor ``i``, measured from the master's
  response packet (``H-hat`` in Eq. 9).  The master's own rows are unused.

Both carry whatever oscillator phase offsets the measurement process
imprinted; removing them is :mod:`repro.core.correction`'s job.

:class:`ChannelObservations` also owns the evaluation-time subsetting the
paper's Section 8 sweeps rely on: fewer anchors (8.3), fewer antennas
(8.4), narrower bandwidth (8.5), subsampled channels (8.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, MeasurementError
from repro.rf.antenna import Anchor
from repro.utils.geometry2d import Point


@dataclass
class ChannelObservations:
    """Measured channels of one localization round.

    Attributes:
        anchors: the anchor descriptors (geometry, antenna counts).
        master_index: which anchor is the master (index into ``anchors``).
        frequencies_hz: centre frequency per band, shape ``(K,)``.
        tag_to_anchor: complex array, shape ``(I, J, K)``.
        master_to_anchor: complex array, shape ``(I, J, K)``.
        ground_truth: true tag position, when the testbed knows it.
        band_snr_db: optional measured demodulation SNR per (anchor,
            band) cell, shape ``(I, K)`` -- filled by the IQ-fidelity
            measurement model, None at channel fidelity (the diagnostics
            layer then estimates quality from the channels themselves).
    """

    anchors: List[Anchor]
    master_index: int
    frequencies_hz: np.ndarray
    tag_to_anchor: np.ndarray
    master_to_anchor: np.ndarray
    ground_truth: Optional[Point] = None
    band_snr_db: Optional[np.ndarray] = None

    def __post_init__(self):
        self.frequencies_hz = np.asarray(self.frequencies_hz, dtype=float)
        self.tag_to_anchor = np.asarray(self.tag_to_anchor, dtype=complex)
        self.master_to_anchor = np.asarray(self.master_to_anchor, dtype=complex)
        if self.band_snr_db is not None:
            self.band_snr_db = np.asarray(self.band_snr_db, dtype=float)
            expected_quality = (len(self.anchors), self.frequencies_hz.size)
            if self.band_snr_db.shape != expected_quality:
                raise MeasurementError(
                    f"band_snr_db shape {self.band_snr_db.shape} != "
                    f"expected {expected_quality}"
                )
        num_anchors = len(self.anchors)
        if num_anchors < 1:
            raise ConfigurationError("need at least one anchor")
        if not 0 <= self.master_index < num_anchors:
            raise ConfigurationError(
                f"master index {self.master_index} out of range"
            )
        expected = (
            num_anchors,
            max(a.num_antennas for a in self.anchors),
            self.frequencies_hz.size,
        )
        for name, arr in (
            ("tag_to_anchor", self.tag_to_anchor),
            ("master_to_anchor", self.master_to_anchor),
        ):
            if arr.shape != expected:
                raise MeasurementError(
                    f"{name} shape {arr.shape} != expected {expected}"
                )

    # -- shapes -------------------------------------------------------------

    @property
    def num_anchors(self) -> int:
        """Number of anchors ``I``."""
        return len(self.anchors)

    @property
    def num_antennas(self) -> int:
        """Antennas per anchor ``J`` (uniform across anchors)."""
        return int(self.tag_to_anchor.shape[1])

    @property
    def num_bands(self) -> int:
        """Number of frequency bands ``K``."""
        return int(self.frequencies_hz.size)

    @property
    def master(self) -> Anchor:
        """The master anchor."""
        return self.anchors[self.master_index]

    def bandwidth_hz(self) -> float:
        """Span of the measured bands (max - min centre frequency)."""
        if self.num_bands < 2:
            return 0.0
        return float(self.frequencies_hz.max() - self.frequencies_hz.min())

    # -- evaluation-time subsetting -----------------------------------------

    def select_bands(self, band_indices: Sequence[int]) -> "ChannelObservations":
        """Restrict to a subset of frequency bands (Sections 8.5, 8.6)."""
        idx = np.asarray(list(band_indices), dtype=int)
        if idx.size < 1:
            raise ConfigurationError("need at least one band")
        if idx.min() < 0 or idx.max() >= self.num_bands:
            raise ConfigurationError("band index out of range")
        return replace(
            self,
            frequencies_hz=self.frequencies_hz[idx],
            tag_to_anchor=self.tag_to_anchor[:, :, idx],
            master_to_anchor=self.master_to_anchor[:, :, idx],
            band_snr_db=(
                self.band_snr_db[:, idx]
                if self.band_snr_db is not None
                else None
            ),
        )

    def select_bandwidth(self, bandwidth_hz: float) -> "ChannelObservations":
        """Keep only bands within a contiguous window of the given width,
        anchored at the lowest measured frequency (Section 8.5)."""
        if bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be > 0")
        f0 = float(self.frequencies_hz.min())
        keep = np.flatnonzero(self.frequencies_hz <= f0 + bandwidth_hz)
        return self.select_bands(keep)

    def subsample_bands(self, factor: int) -> "ChannelObservations":
        """Every ``factor``-th band over the full span (Section 8.6)."""
        if factor < 1:
            raise ConfigurationError("factor must be >= 1")
        order = np.argsort(self.frequencies_hz)
        keep = order[::factor]
        return self.select_bands(np.sort(keep))

    def select_antennas(self, num_antennas: int) -> "ChannelObservations":
        """Keep the first ``num_antennas`` elements per anchor (Section 8.4)."""
        if not 1 <= num_antennas <= self.num_antennas:
            raise ConfigurationError(
                f"num_antennas must be in [1, {self.num_antennas}]"
            )
        anchors = [a.truncated(num_antennas) for a in self.anchors]
        return replace(
            self,
            anchors=anchors,
            tag_to_anchor=self.tag_to_anchor[:, :num_antennas, :],
            master_to_anchor=self.master_to_anchor[:, :num_antennas, :],
        )

    def select_anchors(
        self, anchor_indices: Sequence[int]
    ) -> "ChannelObservations":
        """Keep a subset of anchors (Section 8.3).

        The master must stay in the subset: Eq. 10's correction needs its
        packets.
        """
        idx = list(dict.fromkeys(int(i) for i in anchor_indices))
        if self.master_index not in idx:
            raise ConfigurationError(
                "the master anchor must be part of every anchor subset"
            )
        for i in idx:
            if not 0 <= i < self.num_anchors:
                raise ConfigurationError(f"anchor index {i} out of range")
        arr = np.asarray(idx, dtype=int)
        return replace(
            self,
            anchors=[self.anchors[i] for i in idx],
            master_index=idx.index(self.master_index),
            tag_to_anchor=self.tag_to_anchor[arr],
            master_to_anchor=self.master_to_anchor[arr],
            band_snr_db=(
                self.band_snr_db[arr]
                if self.band_snr_db is not None
                else None
            ),
        )
