"""Spatial entropy of likelihood neighbourhoods (Section 5.4).

The paper's second multipath cue: direct-path peaks are *peaky* while
reflections, coming off non-ideal scattering reflectors, are *spread out*.
It quantifies this with the "entropy" of the likelihood around each peak
and states that a flat (spread-out) neighbourhood has *low* entropy --
the opposite sign of Shannon's convention.  We therefore implement the
quantity as **negentropy** (peakiness):

    H = log(N) - shannon_entropy(normalised neighbourhood)

which is 0 for a perfectly flat window and log(N) for a delta -- high H
means "looks like a direct path", matching both the paper's prose and the
positive weight ``b`` in Eq. 18.  (DESIGN.md records this convention
choice; an ablation bench flips the sign to show it matters.)
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import shaped
from repro.constants import BLOC_ENTROPY_WINDOW
from repro.core.peaks import Peak
from repro.errors import ConfigurationError
from repro.utils.gridmap import Grid2D


def shannon_entropy(values: np.ndarray) -> float:
    """Shannon entropy [nats] of a non-negative array treated as a pmf."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ConfigurationError("entropy of an empty window is undefined")
    if np.any(arr < 0):
        raise ConfigurationError("likelihood values must be non-negative")
    total = arr.sum()
    if total <= 0:
        # An all-zero window carries no information: maximally flat.
        return float(np.log(arr.size))
    p = arr / total
    nonzero = p[p > 0]
    return float(-np.sum(nonzero * np.log(nonzero)))


def negentropy(values: np.ndarray) -> float:
    """Peakiness ``log(N) - shannon_entropy`` of a window, in [0, log N]."""
    arr = np.asarray(values, dtype=float)
    return float(np.log(arr.size)) - shannon_entropy(arr)


@shaped(values=("H", "W"))
def peak_neighborhood_entropy(
    values: np.ndarray,
    grid: Grid2D,
    peak: Peak,
    window: int = BLOC_ENTROPY_WINDOW,
) -> float:
    """The paper's ``H`` for one peak: negentropy of its neighbourhood.

    Args:
        values: the combined likelihood map.
        grid: its grid.
        peak: the peak to analyse.
        window: side of the square neighbourhood (paper Section 7: 7).
    """
    if window < 3 or window % 2 == 0:
        raise ConfigurationError("entropy window must be odd and >= 3")
    half = window // 2
    neighborhood = grid.window(values, peak.row, peak.col, half)
    return negentropy(neighborhood)


@shaped(values=("H", "W"))
def spread_metric(
    values: np.ndarray,
    grid: Grid2D,
    peak: Peak,
    window: int = BLOC_ENTROPY_WINDOW,
) -> float:
    """Complementary diagnostic: RMS spatial spread [m] of the
    neighbourhood mass around the peak.

    Not used by the paper's score; exposed for analysis notebooks and the
    ablation bench that compares spread- vs entropy-based rejection.
    """
    half = window // 2
    neighborhood = np.asarray(
        grid.window(values, peak.row, peak.col, half), dtype=float
    )
    total = neighborhood.sum()
    if total <= 0:
        return float(grid.resolution * half)
    rows, cols = np.indices(neighborhood.shape)
    # Offsets relative to the window centre in metres.
    r0 = min(peak.row, half)
    c0 = min(peak.col, half)
    dy = (rows - r0) * grid.resolution
    dx = (cols - c0) * grid.resolution
    weights = neighborhood / total
    return float(np.sqrt(np.sum(weights * (dx**2 + dy**2))))
