"""CSI measurement for BLE: from GFSK IQ samples to per-band channels.

Section 4 of the paper: the transmitted frequency is only stable during
long runs of identical bits, so CSI is measured on those stable tone
segments.  For each segment the channel is the least-squares ratio of
received to ideal transmitted samples:

    h_tone = sum(y * conj(x)) / sum(|x|^2)

which equals the paper's ``h = y / x`` averaged over the segment.  The
bit-0 segments give the channel at ``f0``, the bit-1 segments at ``f1``;
the two are combined into one per-band value by averaging amplitude and
phase separately (Section 5, notation paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.contracts import shaped
from repro.ble.gfsk import GfskModulator
from repro.ble.localization import ToneSegment, find_tone_segments
from repro.ble.pdu import OnAirPacket
from repro.errors import CsiExtractionError
from repro.sdr.iq import IqCapture
from repro.utils.complexutils import circular_mean, combine_amplitude_phase


@dataclass(frozen=True)
class BandCsi:
    """CSI of one frequency band at one anchor.

    Attributes:
        channel_index: BLE channel the band corresponds to.
        frequency_hz: band centre frequency.
        channels: complex channel per antenna, shape ``(num_antennas,)``.
        tone0: raw f0-tone channel per antenna (diagnostics).
        tone1: raw f1-tone channel per antenna (diagnostics).
    """

    channel_index: int
    frequency_hz: float
    channels: np.ndarray
    tone0: np.ndarray
    tone1: np.ndarray


@shaped(received=("M",), ideal=("L",))
def measure_segment_channel(
    received: np.ndarray,
    ideal: np.ndarray,
    segment: ToneSegment,
    samples_per_symbol: int,
) -> complex:
    """Least-squares channel estimate over one stable tone segment."""
    sl = segment.sample_slice(samples_per_symbol)
    y = np.asarray(received[sl], dtype=complex)
    x = np.asarray(ideal[sl], dtype=complex)
    if y.size == 0 or y.size != x.size:
        raise CsiExtractionError(
            f"segment samples unavailable: got {y.size}, want {x.size}"
        )
    energy = float(np.sum(np.abs(x) ** 2))
    if energy <= 0:
        raise CsiExtractionError("ideal segment has zero energy")
    return complex(np.sum(y * np.conj(x)) / energy)


def combine_tone_channels(tone0: complex, tone1: complex) -> complex:
    """Per-band channel from the f0 and f1 tone channels.

    The paper combines "the two values into a single value per band by
    averaging the channel amplitude and channel phase separately"; the
    phase average is circular.
    """
    amplitude = (abs(tone0) + abs(tone1)) / 2.0
    phase = float(circular_mean(np.angle([tone0, tone1])))
    return complex(combine_amplitude_phase(amplitude, phase))


def extract_band_csi(
    capture: IqCapture,
    packet: OnAirPacket,
    min_run: int = 4,
    settle_bits: int = 2,
    modulator: Optional[GfskModulator] = None,
) -> BandCsi:
    """Measure one band's CSI from an *aligned* capture of a known packet.

    Args:
        capture: IQ aligned so sample 0 is the packet's first sample
            (see :class:`repro.sdr.receiver.PacketDetector`).
        packet: the packet that was transmitted (known to the anchors:
            they follow the connection, Section 3).
        min_run / settle_bits: stable-segment extraction parameters.
        modulator: the reference modulator; defaults to one matching the
            capture sample rate.

    Raises:
        CsiExtractionError: when the packet contains no usable tone runs
            of one of the two frequencies.
    """
    samples_per_symbol = int(round(capture.sample_rate / 1e6))
    if modulator is None:
        modulator = GfskModulator(samples_per_symbol=samples_per_symbol)
    ideal = modulator.modulate(packet.bits)
    segments = find_tone_segments(
        packet.bits, min_run=min_run, settle_bits=settle_bits
    )
    zero_segments = [s for s in segments if s.bit_value == 0]
    one_segments = [s for s in segments if s.bit_value == 1]
    if not zero_segments or not one_segments:
        raise CsiExtractionError(
            "packet has no stable runs of both bit values; use "
            "localization packets (repro.ble.localization)"
        )
    usable = capture.num_samples
    tone0 = np.empty(capture.num_antennas, dtype=complex)
    tone1 = np.empty(capture.num_antennas, dtype=complex)
    for antenna in range(capture.num_antennas):
        received = capture.antenna(antenna)
        for tones, segs in ((tone0, zero_segments), (tone1, one_segments)):
            estimates = [
                measure_segment_channel(
                    received, ideal, segment, samples_per_symbol
                )
                for segment in segs
                if segment.sample_slice(samples_per_symbol).stop <= usable
            ]
            if not estimates:
                raise CsiExtractionError(
                    "capture too short to cover any stable segment"
                )
            tones[antenna] = np.mean(estimates)
    channels = np.array(
        [
            combine_tone_channels(t0, t1)
            for t0, t1 in zip(tone0, tone1)
        ]
    )
    return BandCsi(
        channel_index=capture.channel_index,
        frequency_hz=capture.carrier_frequency_hz,
        channels=channels,
        tone0=tone0,
        tone1=tone1,
    )


def stack_band_csi(bands: Sequence[BandCsi]) -> np.ndarray:
    """Stack per-band CSI into a ``(num_antennas, num_bands)`` array,
    ordered by frequency."""
    if not bands:
        raise CsiExtractionError("no bands to stack")
    ordered = sorted(bands, key=lambda b: b.frequency_hz)
    return np.column_stack([b.channels for b in ordered])
