"""MUSIC: subspace super-resolution angle estimation.

The systems the paper's baseline stands in for (ArrayTrack [42], SpotFi
[21]) do not use the plain Bartlett beamformer of Eq. 3 -- they use MUSIC:
eigendecompose the array covariance, split signal and noise subspaces, and
score angles by the orthogonality of their steering vectors to the noise
subspace.  MUSIC resolves arrivals closer than the array beamwidth, at the
price of needing several independent snapshots and correct model order.

For BLoc's setting the snapshots come for free: every frequency band's
per-antenna channel vector is one snapshot (multipath decorrelates across
bands, which is exactly what MUSIC needs).  Forward-backward averaging
doubles the effective snapshot count for our ULA geometry.

The steering convention matches :func:`repro.core.steering.angle_spectrum`:
element ``j`` sits towards the +array axis, so a source at +theta gives a
*positive* inter-element phase step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError


def array_covariance(
    channels: np.ndarray, forward_backward: bool = True
) -> np.ndarray:
    """Sample covariance of per-antenna channel snapshots.

    Args:
        channels: shape ``(J, K)`` -- J antennas, K snapshots (bands).
        forward_backward: apply forward-backward averaging (exploits the
            ULA's conjugate symmetry; standard for coherent sources).

    Returns:
        Hermitian ``(J, J)`` covariance estimate.
    """
    h = np.atleast_2d(np.asarray(channels, dtype=complex))
    if h.ndim != 2:
        raise ConfigurationError("channels must be (J, K)")
    num_antennas, num_snapshots = h.shape
    if num_snapshots < 1:
        raise ConfigurationError("need at least one snapshot")
    covariance = (h @ h.conj().T) / num_snapshots
    if forward_backward:
        exchange = np.eye(num_antennas)[::-1]
        covariance = 0.5 * (
            covariance + exchange @ covariance.conj() @ exchange
        )
    return covariance


def estimate_num_sources(
    covariance: np.ndarray, max_sources: Optional[int] = None
) -> int:
    """Model-order estimate from the eigenvalue profile.

    Uses the largest relative gap in the sorted log-eigenvalue sequence --
    a simple, robust alternative to AIC/MDL for small arrays.  At least
    one source is always assumed.
    """
    eigenvalues = np.linalg.eigvalsh(np.asarray(covariance))
    eigenvalues = np.sort(eigenvalues)[::-1]
    num_antennas = eigenvalues.size
    if max_sources is None:
        max_sources = num_antennas - 1
    max_sources = min(max_sources, num_antennas - 1)
    if max_sources < 1:
        raise ConfigurationError("need at least a 2-element array")
    floor = max(eigenvalues[-1], 1e-15 * eigenvalues[0], 1e-300)
    log_eigenvalues = np.log(np.maximum(eigenvalues, floor))
    gaps = log_eigenvalues[:-1] - log_eigenvalues[1:]
    return int(np.argmax(gaps[:max_sources])) + 1


def music_spectrum(
    channels: np.ndarray,
    spacing_m: float,
    frequency_hz: float,
    angles_rad: Optional[np.ndarray] = None,
    num_sources: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """MUSIC pseudo-spectrum over candidate angles.

    Args:
        channels: per-antenna channels, shape ``(J,)`` or ``(J, K)``.
        spacing_m: element separation.
        frequency_hz: carrier used for the steering vectors (with
            multi-band snapshots, the centre frequency; the fractional
            frequency spread of BLE's 80 MHz around 2.44 GHz is ~3%, a
            negligible steering mismatch).
        angles_rad: candidate angles (default 181 points in +-pi/2).
        num_sources: signal-subspace dimension; estimated from the
            eigenvalue gaps when omitted.

    Returns:
        ``(angles, spectrum)`` with the spectrum normalised to peak 1.
    """
    h = np.atleast_2d(np.asarray(channels, dtype=complex))
    if h.shape[0] == 1 and h.shape[1] > 1 and np.asarray(channels).ndim == 1:
        h = h.reshape(-1, 1)
    num_antennas = h.shape[0]
    if num_antennas < 2:
        raise ConfigurationError("MUSIC needs at least 2 antennas")
    covariance = array_covariance(h)
    if num_sources is None:
        num_sources = estimate_num_sources(covariance)
    if not 1 <= num_sources < num_antennas:
        raise ConfigurationError(
            f"num_sources must be in [1, {num_antennas - 1}]"
        )
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    # eigh sorts ascending: the first J - num_sources span the noise space.
    noise_subspace = eigenvectors[:, : num_antennas - num_sources]
    if angles_rad is None:
        angles_rad = np.linspace(-np.pi / 2.0, np.pi / 2.0, 181)
    wavelength = SPEED_OF_LIGHT / float(frequency_hz)
    j = np.arange(num_antennas)
    steering = np.exp(
        2j
        * np.pi
        * np.outer(j, np.sin(angles_rad))
        * spacing_m
        / wavelength
    )  # (J, num_angles)
    projection = noise_subspace.conj().T @ steering  # (J-S, num_angles)
    denom = np.maximum(np.sum(np.abs(projection) ** 2, axis=0), 1e-15)
    spectrum = 1.0 / denom
    peak = spectrum.max()
    if peak > 0:
        spectrum = spectrum / peak
    return np.asarray(angles_rad), spectrum


def music_angles(
    channels: np.ndarray,
    spacing_m: float,
    frequency_hz: float,
    num_sources: Optional[int] = None,
    num_angles: int = 721,
) -> np.ndarray:
    """The ``num_sources`` strongest MUSIC arrival angles [rad]."""
    angles, spectrum = music_spectrum(
        channels,
        spacing_m,
        frequency_hz,
        angles_rad=np.linspace(-np.pi / 2.0, np.pi / 2.0, num_angles),
        num_sources=num_sources,
    )
    # Local maxima of the pseudo-spectrum.
    interior = (spectrum[1:-1] > spectrum[:-2]) & (
        spectrum[1:-1] >= spectrum[2:]
    )
    candidates = np.flatnonzero(interior) + 1
    if candidates.size == 0:
        candidates = np.array([int(np.argmax(spectrum))])
    order = np.argsort(spectrum[candidates])[::-1]
    wanted = num_sources or 1
    return angles[candidates[order][:wanted]]
