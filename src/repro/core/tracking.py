"""Tag tracking: temporal filtering of successive BLoc fixes.

The applications the paper motivates -- pet tracking, factory assets,
navigation -- localize a *moving* tag at the hop-sweep rate.  A constant-
velocity Kalman filter over the per-round fixes smooths measurement noise
and rejects the occasional multipath ghost fix that survives Eq. 18 (a
ghost is far from the predicted position, so it is gated out).

This is an extension beyond the paper's per-fix evaluation, built from
its discussion of tracking applications (Sections 1 and 6: ~40 sweeps/s
are available).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.geometry2d import Point


@dataclass
class TrackState:
    """Filtered kinematic state after one update.

    Attributes:
        position: filtered position estimate.
        velocity: filtered velocity estimate [m/s].
        gated: whether the raw fix was rejected as a ghost.
    """

    position: Point
    velocity: Point
    gated: bool


@dataclass
class TagTracker:
    """Constant-velocity Kalman filter with ghost gating.

    Attributes:
        measurement_std_m: expected per-fix error (the paper's ~0.86 m
            median suggests ~0.9; tighter for calibrated deployments).
        acceleration_std: process-noise acceleration [m/s^2].
        gate_sigma: fixes further than this many predicted standard
            deviations from the prediction are treated as ghosts (the
            filter coasts instead of consuming them).
    """

    measurement_std_m: float = 0.9
    acceleration_std: float = 1.0
    gate_sigma: float = 3.5

    def __post_init__(self):
        if self.measurement_std_m <= 0:
            raise ConfigurationError("measurement std must be > 0")
        if self.acceleration_std <= 0:
            raise ConfigurationError("acceleration std must be > 0")
        if self.gate_sigma <= 0:
            raise ConfigurationError("gate must be > 0")
        self._state: Optional[np.ndarray] = None  # [x, y, vx, vy]
        self._covariance: Optional[np.ndarray] = None
        self.history: List[TrackState] = []

    @property
    def initialized(self) -> bool:
        """Whether the filter has consumed a first fix."""
        return self._state is not None

    def reset(self) -> None:
        """Forget the track."""
        self._state = None
        self._covariance = None
        self.history = []

    def _predict(self, dt: float):
        transition = np.eye(4)
        transition[0, 2] = dt
        transition[1, 3] = dt
        q = self.acceleration_std**2
        dt2, dt3, dt4 = dt**2, dt**3, dt**4
        process = q * np.array(
            [
                [dt4 / 4, 0, dt3 / 2, 0],
                [0, dt4 / 4, 0, dt3 / 2],
                [dt3 / 2, 0, dt2, 0],
                [0, dt3 / 2, 0, dt2],
            ]
        )
        state = transition @ self._state
        covariance = transition @ self._covariance @ transition.T + process
        return state, covariance

    def update(self, fix: Point, dt: float = 0.025) -> TrackState:
        """Consume one localization fix.

        Args:
            fix: the raw BLoc position estimate.
            dt: time since the previous fix (one 37-hop sweep is ~25 ms
                at a 7.5 ms connection interval... the paper quotes ~40
                full hop cycles per second, i.e. dt ~ 25 ms).

        Returns:
            The filtered state (appended to :attr:`history`).
        """
        if dt <= 0:
            raise ConfigurationError("dt must be > 0")
        measurement = np.array([fix.x, fix.y])
        if self._state is None:
            self._state = np.array([fix.x, fix.y, 0.0, 0.0])
            self._covariance = np.diag(
                [
                    self.measurement_std_m**2,
                    self.measurement_std_m**2,
                    4.0,
                    4.0,
                ]
            )
            outcome = TrackState(
                position=fix, velocity=Point(0.0, 0.0), gated=False
            )
            self.history.append(outcome)
            return outcome

        state, covariance = self._predict(dt)
        observation = np.zeros((2, 4))
        observation[0, 0] = 1.0
        observation[1, 1] = 1.0
        innovation = measurement - observation @ state
        innovation_cov = (
            observation @ covariance @ observation.T
            + np.eye(2) * self.measurement_std_m**2
        )
        mahalanobis = float(
            np.sqrt(
                innovation @ np.linalg.solve(innovation_cov, innovation)
            )
        )
        gated = mahalanobis > self.gate_sigma
        if gated:
            # Ghost fix: coast on the prediction.
            self._state, self._covariance = state, covariance
        else:
            gain = covariance @ observation.T @ np.linalg.inv(innovation_cov)
            self._state = state + gain @ innovation
            self._covariance = (np.eye(4) - gain @ observation) @ covariance
        outcome = TrackState(
            position=Point(float(self._state[0]), float(self._state[1])),
            velocity=Point(float(self._state[2]), float(self._state[3])),
            gated=gated,
        )
        self.history.append(outcome)
        return outcome

    def track(self, fixes, dt: float = 0.025) -> List[TrackState]:
        """Filter a whole sequence of fixes."""
        return [self.update(fix, dt=dt) for fix in fixes]


def track_errors_m(
    states: List[TrackState], truths: List[Point]
) -> np.ndarray:
    """Per-step errors of a filtered track against ground truth."""
    if len(states) != len(truths):
        raise ConfigurationError("state/truth counts differ")
    return np.array(
        [(s.position - t).norm() for s, t in zip(states, truths)]
    )
