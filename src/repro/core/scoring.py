"""Direct-path selection: the peak score of Eq. 18.

Given the candidate peaks of the combined likelihood map, BLoc scores each
as

    s_x = p_x * exp(b * H - a * sum_i d_i)

where ``p_x`` is the peak's likelihood, ``H`` the neighbourhood
(neg)entropy (peaky = direct-path-like, see :mod:`repro.core.entropy`),
and ``d_i`` the distance from the peak location to anchor ``i`` -- the
"shortest path" cue: a ghost peak produced by reflections implies longer
travelled paths than the true position does.  The paper uses
``a = 0.1, b = 0.05`` (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.constants import (
    BLOC_ENTROPY_WINDOW,
    BLOC_SCORE_DISTANCE_WEIGHT,
    BLOC_SCORE_ENTROPY_WEIGHT,
)
from repro.analysis.contracts import shaped
from repro.core.entropy import peak_neighborhood_entropy
from repro.core.peaks import Peak
from repro.errors import ConfigurationError, LocalizationError
from repro.obs import STANDARD_METRICS, get_observer
from repro.rf.antenna import Anchor
from repro.utils.gridmap import Grid2D


@dataclass(frozen=True)
class ScoredPeak:
    """A peak with its multipath-rejection score breakdown.

    Attributes:
        peak: the underlying likelihood peak.
        entropy: neighbourhood negentropy ``H``.
        distance_sum_m: ``sum_i d_i`` over anchors.
        score: the Eq. 18 score ``s_x``.
    """

    peak: Peak
    entropy: float
    distance_sum_m: float
    score: float


@dataclass(frozen=True)
class ScoringConfig:
    """Weights and window of the Eq. 18 score.

    Attributes:
        distance_weight: the paper's ``a`` (per metre).
        entropy_weight: the paper's ``b`` (per nat).
        entropy_window: neighbourhood side for ``H`` (paper: 7).
    """

    distance_weight: float = BLOC_SCORE_DISTANCE_WEIGHT
    entropy_weight: float = BLOC_SCORE_ENTROPY_WEIGHT
    entropy_window: int = BLOC_ENTROPY_WINDOW

    def __post_init__(self):
        if self.entropy_window < 3 or self.entropy_window % 2 == 0:
            raise ConfigurationError("entropy window must be odd and >= 3")


@shaped(values=("H", "W"))
def score_peaks(
    peaks: Sequence[Peak],
    values: np.ndarray,
    grid: Grid2D,
    anchors: Sequence[Anchor],
    config: ScoringConfig = ScoringConfig(),
) -> List[ScoredPeak]:
    """Score every peak with Eq. 18, strongest score first."""
    if not peaks:
        raise LocalizationError("no peaks to score")
    anchor_positions = np.array([tuple(a.position) for a in anchors])
    scored: List[ScoredPeak] = []
    for peak in peaks:
        entropy = peak_neighborhood_entropy(
            values, grid, peak, window=config.entropy_window
        )
        deltas = anchor_positions - np.array(tuple(peak.position))[None, :]
        distance_sum = float(np.linalg.norm(deltas, axis=1).sum())
        score = peak.value * float(
            np.exp(
                config.entropy_weight * entropy
                - config.distance_weight * distance_sum
            )
        )
        scored.append(
            ScoredPeak(
                peak=peak,
                entropy=entropy,
                distance_sum_m=distance_sum,
                score=score,
            )
        )
    scored.sort(key=lambda s: s.score, reverse=True)
    observer = get_observer()
    if observer.enabled and scored[0].score > 0:
        # Relative margin between the Eq. 18 winner and the runner-up: a
        # margin near 0 means the direct-path decision was a coin flip.
        margin = (
            (scored[0].score - scored[1].score) / scored[0].score
            if len(scored) > 1
            else 1.0
        )
        observer.metrics.histogram(
            "peaks.score_margin", STANDARD_METRICS["peaks.score_margin"][1]
        ).observe(margin)
    return scored


def select_direct_path(scored: Sequence[ScoredPeak]) -> ScoredPeak:
    """The winning peak (highest Eq. 18 score)."""
    if not scored:
        raise LocalizationError("no scored peaks")
    return max(scored, key=lambda s: s.score)
