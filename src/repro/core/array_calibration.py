"""Array calibration: estimate and remove per-element response errors.

The paper deploys "customized" anchors (Section 6) and, like every
phased-array system (ArrayTrack devotes a section to it), real BLoc
anchors need a calibration pass: each receive chain has its own gain and
phase, which tilts angle estimates.  This module implements the standard
reference-beacon procedure:

1. place a beacon at a *known* position (e.g. the master anchor's own
   position is known from deployment, or a surveyed point);
2. measure CSI at every anchor;
3. the expected geometric channel to each element is computable, so the
   per-element complex response is the ratio measured/expected, averaged
   over bands (per-hop offsets cancel inside one anchor because one
   oscillator drives all elements);
4. divide subsequent measurements by the estimated responses.

The estimated response absorbs an arbitrary common factor per anchor
(indistinguishable from the per-packet oscillator offset); only the
*relative* response across elements matters, and that is exactly what
angle estimation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.core.observations import ChannelObservations
from repro.errors import ConfigurationError, MeasurementError
from repro.utils.geometry2d import Point


@dataclass
class ArrayCalibration:
    """Estimated per-element complex responses.

    Attributes:
        responses: complex array of shape ``(num_anchors, num_antennas)``,
            normalised so element 0 of each anchor has response 1 (the
            common per-anchor factor is unobservable and irrelevant).
    """

    responses: np.ndarray

    def __post_init__(self):
        self.responses = np.asarray(self.responses, dtype=complex)
        if self.responses.ndim != 2:
            raise ConfigurationError("responses must be (anchors, antennas)")
        if np.any(np.abs(self.responses) < 1e-9):
            raise ConfigurationError("responses must be non-zero")

    @property
    def num_anchors(self) -> int:
        """Number of calibrated anchors."""
        return int(self.responses.shape[0])

    @property
    def num_antennas(self) -> int:
        """Elements per anchor."""
        return int(self.responses.shape[1])

    def phase_errors_deg(self) -> np.ndarray:
        """Relative element phase errors [deg] (diagnostics)."""
        relative = self.responses / self.responses[:, :1]
        return np.degrees(np.angle(relative))

    def apply(self, observations: ChannelObservations) -> ChannelObservations:
        """Return observations with element responses divided out."""
        if (
            observations.num_anchors != self.num_anchors
            or observations.num_antennas != self.num_antennas
        ):
            raise ConfigurationError(
                "calibration shape does not match the observations"
            )
        correction = 1.0 / self.responses  # (I, J)
        return replace(
            observations,
            tag_to_anchor=observations.tag_to_anchor
            * correction[:, :, None],
            master_to_anchor=observations.master_to_anchor
            * correction[:, :, None],
        )


def expected_geometric_channels(
    beacon: Point,
    observations: ChannelObservations,
) -> np.ndarray:
    """Ideal free-space channels from a beacon to every element.

    Shape ``(num_anchors, num_antennas, num_bands)``.  Multipath makes
    the per-band values deviate, which is why the estimator below
    averages the element *ratios* over many bands: the direct path
    dominates each ratio on average while multipath decorrelates.
    """
    freqs = observations.frequencies_hz
    out = np.empty(
        (
            observations.num_anchors,
            observations.num_antennas,
            freqs.size,
        ),
        dtype=complex,
    )
    for i, anchor in enumerate(observations.anchors):
        for j in range(observations.num_antennas):
            d = (beacon - anchor.antenna_position(j)).norm()
            out[i, j] = (1.0 / max(d, 1e-6)) * np.exp(
                -2j * np.pi * freqs * d / SPEED_OF_LIGHT
            )
    return out


def estimate_calibration(
    reference_observations: Sequence[ChannelObservations],
    beacon_positions: Optional[Sequence[Point]] = None,
) -> ArrayCalibration:
    """Estimate element responses from reference-beacon measurements.

    Args:
        reference_observations: one or more measurement rounds of beacons
            at known positions (more rounds / positions average multipath
            down).
        beacon_positions: the known positions; defaults to each
            observation's ``ground_truth``.

    Raises:
        MeasurementError: when no usable reference data is provided.
    """
    if not reference_observations:
        raise MeasurementError("need at least one reference measurement")
    if beacon_positions is None:
        beacon_positions = [o.ground_truth for o in reference_observations]
    if any(p is None for p in beacon_positions):
        raise MeasurementError(
            "every reference measurement needs a known beacon position"
        )
    first = reference_observations[0]
    accumulator = np.zeros(
        (first.num_anchors, first.num_antennas), dtype=complex
    )
    for observations, beacon in zip(reference_observations, beacon_positions):
        expected = expected_geometric_channels(beacon, observations)
        # Per-band element ratios relative to element 0, so the per-hop
        # oscillator phase (common to the whole anchor) divides out.
        measured = observations.tag_to_anchor
        ratio = (measured / expected) / (
            (measured[:, :1, :] / expected[:, :1, :])
        )
        accumulator += ratio.mean(axis=2)
    responses = accumulator / len(reference_observations)
    responses[:, 0] = 1.0
    return ArrayCalibration(responses=responses)
