"""BLoc core: CSI extraction, offset correction, likelihood, multipath.

The paper's primary contribution, end to end: measure CSI from GFSK tone
runs (Section 4), cancel per-hop oscillator offsets collaboratively
(Section 5.2, Eq. 10), map corrected channels to spatial likelihoods
(Section 5.3, Eq. 15-17), and reject multipath ghost peaks with the
entropy/distance score (Section 5.4, Eq. 18).
"""

from repro.core.array_calibration import (
    ArrayCalibration,
    estimate_calibration,
)
from repro.core.correction import (
    CorrectedChannels,
    anchor_baselines,
    correct_phase_offsets,
)
from repro.core.csi import (
    BandCsi,
    combine_tone_channels,
    extract_band_csi,
    measure_segment_channel,
    stack_band_csi,
)
from repro.core.fusion import coherence_gain, fuse_rounds, locate_fused
from repro.core.music import (
    array_covariance,
    estimate_num_sources,
    music_angles,
    music_spectrum,
)
from repro.core.engine import (
    EngineConfig,
    SteeringCache,
    SteeringEntry,
    build_steering_entry,
)
from repro.core.entropy import (
    negentropy,
    peak_neighborhood_entropy,
    shannon_entropy,
)
from repro.core.likelihood import (
    LikelihoodMap,
    anchor_likelihood_flat,
    compute_likelihood_map,
)
from repro.core.localizer import (
    BlocConfig,
    BlocLocalizer,
    LocalizationResult,
)
from repro.core.observations import ChannelObservations
from repro.core.peaks import Peak, PeakConfig, find_peaks, refine_peak_position
from repro.core.scoring import (
    ScoredPeak,
    ScoringConfig,
    score_peaks,
    select_direct_path,
)
from repro.core.tracking import TagTracker, TrackState, track_errors_m
from repro.core.steering import (
    aliasing_distance_m,
    angle_spectrum,
    distance_spectrum,
    range_resolution_m,
)

__all__ = [
    "ArrayCalibration",
    "BandCsi",
    "BlocConfig",
    "BlocLocalizer",
    "ChannelObservations",
    "CorrectedChannels",
    "EngineConfig",
    "LikelihoodMap",
    "LocalizationResult",
    "Peak",
    "PeakConfig",
    "ScoredPeak",
    "SteeringCache",
    "SteeringEntry",
    "TagTracker",
    "TrackState",
    "ScoringConfig",
    "aliasing_distance_m",
    "anchor_baselines",
    "anchor_likelihood_flat",
    "angle_spectrum",
    "array_covariance",
    "build_steering_entry",
    "coherence_gain",
    "combine_tone_channels",
    "compute_likelihood_map",
    "correct_phase_offsets",
    "distance_spectrum",
    "estimate_calibration",
    "estimate_num_sources",
    "fuse_rounds",
    "extract_band_csi",
    "find_peaks",
    "locate_fused",
    "measure_segment_channel",
    "music_angles",
    "music_spectrum",
    "negentropy",
    "peak_neighborhood_entropy",
    "range_resolution_m",
    "refine_peak_position",
    "score_peaks",
    "select_direct_path",
    "shannon_entropy",
    "stack_band_csi",
    "track_errors_m",
]
