"""1-D likelihood spectra: angle (Eq. 3/15) and relative distance (Eq. 4/16).

These are the building blocks the paper introduces before the joint 2-D
map: steering a linear array over candidate angles and steering the band
stack over candidate (relative) distances.  The AoA baseline uses the
angle spectrum directly; the microbenchmarks (Fig. 6a/6b) plot both.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError


def angle_spectrum(
    channels: np.ndarray,
    spacing_m: float,
    frequency_hz: float,
    angles_rad: Optional[np.ndarray] = None,
) -> tuple:
    """Angle-of-arrival likelihood ``Pa(theta)`` for one antenna array.

    Implements Eq. 3 of the paper: coherently combine per-antenna channels
    against the ULA steering vector for each candidate angle.

    Args:
        channels: per-antenna channels, shape ``(J,)`` or ``(J, K)``; with
            multiple bands the per-band spectra are combined
            non-coherently (summed magnitudes), since the paper's Eq. 15
            applies per frequency.
        spacing_m: element separation ``l``.
        frequency_hz: scalar carrier, or shape ``(K,)`` matching bands.
        angles_rad: candidate angles (defaults to 181 points over
            [-pi/2, pi/2]).

    Returns:
        ``(angles_rad, spectrum)`` with spectrum normalised to peak 1.
    """
    h = np.asarray(channels, dtype=complex)
    if h.ndim == 0 or h.ndim == 1:
        h = np.atleast_1d(h).reshape(-1, 1)
    elif h.ndim != 2:
        raise ConfigurationError(
            f"channels must be (J,) or (J, K), got {h.ndim}-D "
            f"shape {h.shape}"
        )
    num_antennas, num_bands = h.shape
    freqs = np.broadcast_to(
        np.atleast_1d(np.asarray(frequency_hz, dtype=float)), (num_bands,)
    )
    if angles_rad is None:
        angles_rad = np.linspace(-np.pi / 2.0, np.pi / 2.0, 181)
    j = np.arange(num_antennas)
    # Steering phase: undo the per-element phase the geometry imprinted.
    # In this library's convention element index grows towards the +array
    # axis and theta is measured towards that same axis, so element j is
    # *closer* to a +theta source and carries phase
    # +2*pi*j*l*sin(theta)/lambda; the steering conjugates it.  (The
    # paper's Eq. 3 writes the opposite sign because its Fig. 2 indexes
    # elements away from the target -- same physics, reversed element
    # order.)  One broadcast covers every band: the per-band phase is the
    # element/angle geometry scaled by that band's frequency.
    geometry = (
        -2.0 * np.pi * spacing_m * np.outer(j, np.sin(angles_rad))
    )  # (J, A)
    phases = (freqs / SPEED_OF_LIGHT)[:, None, None] * geometry[None, :, :]
    # Coherent sum over antennas per band, non-coherent over bands (the
    # paper's Eq. 15 applies per frequency).
    spectrum = np.abs(
        np.einsum("jk,kja->ka", h, np.exp(1j * phases))
    ).sum(axis=0)
    peak = spectrum.max()
    if peak > 0:
        spectrum = spectrum / peak
    return np.asarray(angles_rad), spectrum


def distance_spectrum(
    channels: np.ndarray,
    frequencies_hz: np.ndarray,
    distances_m: Optional[np.ndarray] = None,
) -> tuple:
    """Relative-distance likelihood ``Pt(d)`` for one antenna (Eq. 4/16).

    Args:
        channels: per-band channels of one antenna, shape ``(K,)``.  For
            corrected channels these encode *relative* distance
            ``d_ij - d_00 - baseline`` and the spectrum peaks there.
        frequencies_hz: band centre frequencies, shape ``(K,)``.
        distances_m: candidate (relative) distances; defaults to
            [-15 m, +15 m] at 5 cm steps, generous for indoor spans.

    Returns:
        ``(distances_m, spectrum)`` with spectrum normalised to peak 1.
    """
    h = np.asarray(channels, dtype=complex).ravel()
    freqs = np.asarray(frequencies_hz, dtype=float).ravel()
    if h.size != freqs.size:
        raise ConfigurationError(
            f"{h.size} channels but {freqs.size} frequencies"
        )
    if distances_m is None:
        distances_m = np.arange(-15.0, 15.0 + 1e-9, 0.05)
    phases = (
        2.0 * np.pi * np.outer(freqs, distances_m) / SPEED_OF_LIGHT
    )
    spectrum = np.abs(np.sum(h[:, None] * np.exp(1j * phases), axis=0))
    peak = spectrum.max()
    if peak > 0:
        spectrum = spectrum / peak
    return np.asarray(distances_m), spectrum


def range_resolution_m(bandwidth_hz: float) -> float:
    """Smallest resolvable path separation, Eq. 6: ``c / BW``."""
    if bandwidth_hz <= 0:
        raise ConfigurationError("bandwidth must be > 0")
    return SPEED_OF_LIGHT / bandwidth_hz


def aliasing_distance_m(frequency_gap_hz: float) -> float:
    """Unambiguous range of a band stack with gaps (Section 8.6):
    ``c / gap``."""
    if frequency_gap_hz <= 0:
        raise ConfigurationError("frequency gap must be > 0")
    return SPEED_OF_LIGHT / frequency_gap_hz
