"""Multi-round fusion: average corrected channels across hop sweeps.

A tag that holds still for a few connection-interval cycles yields several
measurement rounds.  The *raw* channels of different rounds cannot be
combined -- each round carries fresh random oscillator offsets -- but the
Eq. 10 corrected channels are offset-free, so they average coherently:
noise and oscillator drift shrink with the number of rounds while the
geometry stays put.  This is a direct corollary of the paper's correction
(and a nice demonstration that it really removes the offsets; averaging
raw channels instead destroys the signal, which a test verifies).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.correction import CorrectedChannels, correct_phase_offsets
from repro.core.localizer import BlocLocalizer, LocalizationResult
from repro.core.observations import ChannelObservations
from repro.errors import ConfigurationError, MeasurementError


def fuse_rounds(
    rounds: Sequence[ChannelObservations],
) -> CorrectedChannels:
    """Correct each round and average the corrected channels.

    Args:
        rounds: measurement rounds of the *same* (static) tag on the same
            deployment and band plan.

    Raises:
        MeasurementError: for empty input or mismatched rounds.
    """
    if not rounds:
        raise MeasurementError("need at least one measurement round")
    first = correct_phase_offsets(rounds[0])
    accumulator = first.alpha.copy()
    for observations in rounds[1:]:
        corrected = correct_phase_offsets(observations)
        if corrected.alpha.shape != first.alpha.shape or not np.allclose(
            corrected.frequencies_hz, first.frequencies_hz
        ):
            raise MeasurementError(
                "rounds have mismatching shapes or band plans"
            )
        accumulator += corrected.alpha
    return CorrectedChannels(
        anchors=first.anchors,
        master_index=first.master_index,
        frequencies_hz=first.frequencies_hz,
        alpha=accumulator / len(rounds),
        anchor_baselines_m=first.anchor_baselines_m,
    )


def locate_fused(
    localizer: BlocLocalizer,
    rounds: Sequence[ChannelObservations],
    keep_map: bool = False,
) -> LocalizationResult:
    """Localize from several fused measurement rounds.

    Runs the standard pipeline with the averaged corrected channels.
    """
    if not rounds:
        raise MeasurementError("need at least one measurement round")
    corrected = fuse_rounds(rounds)
    grid = localizer.grid_for(rounds[0])
    likelihood = localizer.map_likelihood(corrected, grid)
    scored = localizer.pick_peak(likelihood, corrected)
    winner = scored[0]
    position = winner.peak.position
    if localizer.config.refine_peaks:
        from repro.core.peaks import refine_peak_position

        position = refine_peak_position(
            likelihood.combined, grid, winner.peak
        )
    return LocalizationResult(
        position=position,
        scored_peaks=scored,
        likelihood=likelihood if keep_map else None,
    )


def coherence_gain(
    rounds: Sequence[ChannelObservations],
) -> float:
    """Ratio of fused to single-round corrected-channel magnitude.

    Close to 1 when the corrected channels of different rounds agree
    (correction worked); near ``1/sqrt(R)`` if they were random relative
    to each other (e.g. averaging *raw* channels).
    """
    if len(rounds) < 2:
        raise ConfigurationError("need at least two rounds")
    individuals = [correct_phase_offsets(o).alpha for o in rounds]
    fused = np.mean(individuals, axis=0)
    single_power = float(
        np.mean([np.mean(np.abs(a) ** 2) for a in individuals])
    )
    if single_power <= 0:
        return 0.0
    return float(np.sqrt(np.mean(np.abs(fused) ** 2) / single_power))
