"""Likelihood mapping: corrected channels to a 2-D spatial map (Eq. 17).

For a candidate tag position ``x`` and anchor ``i``, the corrected channel
``alpha_ijk`` predicts the phase

    -(2 pi f_k / c) * (|x - p_ij| - |x - p_00| - baseline_i)

where ``p_ij`` is antenna ``j`` of anchor ``i`` and ``p_00`` the master's
reference antenna.  Coherently summing ``alpha * exp(+j predicted phase)``
over antennas and bands scores how well ``x`` explains the measurements.
This evaluates Eq. 17 directly in cartesian space -- the "simple change of
coordinates" the paper mentions -- which is exact at any range (no
far-field approximation), and automatically fuses the angle information
(phase across antennas) with the relative-distance information (phase
across bands).

Per-anchor maps are normalised to peak 1 and summed (Section 5.3's final
step): likelihoods from different anchors have incommensurate scales
because the slave alphas carry extra |H| |h00| amplitude factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.contracts import shaped
from repro.constants import SPEED_OF_LIGHT
from repro.core.correction import CorrectedChannels
from repro.core.engine import SteeringCache
from repro.errors import ConfigurationError
from repro.utils.complexutils import normalize_peak
from repro.utils.gridmap import Grid2D


@dataclass
class LikelihoodMap:
    """A spatial likelihood distribution plus its provenance.

    Attributes:
        grid: the evaluation grid.
        combined: summed per-anchor maps, shape ``grid.shape``.
        per_anchor: list of normalised per-anchor maps.
    """

    grid: Grid2D
    combined: np.ndarray
    per_anchor: List[np.ndarray]

    @property
    def num_anchors(self) -> int:
        """Number of anchors that contributed."""
        return len(self.per_anchor)

    def normalized(self) -> np.ndarray:
        """Combined map scaled to peak 1."""
        return normalize_peak(self.combined)


@shaped(points=("N", 2), reference_distances=("N",))
def anchor_likelihood_flat(
    corrected: CorrectedChannels,
    anchor_index: int,
    points: np.ndarray,
    reference_distances: np.ndarray,
) -> np.ndarray:
    """Eq. 17 for one anchor over flattened candidate points.

    Args:
        corrected: the corrected channels.
        anchor_index: which anchor to evaluate.
        points: candidate positions, shape ``(N, 2)``.
        reference_distances: ``|x - p_00|`` per point, shape ``(N,)``
            (precomputed once and shared across anchors).

    Returns:
        Non-negative likelihood per point, shape ``(N,)``.
    """
    anchor = corrected.anchors[anchor_index]
    baseline = float(corrected.anchor_baselines_m[anchor_index])
    freqs = corrected.frequencies_hz
    wavenumbers = 2.0 * np.pi * freqs / SPEED_OF_LIGHT  # shape (K,)
    total = np.zeros(points.shape[0], dtype=complex)
    for j in range(corrected.num_antennas):
        element = anchor.antenna_position(j).as_array()
        distances = np.linalg.norm(points - element[None, :], axis=1)
        relative = distances - reference_distances - baseline  # (N,)
        # exp(+j k_f * relative) undoes the measured phase when x is right.
        phases = np.outer(relative, wavenumbers)  # (N, K)
        total += np.exp(1j * phases) @ corrected.alpha[anchor_index, j, :]
    return np.abs(total)


def compute_likelihood_map(
    corrected: CorrectedChannels,
    grid: Grid2D,
    anchor_weights: Optional[np.ndarray] = None,
    engine: Optional[SteeringCache] = None,
) -> LikelihoodMap:
    """Evaluate Eq. 17 for every anchor and combine over the grid.

    Args:
        corrected: corrected channels (from
            :func:`repro.core.correction.correct_phase_offsets`).
        grid: candidate-position grid.
        anchor_weights: optional per-anchor weights for the combination
            (default: equal weights, as in the paper).
        engine: optional :class:`~repro.core.engine.SteeringCache`; when
            given, the per-anchor evaluation runs on its precomputed
            steering matrices (one matvec per antenna) instead of the
            direct rebuild-everything path.  Results agree to floating
            point rounding (~1e-13 relative).

    Returns:
        The combined and per-anchor likelihood maps.
    """
    if anchor_weights is None:
        anchor_weights = np.ones(corrected.num_anchors)
    else:
        anchor_weights = np.asarray(anchor_weights, dtype=float)
        if anchor_weights.size != corrected.num_anchors:
            raise ConfigurationError(
                "anchor_weights length must match the anchor count"
            )
    if engine is not None:
        entry = engine.entry_for(corrected, grid)
        points = reference_distances = None
    else:
        entry = None
        points = grid.points()
        reference = corrected.master_reference_position().as_array()
        reference_distances = np.linalg.norm(
            points - reference[None, :], axis=1
        )
    per_anchor = []
    combined = np.zeros(grid.shape)
    for i in range(corrected.num_anchors):
        if entry is not None:
            flat = entry.anchor_likelihood(i, corrected.alpha[i])
        else:
            flat = anchor_likelihood_flat(
                corrected, i, points, reference_distances
            )
        normalised = normalize_peak(grid.reshape(flat))
        per_anchor.append(normalised)
        combined += anchor_weights[i] * normalised
    return LikelihoodMap(grid=grid, combined=combined, per_anchor=per_anchor)


def compute_likelihood_maps_batched(
    corrected_batch: Sequence[CorrectedChannels],
    grid: Grid2D,
    engine: SteeringCache,
    anchor_weights: Optional[np.ndarray] = None,
) -> List[LikelihoodMap]:
    """Eq. 17 for a whole batch of fixes through one matmul per antenna.

    All fixes must share the steering geometry (same grid, anchors,
    master, baselines and band plan -- the caller guarantees this; see
    :meth:`~repro.core.localizer.BlocLocalizer.locate_batch`): their
    corrected channels are stacked into a ``(B, anchors, antennas,
    bands)`` tensor and each anchor is evaluated with
    :meth:`~repro.core.engine.SteeringEntry.anchor_likelihood_batch`,
    so one BLAS call per antenna serves every fix in the batch.

    Per-map normalisation and anchor combination are identical to
    :func:`compute_likelihood_map`; results agree with the per-fix path
    up to BLAS reduction reordering (< 1e-12 relative).

    Args:
        corrected_batch: corrected channels of B fixes, shared geometry.
        grid: candidate-position grid (shared across the batch).
        engine: the steering cache (required -- batching exists to reuse
            its matrices; use :func:`compute_likelihood_map` per fix for
            the direct path).
        anchor_weights: optional per-anchor combination weights.

    Returns:
        One :class:`LikelihoodMap` per input fix, input order.
    """
    batch = list(corrected_batch)
    if not batch:
        return []
    num_anchors = batch[0].num_anchors
    if anchor_weights is None:
        anchor_weights = np.ones(num_anchors)
    else:
        anchor_weights = np.asarray(anchor_weights, dtype=float)
        if anchor_weights.size != num_anchors:
            raise ConfigurationError(
                "anchor_weights length must match the anchor count"
            )
    entry = engine.entry_for(batch[0], grid)
    alpha = np.stack([c.alpha for c in batch])  # (B, I, J, K)
    per_fix_anchor: List[List[np.ndarray]] = [[] for _ in batch]
    combined = np.zeros((len(batch),) + grid.shape)
    for i in range(num_anchors):
        flat = entry.anchor_likelihood_batch(i, alpha[:, i])  # (B, size)
        for b in range(len(batch)):
            normalised = normalize_peak(grid.reshape(flat[b]))
            per_fix_anchor[b].append(normalised)
            combined[b] += anchor_weights[i] * normalised
    return [
        LikelihoodMap(
            grid=grid, combined=combined[b], per_anchor=per_fix_anchor[b]
        )
        for b in range(len(batch))
    ]
