"""The end-to-end BLoc localizer.

Wire-up of the whole Section 5 pipeline:

    observations -> phase-offset correction (Eq. 10)
                 -> per-anchor likelihood maps over space (Eq. 17)
                 -> combined map -> peaks -> Eq. 18 scoring -> position

Alternative peak-selection strategies are built in because the paper's
Section 8.7 ablates them: ``"score"`` is full BLoc, ``"shortest"`` is the
naive shortest-distance baseline, ``"max_likelihood"`` just takes the
global maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.correction import CorrectedChannels, correct_phase_offsets
from repro.core.engine import SteeringCache
from repro.core.likelihood import LikelihoodMap, compute_likelihood_map
from repro.core.observations import ChannelObservations
from repro.core.peaks import Peak, PeakConfig, find_peaks, refine_peak_position
from repro.core.scoring import ScoredPeak, ScoringConfig, score_peaks
from repro.errors import ConfigurationError, LocalizationError
from repro.obs import get_observer
from repro.obs.diag import FixDiagnostics, FixDiagnosticsBuilder
from repro.utils.gridmap import Grid2D
from repro.utils.geometry2d import Point

#: Valid peak-selection strategies.
SELECTION_STRATEGIES = ("score", "shortest", "max_likelihood")


@dataclass(frozen=True)
class BlocConfig:
    """Configuration of the BLoc pipeline.

    Attributes:
        grid_resolution_m: spacing of the candidate-position grid.
        grid_margin_m: how far the grid extends beyond the anchor hull.
        peak: peak-detection parameters.
        scoring: Eq. 18 parameters.
        selection: peak-selection strategy (see module docstring).
        refine_peaks: sub-grid quadratic refinement of the winner.
    """

    grid_resolution_m: float = 0.05
    grid_margin_m: float = 0.25
    peak: PeakConfig = field(default_factory=PeakConfig)
    scoring: ScoringConfig = field(default_factory=ScoringConfig)
    selection: str = "score"
    refine_peaks: bool = True

    def __post_init__(self):
        if self.grid_resolution_m <= 0:
            raise ConfigurationError("grid resolution must be > 0")
        if self.grid_margin_m < 0:
            raise ConfigurationError("grid margin must be >= 0")
        if self.selection not in SELECTION_STRATEGIES:
            raise ConfigurationError(
                f"selection must be one of {SELECTION_STRATEGIES}, "
                f"got {self.selection!r}"
            )


@dataclass
class LocalizationResult:
    """Everything the pipeline produced for one fix.

    Attributes:
        position: the estimated tag position.
        scored_peaks: all candidate peaks with their scores (best first by
            the *active* strategy).
        likelihood: the full likelihood map (kept for analysis; drop it
            for bulk runs with ``keep_map=False``).
        diagnostics: per-stage signal-chain diagnostics, captured only
            when ``locate(..., diagnostics=True)``.
    """

    position: Point
    scored_peaks: List[ScoredPeak]
    likelihood: Optional[LikelihoodMap] = None
    diagnostics: Optional[FixDiagnostics] = None

    def error_m(self, ground_truth: Point) -> float:
        """Euclidean distance to a ground-truth position."""
        return (self.position - ground_truth).norm()


@dataclass
class BlocLocalizer:
    """CSI-based BLE localizer (the paper's system).

    Attributes:
        config: pipeline configuration.
        bounds: optional fixed grid bounds ``(x_min, x_max, y_min, y_max)``;
            by default the grid covers the anchors' bounding box plus the
            configured margin.
        engine: steering-matrix cache shared across ``locate()`` calls;
            the grid, anchor geometry and band plan are invariant over a
            sweep, so every fix after the first runs on precomputed
            steering matrices.  Pass ``engine=None`` to force the direct
            (rebuild-per-call) Eq. 17 path.
    """

    config: BlocConfig = field(default_factory=BlocConfig)
    bounds: Optional[Tuple[float, float, float, float]] = None
    engine: Optional[SteeringCache] = field(default_factory=SteeringCache)

    def grid_for(self, observations: ChannelObservations) -> Grid2D:
        """The evaluation grid for a set of observations."""
        if self.bounds is not None:
            return Grid2D.from_bounds(self.bounds, self.config.grid_resolution_m)
        xs = [a.position.x for a in observations.anchors]
        ys = [a.position.y for a in observations.anchors]
        margin = self.config.grid_margin_m
        return Grid2D(
            min(xs) - margin,
            max(xs) + margin,
            min(ys) - margin,
            max(ys) + margin,
            self.config.grid_resolution_m,
        )

    def correct(self, observations: ChannelObservations) -> CorrectedChannels:
        """Stage 1: remove per-hop oscillator phase offsets (Eq. 10)."""
        return correct_phase_offsets(observations)

    def map_likelihood(
        self, corrected: CorrectedChannels, grid: Grid2D
    ) -> LikelihoodMap:
        """Stage 2: per-anchor Eq. 17 maps, combined over anchors."""
        return compute_likelihood_map(corrected, grid, engine=self.engine)

    def pick_peak(
        self,
        likelihood: LikelihoodMap,
        corrected: CorrectedChannels,
    ) -> List[ScoredPeak]:
        """Stage 3: find and rank candidate peaks by the active strategy."""
        observer = get_observer()
        with observer.span("find_peaks"):
            peaks = find_peaks(
                likelihood.combined, likelihood.grid, self.config.peak
            )
        with observer.span("score_peaks"):
            scored = score_peaks(
                peaks,
                likelihood.combined,
                likelihood.grid,
                corrected.anchors,
                self.config.scoring,
            )
        if self.config.selection == "shortest":
            scored = sorted(scored, key=lambda s: s.distance_sum_m)
        elif self.config.selection == "max_likelihood":
            scored = sorted(scored, key=lambda s: s.peak.value, reverse=True)
        return scored

    def locate(
        self,
        observations: ChannelObservations,
        keep_map: bool = True,
        diagnostics: bool = False,
    ) -> LocalizationResult:
        """Run the full pipeline on one observation set.

        Args:
            observations: the measured channels of one fix.
            keep_map: retain the full likelihood map on the result.
            diagnostics: capture per-stage
                :class:`~repro.obs.diag.FixDiagnostics` on the result;
                when the pipeline raises, the partial diagnostics (up to
                the failing stage) are attached to the exception as
                ``exc.diagnostics``.

        Thread-safety: safe to call concurrently from evaluation workers;
        all per-fix state is local and the shared steering cache guards
        its own entries.

        Raises:
            LocalizationError: when the likelihood map is degenerate.
        """
        observer = get_observer()
        builder = FixDiagnosticsBuilder(observations) if diagnostics else None
        try:
            with observer.span("correct"):
                corrected = self.correct(observations)
            if builder is not None:
                builder.on_corrected(observations, corrected)
            grid = self.grid_for(observations)
            with observer.span("map_likelihood"):
                likelihood = self.map_likelihood(corrected, grid)
            if builder is not None:
                builder.on_likelihood(likelihood)
            with observer.span("pick_peak"):
                scored = self.pick_peak(likelihood, corrected)
            if builder is not None:
                builder.on_scored(scored, self.config.scoring)
            winner = scored[0]
            position = winner.peak.position
            if self.config.refine_peaks:
                with observer.span("refine"):
                    position = refine_peak_position(
                        likelihood.combined, grid, winner.peak
                    )
        except LocalizationError as exc:
            if builder is not None:
                exc.diagnostics = builder.build()
            raise
        if builder is not None:
            builder.on_position(position)
        return LocalizationResult(
            position=position,
            scored_peaks=scored,
            likelihood=likelihood if keep_map else None,
            diagnostics=builder.build() if builder is not None else None,
        )
