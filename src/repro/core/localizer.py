"""The end-to-end BLoc localizer.

Wire-up of the whole Section 5 pipeline:

    observations -> phase-offset correction (Eq. 10)
                 -> per-anchor likelihood maps over space (Eq. 17)
                 -> combined map -> peaks -> Eq. 18 scoring -> position

Alternative peak-selection strategies are built in because the paper's
Section 8.7 ablates them: ``"score"`` is full BLoc, ``"shortest"`` is the
naive shortest-distance baseline, ``"max_likelihood"`` just takes the
global maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.correction import CorrectedChannels, correct_phase_offsets
from repro.core.engine import SteeringCache, steering_cache_key
from repro.core.likelihood import (
    LikelihoodMap,
    compute_likelihood_map,
    compute_likelihood_maps_batched,
)
from repro.core.observations import ChannelObservations
from repro.core.peaks import (
    Peak,
    PeakConfig,
    find_peaks,
    local_maxima_batch,
    refine_peak_position,
    select_peaks,
)
from repro.core.scoring import ScoredPeak, ScoringConfig, score_peaks
from repro.errors import ConfigurationError, LocalizationError
from repro.obs import get_observer
from repro.obs.diag import FixDiagnostics, FixDiagnosticsBuilder
from repro.utils.gridmap import Grid2D
from repro.utils.geometry2d import Point

#: Valid peak-selection strategies.
SELECTION_STRATEGIES = ("score", "shortest", "max_likelihood")


@dataclass(frozen=True)
class BlocConfig:
    """Configuration of the BLoc pipeline.

    Attributes:
        grid_resolution_m: spacing of the candidate-position grid.
        grid_margin_m: how far the grid extends beyond the anchor hull.
        peak: peak-detection parameters.
        scoring: Eq. 18 parameters.
        selection: peak-selection strategy (see module docstring).
        refine_peaks: sub-grid quadratic refinement of the winner.
    """

    grid_resolution_m: float = 0.05
    grid_margin_m: float = 0.25
    peak: PeakConfig = field(default_factory=PeakConfig)
    scoring: ScoringConfig = field(default_factory=ScoringConfig)
    selection: str = "score"
    refine_peaks: bool = True

    def __post_init__(self):
        if self.grid_resolution_m <= 0:
            raise ConfigurationError("grid resolution must be > 0")
        if self.grid_margin_m < 0:
            raise ConfigurationError("grid margin must be >= 0")
        if self.selection not in SELECTION_STRATEGIES:
            raise ConfigurationError(
                f"selection must be one of {SELECTION_STRATEGIES}, "
                f"got {self.selection!r}"
            )


@dataclass
class LocalizationResult:
    """Everything the pipeline produced for one fix.

    Attributes:
        position: the estimated tag position.
        scored_peaks: all candidate peaks with their scores (best first by
            the *active* strategy).
        likelihood: the full likelihood map (kept for analysis; drop it
            for bulk runs with ``keep_map=False``).
        diagnostics: per-stage signal-chain diagnostics, captured only
            when ``locate(..., diagnostics=True)``.
    """

    position: Point
    scored_peaks: List[ScoredPeak]
    likelihood: Optional[LikelihoodMap] = None
    diagnostics: Optional[FixDiagnostics] = None

    def error_m(self, ground_truth: Point) -> float:
        """Euclidean distance to a ground-truth position."""
        return (self.position - ground_truth).norm()


@dataclass
class BlocLocalizer:
    """CSI-based BLE localizer (the paper's system).

    Attributes:
        config: pipeline configuration.
        bounds: optional fixed grid bounds ``(x_min, x_max, y_min, y_max)``;
            by default the grid covers the anchors' bounding box plus the
            configured margin.
        engine: steering-matrix cache shared across ``locate()`` calls;
            the grid, anchor geometry and band plan are invariant over a
            sweep, so every fix after the first runs on precomputed
            steering matrices.  Pass ``engine=None`` to force the direct
            (rebuild-per-call) Eq. 17 path.
    """

    config: BlocConfig = field(default_factory=BlocConfig)
    bounds: Optional[Tuple[float, float, float, float]] = None
    engine: Optional[SteeringCache] = field(default_factory=SteeringCache)

    def grid_for(self, observations: ChannelObservations) -> Grid2D:
        """The evaluation grid for a set of observations."""
        if self.bounds is not None:
            return Grid2D.from_bounds(self.bounds, self.config.grid_resolution_m)
        xs = [a.position.x for a in observations.anchors]
        ys = [a.position.y for a in observations.anchors]
        margin = self.config.grid_margin_m
        return Grid2D(
            min(xs) - margin,
            max(xs) + margin,
            min(ys) - margin,
            max(ys) + margin,
            self.config.grid_resolution_m,
        )

    def correct(self, observations: ChannelObservations) -> CorrectedChannels:
        """Stage 1: remove per-hop oscillator phase offsets (Eq. 10)."""
        return correct_phase_offsets(observations)

    def map_likelihood(
        self, corrected: CorrectedChannels, grid: Grid2D
    ) -> LikelihoodMap:
        """Stage 2: per-anchor Eq. 17 maps, combined over anchors."""
        return compute_likelihood_map(corrected, grid, engine=self.engine)

    def pick_peak(
        self,
        likelihood: LikelihoodMap,
        corrected: CorrectedChannels,
    ) -> List[ScoredPeak]:
        """Stage 3: find and rank candidate peaks by the active strategy."""
        observer = get_observer()
        with observer.span("find_peaks"):
            peaks = find_peaks(
                likelihood.combined, likelihood.grid, self.config.peak
            )
        with observer.span("score_peaks"):
            scored = score_peaks(
                peaks,
                likelihood.combined,
                likelihood.grid,
                corrected.anchors,
                self.config.scoring,
            )
        return self._order_scored(scored)

    def _order_scored(self, scored: List[ScoredPeak]) -> List[ScoredPeak]:
        """Rank scored peaks by the active selection strategy."""
        if self.config.selection == "shortest":
            return sorted(scored, key=lambda s: s.distance_sum_m)
        if self.config.selection == "max_likelihood":
            return sorted(scored, key=lambda s: s.peak.value, reverse=True)
        return scored

    def locate(
        self,
        observations: ChannelObservations,
        keep_map: bool = True,
        diagnostics: bool = False,
    ) -> LocalizationResult:
        """Run the full pipeline on one observation set.

        Args:
            observations: the measured channels of one fix.
            keep_map: retain the full likelihood map on the result.
            diagnostics: capture per-stage
                :class:`~repro.obs.diag.FixDiagnostics` on the result;
                when the pipeline raises, the partial diagnostics (up to
                the failing stage) are attached to the exception as
                ``exc.diagnostics``.

        Thread-safety: safe to call concurrently from evaluation workers;
        all per-fix state is local and the shared steering cache guards
        its own entries.

        Raises:
            LocalizationError: when the likelihood map is degenerate.
        """
        observer = get_observer()
        builder = FixDiagnosticsBuilder(observations) if diagnostics else None
        try:
            with observer.span("correct"):
                corrected = self.correct(observations)
            if builder is not None:
                builder.on_corrected(observations, corrected)
            grid = self.grid_for(observations)
            with observer.span("map_likelihood"):
                likelihood = self.map_likelihood(corrected, grid)
            if builder is not None:
                builder.on_likelihood(likelihood)
            with observer.span("pick_peak"):
                scored = self.pick_peak(likelihood, corrected)
            if builder is not None:
                builder.on_scored(scored, self.config.scoring)
            winner = scored[0]
            position = winner.peak.position
            if self.config.refine_peaks:
                with observer.span("refine"):
                    position = refine_peak_position(
                        likelihood.combined, grid, winner.peak
                    )
        except LocalizationError as exc:
            if builder is not None:
                exc.diagnostics = builder.build()
            raise
        if builder is not None:
            builder.on_position(position)
        return LocalizationResult(
            position=position,
            scored_peaks=scored,
            likelihood=likelihood if keep_map else None,
            diagnostics=builder.build() if builder is not None else None,
        )

    def _locate_contained(
        self, observations: ChannelObservations, keep_map: bool
    ) -> Union[LocalizationResult, LocalizationError]:
        """Per-fix ``locate`` with the failure returned, not raised."""
        try:
            return self.locate(observations, keep_map=keep_map)
        except LocalizationError as exc:
            return exc

    def locate_batch(
        self,
        observations_batch: Sequence[ChannelObservations],
        keep_map: bool = False,
    ) -> List[Union[LocalizationResult, LocalizationError]]:
        """Run the pipeline on B fixes through one batched Eq. 17 pass.

        The batch's corrected channels are stacked so each antenna's
        steering matrix is streamed through memory once per batch
        instead of once per fix (see
        :func:`~repro.core.likelihood.compute_likelihood_maps_batched`),
        and peak extraction runs one batched maximum filter.  Eq. 18
        scoring, strategy ordering and refinement match :meth:`locate`
        per fix; positions agree with the per-fix path up to BLAS
        reduction reordering (< 1e-9 m in practice -- the documented fp
        tolerance of the batched backend).

        Fix independence is preserved: the returned list is parallel to
        the input and each element is either a
        :class:`LocalizationResult` or the
        :class:`~repro.errors.LocalizationError` that fix produced --
        per-fix failures are *returned*, not raised, so one degenerate
        fix cannot sink its batchmates.

        Fixes that do not share the first fix's steering geometry, and
        whole batches when ``engine`` is None, fall back to per-fix
        :meth:`locate` (same results, no batching win).  Batch spans
        (``correct`` / ``map_likelihood`` / ``pick_peak``) cover the
        whole batch rather than single fixes.

        Thread-safety: safe to call concurrently from evaluation
        workers; all per-batch state is local and the shared steering
        cache guards its own entries.
        """
        observer = get_observer()
        batch = list(observations_batch)
        outcomes: List[
            Optional[Union[LocalizationResult, LocalizationError]]
        ] = [None] * len(batch)
        if not batch:
            return []
        if self.engine is None:
            return [
                self._locate_contained(obs, keep_map) for obs in batch
            ]
        prepared: List[Optional[Tuple[CorrectedChannels, Grid2D, tuple]]] = (
            [None] * len(batch)
        )
        with observer.span("correct", batch=len(batch)):
            for b, observations in enumerate(batch):
                try:
                    corrected = self.correct(observations)
                    grid = self.grid_for(observations)
                    key = steering_cache_key(
                        grid,
                        corrected.anchors,
                        corrected.master_index,
                        corrected.anchor_baselines_m,
                        corrected.frequencies_hz,
                    )
                except LocalizationError as exc:
                    outcomes[b] = exc
                    continue
                prepared[b] = (corrected, grid, key)
        live = [b for b in range(len(batch)) if prepared[b] is not None]
        if not live:
            return outcomes
        shared_key = prepared[live[0]][2]
        batched = [b for b in live if prepared[b][2] == shared_key]
        for b in live:
            if b not in batched:
                # Geometry stray: correct results beat batching wins.
                outcomes[b] = self._locate_contained(batch[b], keep_map)
        grid = prepared[batched[0]][1]
        with observer.span("map_likelihood", batch=len(batched)):
            maps = compute_likelihood_maps_batched(
                [prepared[b][0] for b in batched], grid, self.engine
            )
        with observer.span("pick_peak", batch=len(batched)):
            stack = np.stack([m.combined for m in maps])
            masks = local_maxima_batch(stack, self.config.peak)
            for pos, b in enumerate(batched):
                try:
                    peaks = select_peaks(
                        stack[pos], masks[pos], grid, self.config.peak
                    )
                    scored = self._order_scored(
                        score_peaks(
                            peaks,
                            maps[pos].combined,
                            grid,
                            prepared[b][0].anchors,
                            self.config.scoring,
                        )
                    )
                    winner = scored[0]
                    position = winner.peak.position
                    if self.config.refine_peaks:
                        position = refine_peak_position(
                            maps[pos].combined, grid, winner.peak
                        )
                except LocalizationError as exc:
                    outcomes[b] = exc
                    continue
                outcomes[b] = LocalizationResult(
                    position=position,
                    scored_peaks=scored,
                    likelihood=maps[pos] if keep_map else None,
                )
        return outcomes
