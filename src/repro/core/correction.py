"""Phase-offset cancellation: the triple product of Eq. 10.

Every frequency hop gives the tag and each anchor fresh random oscillator
phases, garbling the cross-band channel phase (Section 5.1).  BLoc removes
them collaboratively (Section 5.2): slave anchor ``i`` overhears both sides
of the master <-> tag exchange, and

    alpha_ij = h-hat_ij * conj(H-hat_i0) * conj(h-hat_00)

is offset-free, because the tag offset enters ``h-hat_ij`` and
``h-hat_00`` identically and the anchor offsets cancel between the three
factors.  For the master anchor itself there is no overheard response;
``alpha_0j = h-hat_0j * conj(h-hat_00)`` suffices since one oscillator
drives all its antennas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.contracts import shaped
from repro.core.observations import ChannelObservations
from repro.obs import STANDARD_METRICS, get_observer
from repro.rf.antenna import Anchor
from repro.utils.geometry2d import Point, distance


@dataclass
class CorrectedChannels:
    """Offset-free corrected channels ``alpha`` plus their geometry.

    Attributes:
        anchors: anchor descriptors (same order as the alpha rows).
        master_index: index of the master anchor.
        frequencies_hz: band centre frequencies, shape ``(K,)``.
        alpha: corrected channels, shape ``(I, J, K)``.
        anchor_baselines_m: known distance from each anchor's antenna 0 to
            the master's antenna 0 (the paper's ``d^{i0}_{00}``, measured
            once at deployment); 0 for the master itself.
    """

    anchors: List[Anchor]
    master_index: int
    frequencies_hz: np.ndarray
    alpha: np.ndarray
    anchor_baselines_m: np.ndarray

    @property
    def num_anchors(self) -> int:
        """Number of anchors ``I``."""
        return len(self.anchors)

    @property
    def num_antennas(self) -> int:
        """Antennas per anchor ``J``."""
        return int(self.alpha.shape[1])

    @property
    def num_bands(self) -> int:
        """Number of frequency bands ``K``."""
        return int(self.frequencies_hz.size)

    @property
    def master(self) -> Anchor:
        """The master anchor."""
        return self.anchors[self.master_index]

    def master_reference_position(self) -> Point:
        """Position of the reference element (master anchor, antenna 0)."""
        return self.master.antenna_position(0)


def anchor_baselines(anchors: List[Anchor], master_index: int) -> np.ndarray:
    """Deployment-time baselines ``d^{i0}_{00}`` for each anchor."""
    reference = anchors[master_index].antenna_position(0)
    return np.array(
        [
            distance(anchor.antenna_position(0), reference)
            for anchor in anchors
        ]
    )


def correct_phase_offsets(
    observations: ChannelObservations,
) -> CorrectedChannels:
    """Apply Eq. 10 to a full observation set.

    Args:
        observations: measured (offset-garbled) channels.

    Returns:
        The corrected channels ``alpha`` ready for likelihood mapping.
    """
    m = observations.master_index
    tag = observations.tag_to_anchor  # (I, J, K)
    master = observations.master_to_anchor  # (I, J, K)
    # Reference terms, broadcast over anchors and antennas.
    h00 = tag[m, 0, :]  # tag -> master antenna 0, shape (K,)
    alpha = np.empty_like(tag)
    for i in range(observations.num_anchors):
        if i == m:
            # Same oscillator on all master antennas: the h00 conjugate
            # cancels the (tag - master) offset common to every element.
            alpha[i] = tag[i] * np.conj(h00)[None, :]
        else:
            hi0 = master[i, 0, :]  # master ant0 -> slave ant0, shape (K,)
            alpha[i] = tag[i] * np.conj(hi0)[None, :] * np.conj(h00)[None, :]
    observer = get_observer()
    if observer.enabled:
        _record_correction_metrics(observer, tag, alpha)
    return CorrectedChannels(
        anchors=list(observations.anchors),
        master_index=m,
        frequencies_hz=observations.frequencies_hz.copy(),
        alpha=alpha,
        anchor_baselines_m=anchor_baselines(observations.anchors, m),
    )


@shaped(dtype=np.complexfloating, alpha=("I", "J", "K"))
def linear_phase_residual(alpha: np.ndarray) -> np.ndarray:
    """Deviation of the corrected cross-band phase from its linear trend.

    The paper's Fig. 8b shows that after Eq. 10 the phase across bands
    must be "clearly linear"; whatever is left after removing the
    per-(anchor, antenna) least-squares line is the *residual* the
    cancellation failed to remove -- oscillator drift between the two
    packets of an event, estimation noise, or a broken correction.

    Args:
        alpha: corrected channels, shape ``(I, J, K)``.

    Returns:
        Residual phase [rad], shape ``(I, J, K)``; all zeros when fewer
        than 3 bands are available (a line fits 2 points exactly).
    """
    num_bands = alpha.shape[2]
    phase = np.unwrap(np.angle(alpha), axis=2)
    if num_bands < 3:
        return np.zeros_like(phase)
    x = np.arange(num_bands, dtype=float)
    x = x - x.mean()
    denom = float(np.sum(x**2))
    flat = phase.reshape(-1, num_bands)
    slopes = flat @ x / denom
    fitted = slopes[:, None] * x[None, :] + flat.mean(axis=1, keepdims=True)
    return (flat - fitted).reshape(phase.shape)


@shaped(dtype=np.complexfloating, tag=("I", "J", "K"))
def usable_band_mask(tag: np.ndarray) -> np.ndarray:
    """Per-(anchor, band) mask of usable tag measurements, shape (I, K).

    A cell is usable when every antenna's measurement is finite and the
    anchor heard *something* on that band (non-zero total amplitude) --
    the same criterion the coverage metric and the diagnostics layer use,
    kept in one place so they can never disagree.
    """
    # Amplitude sink: the mask only needs magnitudes, the complex CSI
    # itself is untouched.
    total = np.abs(tag).sum(axis=1)  # repro: noqa[RPR001]
    return np.isfinite(tag).all(axis=1) & (total > 0)


def _record_correction_metrics(observer, tag: np.ndarray, alpha: np.ndarray):
    """Per-hop diagnostics for Eq. 10 (only runs when observability is on).

    * ``correction.hop_coverage`` -- fraction of (anchor, hop) cells with
      a usable (finite, non-zero) tag measurement; a hop the sweep never
      visited, or an anchor that lost the packet, shows up here.
    * ``correction.residual_phase_rad`` -- per-hop RMS deviation of the
      corrected cross-band phase from its per-(anchor, antenna) linear
      trend.  The paper's Fig. 8b shows this trend must be "clearly
      linear"; a drifting oscillator or broken correction inflates the
      residual long before the final error budget notices.
    """
    num_bands = tag.shape[2]
    usable = usable_band_mask(tag)
    coverage = float(np.mean(usable))
    metrics = observer.metrics
    metrics.gauge("correction.hop_coverage").set(coverage)
    metrics.counter("correction.hops_total").inc(num_bands)
    missing_hops = int(np.sum(~usable.all(axis=0)))
    if missing_hops:
        metrics.counter("correction.hops_missing").inc(missing_hops)
    if num_bands >= 3:
        residual = linear_phase_residual(alpha)  # (I, J, K)
        per_hop_rms = np.sqrt(np.mean(residual**2, axis=(0, 1)))
        histogram = metrics.histogram(
            "correction.residual_phase_rad",
            STANDARD_METRICS["correction.residual_phase_rad"][1],
        )
        for value in per_hop_rms:
            histogram.observe(float(value))


def residual_offset_spread(
    corrected: CorrectedChannels, reference: CorrectedChannels
) -> float:
    """RMS phase difference [rad] between two corrected-channel sets.

    Diagnostic used by tests: correcting the same physical channels under
    two different random offset realisations must give (numerically)
    identical alphas, so this spread should be ~0.
    """
    a = np.angle(corrected.alpha * np.conj(reference.alpha))
    return float(np.sqrt(np.mean(a**2)))
