"""Peak detection on 2-D likelihood maps.

The multipath-resolution stage (Section 5.4) reasons about *peaks* of the
combined likelihood: the direct path and each resolvable reflection appear
as local maxima.  This module finds them with a maximum filter, prunes
weak ones, and enforces a minimum separation so one physical peak is not
reported twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy import ndimage

from repro.analysis.contracts import shaped
from repro.errors import ConfigurationError, LocalizationError
from repro.obs import COUNT_BUCKETS, get_observer
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D


@dataclass(frozen=True)
class Peak:
    """One local maximum of a likelihood map.

    Attributes:
        row, col: grid indices of the maximum.
        position: world coordinates of the maximum.
        value: likelihood at the maximum.
    """

    row: int
    col: int
    position: Point
    value: float


@dataclass(frozen=True)
class PeakConfig:
    """Peak-detection knobs.

    Attributes:
        neighborhood: size of the local-maximum filter window (odd).
        min_relative_value: discard peaks below this fraction of the
            global maximum.
        min_separation_m: suppress peaks closer than this to a stronger one.
        max_peaks: cap on the number of returned peaks.
    """

    neighborhood: int = 5
    min_relative_value: float = 0.35
    min_separation_m: float = 0.4
    max_peaks: int = 12

    def __post_init__(self):
        if self.neighborhood < 3 or self.neighborhood % 2 == 0:
            raise ConfigurationError("neighborhood must be odd and >= 3")
        if not 0.0 <= self.min_relative_value <= 1.0:
            raise ConfigurationError(
                "min_relative_value must be in [0, 1]"
            )
        if self.min_separation_m < 0:
            raise ConfigurationError("min_separation_m must be >= 0")
        if self.max_peaks < 1:
            raise ConfigurationError("max_peaks must be >= 1")


@shaped(stack=("B", "H", "W"))
def local_maxima_batch(
    stack: np.ndarray, config: PeakConfig = PeakConfig()
) -> np.ndarray:
    """Local-maximum masks for a stack of maps in one filter pass.

    The maximum filter runs with a ``(1, n, n)`` window so maps never
    bleed into each other; one scipy call serves the whole batch, which
    is the batched localizer's peak-extraction fast path.

    Returns:
        Boolean mask stack, same shape as ``stack``.
    """
    arr = np.asarray(stack, dtype=float)
    footprint = (1, config.neighborhood, config.neighborhood)
    return (
        ndimage.maximum_filter(arr, size=footprint, mode="nearest") == arr
    )


@shaped(values=("H", "W"), local_max=("H", "W"))
def select_peaks(
    values: np.ndarray,
    local_max: np.ndarray,
    grid: Grid2D,
    config: PeakConfig = PeakConfig(),
) -> List[Peak]:
    """Threshold, order and separate candidate maxima into peaks.

    The second half of :func:`find_peaks`, split out so the batched
    path can reuse a precomputed local-maximum mask (see
    :func:`local_maxima_batch`).

    Raises:
        LocalizationError: when the map is degenerate (all equal/zero)
            or no candidate clears the threshold.
    """
    arr = np.asarray(values, dtype=float)
    global_max = float(arr.max())
    if global_max <= 0 or np.allclose(arr, arr.flat[0]):
        raise LocalizationError("likelihood map is flat; nothing to locate")
    threshold = config.min_relative_value * global_max
    candidate_mask = np.asarray(local_max, dtype=bool) & (arr >= threshold)
    rows, cols = np.nonzero(candidate_mask)
    order = np.argsort(arr[rows, cols])[::-1]
    selected: List[Peak] = []
    for idx in order:
        row, col = int(rows[idx]), int(cols[idx])
        position = grid.point_at(row, col)
        too_close = any(
            (position - p.position).norm() < config.min_separation_m
            for p in selected
        )
        if too_close:
            continue
        selected.append(
            Peak(
                row=row,
                col=col,
                position=position,
                value=float(arr[row, col]),
            )
        )
        if len(selected) >= config.max_peaks:
            break
    observer = get_observer()
    if observer.enabled:
        observer.metrics.histogram(
            "peaks.raw_candidates", COUNT_BUCKETS
        ).observe(len(rows))
        observer.metrics.histogram(
            "peaks.candidates", COUNT_BUCKETS
        ).observe(len(selected))
    if not selected:
        raise LocalizationError("no peaks cleared the detection threshold")
    return selected


@shaped(values=("H", "W"))
def find_peaks(
    values: np.ndarray, grid: Grid2D, config: PeakConfig = PeakConfig()
) -> List[Peak]:
    """Local maxima of a map, strongest first.

    Raises:
        LocalizationError: when the map is degenerate (all equal/zero),
            which would make every localizer downstream meaningless.
    """
    arr = np.asarray(values, dtype=float)
    if arr.shape != grid.shape:
        raise ConfigurationError(
            f"map shape {arr.shape} does not match grid {grid.shape}"
        )
    local_max = (
        ndimage.maximum_filter(arr, size=config.neighborhood, mode="nearest")
        == arr
    )
    return select_peaks(arr, local_max, grid, config)


@shaped(stack=("B", "H", "W"))
def find_peaks_batch(
    stack: np.ndarray, grid: Grid2D, config: PeakConfig = PeakConfig()
) -> List[List[Peak]]:
    """Per-map peaks for a stack of maps, one filter pass for the batch.

    Equivalent to ``[find_peaks(m, grid, config) for m in stack]`` but
    with the local-maximum filter batched (see
    :func:`local_maxima_batch`).  A degenerate map raises, as in
    :func:`find_peaks` -- callers needing per-map error containment
    (the batched localizer) use the mask + :func:`select_peaks` pair
    directly.

    Raises:
        LocalizationError: when any map in the stack is degenerate.
    """
    arr = np.asarray(stack, dtype=float)
    if arr.shape[1:] != grid.shape:
        raise ConfigurationError(
            f"map shape {arr.shape[1:]} does not match grid {grid.shape}"
        )
    masks = local_maxima_batch(arr, config)
    return [
        select_peaks(arr[b], masks[b], grid, config)
        for b in range(arr.shape[0])
    ]


@shaped(values=("H", "W"))
def refine_peak_position(
    values: np.ndarray, grid: Grid2D, peak: Peak
) -> Point:
    """Sub-grid peak position via a quadratic fit on the 3x3 neighbourhood.

    Keeps the grid resolution from flooring the localization accuracy: a
    5 cm grid with refinement resolves to ~1 cm on smooth peaks.  Falls
    back to the grid node at map borders.
    """
    arr = np.asarray(values, dtype=float)
    row, col = peak.row, peak.col
    if not (1 <= row < grid.num_y - 1 and 1 <= col < grid.num_x - 1):
        return peak.position
    window = arr[row - 1:row + 2, col - 1:col + 2]
    offsets = []
    for axis_values in (window[1, :], window[:, 1]):
        denom = axis_values[0] - 2 * axis_values[1] + axis_values[2]
        if abs(denom) < 1e-12:
            offsets.append(0.0)
        else:
            delta = 0.5 * (axis_values[0] - axis_values[2]) / denom
            offsets.append(float(np.clip(delta, -0.5, 0.5)))
    return Point(
        peak.position.x + offsets[0] * grid.resolution,
        peak.position.y + offsets[1] * grid.resolution,
    )
