"""Shared-memory publication of steering entries for process pools.

The steering cache of a default-room sweep holds ~89 MB of complex
matrices that are *read-only after build* -- exactly the shape of data
``multiprocessing.shared_memory`` exists for.  This module is the one
place in the repository that constructs ``SharedMemory`` segments
(enforced by lint rule RPR011): the evaluation parent publishes a built
:class:`~repro.core.engine.SteeringEntry` into one segment, ships a
small picklable :class:`SharedSteeringHandle` to each worker process,
and every worker attaches zero-copy numpy views onto the same physical
pages instead of rebuilding (or copy-on-write duplicating) the cache.

Ownership rules:

* The **publishing process owns the segment**.  The owner's
  :class:`SharedSteeringSegment` is refcounted (``retain``/``close``);
  the segment is unlinked from ``/dev/shm`` when the last owner-side
  reference closes.  Sweeps close in a ``finally``, so a worker crash
  mid-sweep still unlinks -- the kernel frees the pages once the dead
  worker's mappings are gone.
* **Workers never unlink.**  :func:`attach_steering` detaches the
  attachment from Python's ``resource_tracker`` (which would otherwise
  unlink the segment when the *first* worker exits) and its ``close``
  only unmaps.
* All views are marked read-only; Eq. 17 consumers only ever matmul
  against them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.runtime_locks import guarded_by, make_lock
from repro.core.engine import SteeringEntry
from repro.errors import ConfigurationError
from repro.utils.gridmap import Grid2D

#: Live owner-side segments of this process: name -> owning pid.
#: Guarded by _SEGMENTS_LOCK; introspected by tests via
#: :func:`active_segments` to prove sweeps leak nothing.
_SEGMENTS: Dict[str, int] = {}  # guarded-by: _SEGMENTS_LOCK
_SEGMENTS_LOCK = make_lock("parallel._SEGMENTS_LOCK")


@dataclass(frozen=True)
class SharedSteeringHandle:
    """Everything a worker needs to attach a published steering entry.

    A handle is a small picklable value object: segment name, the
    :func:`~repro.core.engine.steering_cache_key` the entry belongs
    under, the grid/band-plan scalars to reconstruct metadata, and the
    ``(anchor, antenna)`` layout of the packed matrices.

    Attributes:
        name: shared-memory segment name (attach-by-name).
        cache_key: steering-cache key of the published geometry.
        grid_params: ``(x_min, x_max, y_min, y_max, resolution)``.
        frequencies_hz: band plan of the matrix columns.
        matrix_keys: ``(anchor, antenna)`` keys in packing order.
        num_points: grid points per matrix (rows).
        num_bands: bands per matrix (columns).
        build_seconds: build cost of the original entry (carried along
            so worker-side cache stats stay meaningful).
        used_lattice: whether the phasor-recurrence fast path applied.
    """

    name: str
    cache_key: tuple
    grid_params: Tuple[float, float, float, float, float]
    frequencies_hz: Tuple[float, ...]
    matrix_keys: Tuple[Tuple[int, int], ...]
    num_points: int
    num_bands: int
    build_seconds: float
    used_lattice: bool

    @property
    def nbytes(self) -> int:
        """Total payload size of the segment."""
        point_bytes = np.dtype(np.float64).itemsize
        matrix_bytes = (
            self.num_points * self.num_bands
            * np.dtype(np.complex128).itemsize
        )
        return (
            self.num_points * point_bytes
            + len(self.matrix_keys) * matrix_bytes
        )


def _entry_from_buffer(
    handle: SharedSteeringHandle, shm: shared_memory.SharedMemory
) -> SteeringEntry:
    """Zero-copy, read-only :class:`SteeringEntry` views over a segment.

    The returned entry carries a reference to the ``SharedMemory``
    object (``_shm_keepalive``): numpy views do not pin the mapping, so
    without it a garbage-collected ``SharedMemory`` would munmap the
    pages under the live views -- a segfault, not an exception.
    """
    buf = shm.buf
    n, k = handle.num_points, handle.num_bands
    reference = np.ndarray((n,), dtype=np.float64, buffer=buf, offset=0)
    reference.flags.writeable = False
    offset = reference.nbytes
    matrices: Dict[Tuple[int, int], np.ndarray] = {}
    for key in handle.matrix_keys:
        matrix = np.ndarray(
            (n, k), dtype=np.complex128, buffer=buf, offset=offset
        )
        matrix.flags.writeable = False
        matrices[key] = matrix
        offset += matrix.nbytes
    entry = SteeringEntry(
        grid=Grid2D(*handle.grid_params),
        frequencies_hz=np.asarray(handle.frequencies_hz, dtype=float),
        reference_distances_m=reference,
        matrices=matrices,
        build_seconds=handle.build_seconds,
        used_lattice=handle.used_lattice,
    )
    entry._shm_keepalive = shm
    return entry


def _release_shm(shm: shared_memory.SharedMemory) -> None:
    """Unmap a segment, tolerating still-live exported views.

    ``SharedMemory.close`` raises ``BufferError`` while any numpy view
    of the buffer is alive; the views die with the process (or the
    caller's last reference), so a failed unmap here is deferred, not
    leaked -- ``unlink`` works by name regardless.
    """
    try:
        shm.close()
    except BufferError:
        pass


class AttachedSteering:
    """A worker-side attachment to a published steering segment.

    Holds the read-only entry views plus the underlying mapping.  The
    attachment never unlinks -- only the publishing owner does -- and is
    deregistered from the resource tracker so a worker exit cannot tear
    the segment out from under its siblings.
    """

    def __init__(
        self,
        handle: SharedSteeringHandle,
        shm: shared_memory.SharedMemory,
    ):
        self.handle = handle
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.entry: Optional[SteeringEntry] = _entry_from_buffer(
            handle, shm
        )

    def close(self) -> None:
        """Drop the entry views and unmap (idempotent; never unlinks)."""
        self.entry = None
        if self._shm is not None:
            _release_shm(self._shm)
            self._shm = None


@guarded_by("_lock", "_refs", "_shm")
class SharedSteeringSegment:
    """Owner side of one published steering segment (refcounted).

    Created by :func:`publish_steering_entry` with one reference held by
    the publisher.  ``retain()`` adds owner-side references (e.g. two
    overlapping sweeps sharing one publication); ``close()`` releases
    one, and the last release unmaps and **unlinks** the segment.

    Thread-safety: the refcount is lock-protected; ``entry()`` returns
    read-only views and may be called from any thread while the segment
    is live.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        handle: SharedSteeringHandle,
    ):
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.handle = handle
        self._refs = 1
        self._lock = make_lock("SharedSteeringSegment._lock")
        with _SEGMENTS_LOCK:
            _SEGMENTS[handle.name] = os.getpid()

    def retain(self) -> "SharedSteeringSegment":
        """Add one owner-side reference; returns self for chaining.

        Thread-safety: the refcount bump happens under the instance
        lock, so concurrent ``retain``/``close`` calls never race.
        """
        with self._lock:
            if self._shm is None:
                raise ConfigurationError(
                    f"steering segment {self.handle.name} already unlinked"
                )
            self._refs += 1
        return self

    def entry(self) -> SteeringEntry:
        """Read-only entry views over the owner's own mapping."""
        with self._lock:
            if self._shm is None:
                raise ConfigurationError(
                    f"steering segment {self.handle.name} already unlinked"
                )
            return _entry_from_buffer(self.handle, self._shm)

    def close(self) -> None:
        """Release one reference; the last release unlinks the segment.

        Idempotent once fully closed.  Thread-safety: refcount under the
        instance lock, the unlink itself outside it.
        """
        with self._lock:
            if self._shm is None:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            shm = self._shm
            self._shm = None
        with _SEGMENTS_LOCK:
            _SEGMENTS.pop(self.handle.name, None)
        _release_shm(shm)
        try:
            shm.unlink()
        except FileNotFoundError:
            pass  # already gone (e.g. external cleanup); nothing to leak


def publish_steering_entry(
    entry: SteeringEntry, cache_key: tuple
) -> SharedSteeringSegment:
    """Publish a built steering entry into one shared-memory segment.

    Packs the reference-distance vector and every ``(anchor, antenna)``
    steering matrix contiguously into a fresh segment and returns the
    owning (refcounted) :class:`SharedSteeringSegment`; ship
    ``segment.handle`` to workers and :func:`attach_steering` there.

    Raises:
        ConfigurationError: inconsistent matrix shapes in the entry.
    """
    matrix_keys = tuple(sorted(entry.matrices))
    n = int(entry.reference_distances_m.shape[0])
    k = int(np.asarray(entry.frequencies_hz).shape[0])
    for key in matrix_keys:
        if entry.matrices[key].shape != (n, k):
            raise ConfigurationError(
                f"steering matrix {key} has shape "
                f"{entry.matrices[key].shape}, expected {(n, k)}"
            )
    grid = entry.grid
    handle_fields = dict(
        cache_key=cache_key,
        grid_params=(
            grid.x_min, grid.x_max, grid.y_min, grid.y_max, grid.resolution
        ),
        frequencies_hz=tuple(
            float(f) for f in np.asarray(entry.frequencies_hz)
        ),
        matrix_keys=matrix_keys,
        num_points=n,
        num_bands=k,
        build_seconds=float(entry.build_seconds),
        used_lattice=bool(entry.used_lattice),
    )
    total = (
        n * np.dtype(np.float64).itemsize
        + len(matrix_keys) * n * k * np.dtype(np.complex128).itemsize
    )
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        offset = 0
        reference = np.ndarray(
            (n,), dtype=np.float64, buffer=shm.buf, offset=offset
        )
        reference[...] = entry.reference_distances_m
        offset += reference.nbytes
        for key in matrix_keys:
            matrix = np.ndarray(
                (n, k), dtype=np.complex128, buffer=shm.buf, offset=offset
            )
            matrix[...] = entry.matrices[key]
            offset += matrix.nbytes
            del matrix  # writable views must not outlive publication
        del reference
        handle = SharedSteeringHandle(name=shm.name, **handle_fields)
    except BaseException:  # repro: noqa[RPR008] -- cleanup-and-reraise; even KeyboardInterrupt must not leak the segment
        # A failed fill must not leak the freshly created segment: no
        # SharedSteeringSegment owns it yet, so nothing else ever would
        # close or unlink it (RPR015's exception-path case).
        _release_shm(shm)
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        raise
    return SharedSteeringSegment(shm, handle)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment by name without resource-tracker registration.

    Python 3.11 registers every attach with the resource tracker, which
    then *unlinks* the segment when any single attaching process exits
    -- only the owner may unlink (3.13's ``track=False`` is the real
    fix).  Registering and immediately unregistering is not enough
    either: the tracker cache is one set shared across a fork tree, so
    a second attacher's unregister would erase the *owner's* create-time
    registration and a third's would crash the tracker with a KeyError.
    Suppressing the registration call for the duration of the
    constructor sidesteps both.

    Thread-safety: the patch window is serialized by a module lock;
    concurrent attaches queue, and only ``register`` calls made from
    *this* constructor are suppressed in practice (attaches happen in
    single-threaded worker initialisation).
    """
    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = _register_noop
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _register_noop(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` during attach."""


_TRACKER_PATCH_LOCK = make_lock("parallel._TRACKER_PATCH_LOCK")


def attach_steering(handle: SharedSteeringHandle) -> AttachedSteering:
    """Attach a published segment by name (worker side).

    The attachment is never registered with the resource tracker (see
    :func:`_attach_untracked`): exit-time cleanup belongs to the owning
    process alone, whose create-time registration stays intact.

    Raises:
        ConfigurationError: the segment no longer exists (published
            entry already unlinked).
    """
    try:
        shm = _attach_untracked(handle.name)
    except FileNotFoundError as exc:
        raise ConfigurationError(
            f"steering segment {handle.name} does not exist "
            f"(already unlinked?)"
        ) from exc
    return AttachedSteering(handle, shm)


def active_segments() -> Tuple[str, ...]:
    """Names of segments this process currently owns (for tests/debug)."""
    with _SEGMENTS_LOCK:
        return tuple(sorted(_SEGMENTS))
