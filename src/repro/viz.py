"""Terminal visualisation: ASCII renderings of likelihood maps and rooms.

The paper's figures plot likelihood heat maps over the room (Fig. 6,
Fig. 8c); this module renders the same maps in a terminal so the examples
and debugging sessions can *see* the multipath peaks without a plotting
dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.complexutils import normalize_peak
from repro.utils.geometry2d import Point
from repro.utils.gridmap import Grid2D

#: Luminance ramp from empty to peak.
_RAMP = " .:-=+*#%@"


def render_map(
    values: np.ndarray,
    grid: Grid2D,
    width: int = 64,
    markers: Optional[Sequence] = None,
) -> str:
    """Render a 2-D likelihood map as ASCII art.

    Args:
        values: map of shape ``grid.shape``.
        grid: the map's grid.
        width: output width in characters (height follows the aspect
            ratio, halved because terminal cells are ~2x taller than
            wide).
        markers: optional ``(point, character)`` pairs drawn on top
            (e.g. the true and estimated positions).

    Returns:
        A newline-joined string, north at the top.
    """
    arr = np.asarray(values, dtype=float)
    if arr.shape != grid.shape:
        raise ConfigurationError(
            f"map shape {arr.shape} does not match grid {grid.shape}"
        )
    if width < 8:
        raise ConfigurationError("width must be >= 8")
    aspect = (grid.y_max - grid.y_min) / (grid.x_max - grid.x_min)
    height = max(int(round(width * aspect / 2.0)), 4)
    normalised = normalize_peak(arr)
    rows: List[List[str]] = []
    for r in range(height):
        # Row 0 is the top of the picture = max y.
        y = grid.y_max - (r + 0.5) * (grid.y_max - grid.y_min) / height
        row = []
        for c in range(width):
            x = grid.x_min + (c + 0.5) * (grid.x_max - grid.x_min) / width
            gr, gc = grid.index_of(Point(x, y))
            level = normalised[gr, gc]
            row.append(_RAMP[int(level * (len(_RAMP) - 1))])
        rows.append(row)
    for point, character in markers or []:
        if not grid.contains(point):
            continue
        c = int(
            (point.x - grid.x_min) / (grid.x_max - grid.x_min) * width
        )
        r = int(
            (grid.y_max - point.y) / (grid.y_max - grid.y_min) * height
        )
        c = min(max(c, 0), width - 1)
        r = min(max(r, 0), height - 1)
        rows[r][c] = character[0]
    border = "+" + "-" * width + "+"
    body = ["|" + "".join(row) + "|" for row in rows]
    return "\n".join([border, *body, border])


def render_testbed(testbed, width: int = 64) -> str:
    """ASCII floor plan: walls, reflectors (#), anchors (A), master (M)."""
    env = testbed.environment
    x_min, x_max, y_min, y_max = env.bounds()
    grid = Grid2D(x_min, x_max, y_min, y_max, min(env.width, env.height) / 40)
    blank = np.zeros(grid.shape)
    markers = []
    for reflector in env.reflectors:
        segment = reflector.segment
        steps = max(int(segment.length() / grid.resolution), 1)
        for k in range(steps + 1):
            markers.append((segment.point_at(k / steps), "#"))
    for anchor in testbed.anchors:
        symbol = "M" if anchor is testbed.master else "A"
        markers.append((anchor.position, symbol))
    return render_map(blank, grid, width=width, markers=markers)
