"""BLE PDU framing and on-air packet assembly.

An on-air BLE (1M PHY) packet is:

    preamble (1 octet) | access address (4 octets) | PDU | CRC (3 octets)

with the PDU and CRC whitened.  Octets go on air least-significant bit
first.  BLoc uses standard data-channel PDUs whose payload is crafted to
contain long 0/1 runs (Section 4); the framing here is what both the master
anchor and the tag transmit in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.constants import (
    BLE_CRC_INIT_ADVERTISING,
    BLE_MAX_PAYLOAD_OCTETS,
)
from repro.errors import ProtocolError
from repro.ble.access_address import address_to_bits, bits_to_address
from repro.ble.crc import append_crc, check_crc
from repro.ble.whitening import whiten


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Octets to air-order bits (LSB of each octet first)."""
    if not data:
        return np.zeros(0, dtype=np.uint8)
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr, bitorder="little")


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Air-order bits back to octets.

    Raises:
        ProtocolError: if the bit count is not a multiple of 8.
    """
    arr = np.asarray(bits, dtype=np.uint8) & 1
    if arr.size % 8 != 0:
        raise ProtocolError(f"bit count {arr.size} is not a whole octet count")
    return np.packbits(arr, bitorder="little").tobytes()


class Llid:
    """LLID values of the data-channel PDU header."""

    CONTINUATION = 0b01
    START = 0b10
    CONTROL = 0b11


@dataclass
class DataPdu:
    """A data-channel PDU: 16-bit header + payload octets.

    Attributes:
        payload: the payload octets.
        llid: 2-bit logical-link identifier.
        nesn: next-expected-sequence-number bit.
        sn: sequence-number bit.
        md: more-data bit.
    """

    payload: bytes = b""
    llid: int = Llid.START
    nesn: int = 0
    sn: int = 0
    md: int = 0

    def __post_init__(self):
        if not 0 <= self.llid <= 3 or self.llid == 0:
            raise ProtocolError(f"invalid LLID {self.llid}")
        for name in ("nesn", "sn", "md"):
            if getattr(self, name) not in (0, 1):
                raise ProtocolError(f"{name} must be 0 or 1")
        if len(self.payload) > BLE_MAX_PAYLOAD_OCTETS:
            raise ProtocolError(
                f"payload too long: {len(self.payload)} > "
                f"{BLE_MAX_PAYLOAD_OCTETS} octets"
            )

    def header_bytes(self) -> bytes:
        """The 2 header octets (flags + length)."""
        first = (
            self.llid
            | (self.nesn << 2)
            | (self.sn << 3)
            | (self.md << 4)
        )
        return bytes([first, len(self.payload)])

    def to_bits(self) -> np.ndarray:
        """Whole PDU (header + payload) in air order."""
        return bytes_to_bits(self.header_bytes() + self.payload)

    @staticmethod
    def from_bits(bits: Sequence[int]) -> "DataPdu":
        """Parse a PDU from air-order bits.

        Raises:
            ProtocolError: for malformed headers or truncated payloads.
        """
        data = bits_to_bytes(bits)
        if len(data) < 2:
            raise ProtocolError("PDU shorter than its header")
        first, length = data[0], data[1]
        if len(data) != 2 + length:
            raise ProtocolError(
                f"PDU length field says {length} octets, got {len(data) - 2}"
            )
        return DataPdu(
            payload=data[2:],
            llid=first & 0b11,
            nesn=(first >> 2) & 1,
            sn=(first >> 3) & 1,
            md=(first >> 4) & 1,
        )


#: Preamble bits for the 1M PHY.  The spec alternates starting with the
#: complement of the access address LSB; we compute it per packet.
def preamble_bits(access_address: int) -> np.ndarray:
    """8 alternating preamble bits matching the access address LSB."""
    first = access_address & 1
    pattern = [(first + k) % 2 for k in range(1, 9)]
    # Spec: preamble alternates and its last bit differs from AA bit 0,
    # i.e. the sequence ...b7 with b7 != AA[0] and alternation back.
    return np.array(pattern[::-1], dtype=np.uint8)


@dataclass
class OnAirPacket:
    """A fully assembled on-air bit stream plus its framing metadata.

    Attributes:
        bits: all bits in transmission order (preamble..whitened CRC).
        access_address: the connection's access address.
        channel_index: channel the packet is sent on (drives whitening).
        pdu: the framed PDU.
    """

    bits: np.ndarray
    access_address: int
    channel_index: int
    pdu: DataPdu

    @property
    def num_bits(self) -> int:
        """Total transmitted bit count."""
        return int(self.bits.size)

    def payload_bit_offset(self) -> int:
        """Index of the first payload bit within :attr:`bits`."""
        return 8 + 32 + 16


def assemble_packet(
    pdu: DataPdu,
    access_address: int,
    channel_index: int,
    crc_init: int = BLE_CRC_INIT_ADVERTISING,
    whitening_enabled: bool = True,
) -> OnAirPacket:
    """Frame a PDU into the on-air bit stream.

    Whitening can be disabled for raw-PHY localization experiments (see
    :mod:`repro.ble.localization` for why); the spec always whitens, and
    the default reflects that.
    """
    pdu_crc = append_crc(pdu.to_bits(), crc_init)
    if whitening_enabled:
        pdu_crc = whiten(pdu_crc, channel_index)
    bits = np.concatenate(
        [
            preamble_bits(access_address),
            address_to_bits(access_address),
            pdu_crc,
        ]
    )
    return OnAirPacket(
        bits=bits,
        access_address=access_address,
        channel_index=channel_index,
        pdu=pdu,
    )


def disassemble_packet(
    bits: Sequence[int],
    channel_index: int,
    crc_init: int = BLE_CRC_INIT_ADVERTISING,
    whitening_enabled: bool = True,
) -> OnAirPacket:
    """Parse and CRC-check an on-air bit stream back into a PDU.

    Raises:
        ProtocolError / CrcError: on framing or integrity failures.
    """
    arr = np.asarray(bits, dtype=np.uint8) & 1
    if arr.size < 8 + 32 + 16 + 24:
        raise ProtocolError("bit stream too short for a BLE packet")
    access_address = bits_to_address(arr[8:40])
    body = arr[40:]
    if whitening_enabled:
        body = whiten(body, channel_index)
    pdu_bits = check_crc(body, crc_init)
    pdu = DataPdu.from_bits(pdu_bits)
    return OnAirPacket(
        bits=arr,
        access_address=access_address,
        channel_index=channel_index,
        pdu=pdu,
    )
