"""BLE channel map: indices, centre frequencies, and channel roles.

BLE divides the 2.4 GHz ISM band into 40 channels of 2 MHz (paper Fig. 1a).
Three of them (37, 38, 39) are advertising channels interleaved with the 37
data channels in frequency:

    index 37 -> 2402 MHz          (advertising)
    data 0..10 -> 2404..2424 MHz
    index 38 -> 2426 MHz          (advertising)
    data 11..36 -> 2428..2478 MHz
    index 39 -> 2480 MHz          (advertising)

Terminology used throughout this library:

* *channel index* -- the spec's 0..39 numbering above.
* *data channel*  -- index 0..36, the hopping channels BLoc stitches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import (
    BLE_ADVERTISING_CHANNELS,
    BLE_BAND_END_HZ,
    BLE_BAND_START_HZ,
    BLE_CHANNEL_38_FREQ_HZ,
    BLE_CHANNEL_WIDTH_HZ,
    BLE_DATA_HIGH_BASE_HZ,
    BLE_DATA_LOW_BASE_HZ,
    BLE_NUM_CHANNELS,
    BLE_NUM_DATA_CHANNELS,
)
from repro.errors import ProtocolError


def is_advertising_channel(channel_index: int) -> bool:
    """Whether ``channel_index`` is one of the 3 advertising channels."""
    return channel_index in BLE_ADVERTISING_CHANNELS


def data_channel_to_frequency(data_channel: int) -> float:
    """Centre frequency [Hz] of data channel ``0..36``.

    Raises:
        ProtocolError: for indices outside the data-channel range.
    """
    if not 0 <= data_channel < BLE_NUM_DATA_CHANNELS:
        raise ProtocolError(
            f"data channel must be 0..36, got {data_channel}"
        )
    if data_channel <= 10:
        return BLE_DATA_LOW_BASE_HZ + BLE_CHANNEL_WIDTH_HZ * data_channel
    return BLE_DATA_HIGH_BASE_HZ + BLE_CHANNEL_WIDTH_HZ * (data_channel - 11)


def channel_index_to_frequency(channel_index: int) -> float:
    """Centre frequency [Hz] of any channel index ``0..39``."""
    if not 0 <= channel_index < BLE_NUM_CHANNELS:
        raise ProtocolError(
            f"channel index must be 0..39, got {channel_index}"
        )
    if channel_index == 37:
        return BLE_BAND_START_HZ
    if channel_index == 38:
        return BLE_CHANNEL_38_FREQ_HZ
    if channel_index == 39:
        return BLE_BAND_END_HZ
    return data_channel_to_frequency(channel_index)


def frequency_to_data_channel(frequency_hz: float) -> int:
    """Inverse of :func:`data_channel_to_frequency` (exact centres only)."""
    for channel in range(BLE_NUM_DATA_CHANNELS):
        if abs(data_channel_to_frequency(channel) - frequency_hz) < 1.0:
            return channel
    raise ProtocolError(
        f"{frequency_hz / 1e6:.1f} MHz is not a BLE data-channel centre"
    )


def all_data_channel_frequencies() -> List[float]:
    """Centre frequencies of all 37 data channels, in index order."""
    return [
        data_channel_to_frequency(ch) for ch in range(BLE_NUM_DATA_CHANNELS)
    ]


@dataclass(frozen=True)
class ChannelMap:
    """The set of data channels a connection may use.

    BLE lets a master blacklist channels that suffer Wi-Fi interference
    (paper Section 8.6); the remaining "used" channels must number >= 2.

    Attributes:
        used: sorted tuple of usable data-channel indices.
    """

    used: tuple

    def __post_init__(self):
        channels = tuple(sorted(set(int(c) for c in self.used)))
        if len(channels) < 2:
            raise ProtocolError("a channel map needs at least 2 channels")
        for channel in channels:
            if not 0 <= channel < BLE_NUM_DATA_CHANNELS:
                raise ProtocolError(
                    f"channel map entry out of range: {channel}"
                )
        object.__setattr__(self, "used", channels)

    @property
    def num_used(self) -> int:
        """Number of usable channels."""
        return len(self.used)

    def contains(self, data_channel: int) -> bool:
        """Whether ``data_channel`` is usable under this map."""
        return data_channel in self.used

    def remap(self, unmapped_channel: int) -> int:
        """Spec remapping: replace an unused channel by ``used[ch mod N]``.

        This is how Channel Selection Algorithm #1 handles blacklisted
        channels (Core spec Vol 6 Part B 4.5.8.2).
        """
        if self.contains(unmapped_channel):
            return unmapped_channel
        return self.used[unmapped_channel % self.num_used]

    def frequencies(self) -> List[float]:
        """Centre frequencies [Hz] of the usable channels."""
        return [data_channel_to_frequency(ch) for ch in self.used]

    @staticmethod
    def all_channels() -> "ChannelMap":
        """Map with every data channel usable (the common case)."""
        return ChannelMap(tuple(range(BLE_NUM_DATA_CHANNELS)))

    @staticmethod
    def subsampled(factor: int) -> "ChannelMap":
        """Every ``factor``-th data channel, for the Fig. 11 experiment."""
        if factor < 1:
            raise ProtocolError("subsample factor must be >= 1")
        return ChannelMap(tuple(range(0, BLE_NUM_DATA_CHANNELS, factor)))

    @staticmethod
    def from_blacklist(blacklisted: Sequence[int]) -> "ChannelMap":
        """Map excluding the given data channels."""
        excluded = set(int(c) for c in blacklisted)
        used = tuple(
            ch for ch in range(BLE_NUM_DATA_CHANNELS) if ch not in excluded
        )
        return ChannelMap(used)
