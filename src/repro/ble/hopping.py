"""Channel Selection Algorithm #1: the frequency-hop sequence of BLE.

After connection establishment, master and slave hop by ``hop_increment``
data channels per connection event:

    unmapped(n+1) = (unmapped(n) + hop_increment) mod 37

Because 37 is prime, any ``hop_increment`` in 5..16 walks through *all* 37
data channels before repeating (paper Section 2.1) -- the property BLoc
exploits to stitch an 80 MHz aperture out of 2 MHz channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.constants import BLE_NUM_DATA_CHANNELS
from repro.errors import ProtocolError
from repro.ble.channels import ChannelMap

#: Range the spec allows for the hop increment.
MIN_HOP_INCREMENT = 5
MAX_HOP_INCREMENT = 16


@dataclass
class HopSequence:
    """Stateful CSA#1 hop sequence generator.

    Attributes:
        hop_increment: per-event channel advance (spec: 5..16).
        channel_map: usable channels; unusable ones get remapped.
        start_channel: unmapped channel of the first connection event.
    """

    hop_increment: int = 7
    channel_map: ChannelMap = field(default_factory=ChannelMap.all_channels)
    start_channel: int = 0

    def __post_init__(self):
        if not MIN_HOP_INCREMENT <= self.hop_increment <= MAX_HOP_INCREMENT:
            raise ProtocolError(
                "hop increment must be in "
                f"[{MIN_HOP_INCREMENT}, {MAX_HOP_INCREMENT}], "
                f"got {self.hop_increment}"
            )
        if not 0 <= self.start_channel < BLE_NUM_DATA_CHANNELS:
            raise ProtocolError(
                f"start channel must be 0..36, got {self.start_channel}"
            )
        self._unmapped = self.start_channel

    def current(self) -> int:
        """Data channel of the current connection event (after remapping)."""
        return self.channel_map.remap(self._unmapped)

    def advance(self) -> int:
        """Hop to the next connection event; return its (mapped) channel."""
        self._unmapped = (
            self._unmapped + self.hop_increment
        ) % BLE_NUM_DATA_CHANNELS
        return self.current()

    def reset(self) -> None:
        """Rewind to the first connection event."""
        self._unmapped = self.start_channel

    def events(self, count: int) -> Iterator[int]:
        """Yield the channels of the next ``count`` connection events.

        The current event is yielded first, then the sequence advances.
        """
        for _ in range(count):
            yield self.current()
            self.advance()

    def full_cycle(self) -> List[int]:
        """Channels of one complete 37-event cycle, starting at the current
        event, without disturbing the generator state."""
        unmapped = self._unmapped
        cycle = []
        for _ in range(BLE_NUM_DATA_CHANNELS):
            cycle.append(self.channel_map.remap(unmapped))
            unmapped = (unmapped + self.hop_increment) % BLE_NUM_DATA_CHANNELS
        return cycle


def hop_cycle(hop_increment: int, start_channel: int = 0) -> List[int]:
    """One full 37-channel cycle of unmapped CSA#1 channels.

    Convenience for tests and for planning measurement campaigns: with a
    full channel map, the returned list is a permutation of ``0..36``.
    """
    sequence = HopSequence(
        hop_increment=hop_increment, start_channel=start_channel
    )
    return sequence.full_cycle()


def events_to_cover_channels(channel_map: ChannelMap) -> int:
    """Number of connection events needed to visit every usable channel.

    With a full map this is exactly 37; with a reduced map the remapping can
    visit some channels more than once per cycle, but a full 37-event cycle
    is always sufficient because ``unmapped mod num_used`` cycles through
    all residues when 37 is coprime to the hop increment.
    """
    return BLE_NUM_DATA_CHANNELS
