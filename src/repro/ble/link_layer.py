"""Minimal BLE link layer: connections and two-way connection events.

BLoc needs exactly one link-layer behaviour (paper Sections 2.1, 3, 5.2):
once a master and a slave are connected, every connection event is a
two-way exchange -- master transmits, slave responds -- on a data channel
chosen by the hop sequence, and both transmissions of one event happen on
the *same* channel within the same oscillator-tuning period.  That pairing
is what makes the triple-product phase correction of Eq. 10 possible.

This module schedules those events and builds the localization packets for
both directions; the radio/propagation part lives in :mod:`repro.sdr` and
:mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.constants import (
    BLE_CRC_INIT_ADVERTISING,
    BLE_NUM_DATA_CHANNELS,
)
from repro.errors import ConfigurationError, CrcError
from repro.ble.access_address import random_access_address
from repro.ble.channels import ChannelMap, data_channel_to_frequency
from repro.ble.hopping import HopSequence
from repro.ble.localization import localization_pdu
from repro.ble.pdu import (
    DataPdu,
    OnAirPacket,
    assemble_packet,
    disassemble_packet,
)
from repro.obs import get_observer
from repro.utils.rng import RngLike, make_rng

#: Default connection interval [s].  BLE allows 7.5 ms .. 4 s; the paper
#: notes BLE "hops through all channels 40 times every second", i.e. a
#: short interval; one full 37-event localization sweep then takes ~25 ms.
DEFAULT_CONNECTION_INTERVAL_S = 7.5e-3


@dataclass(frozen=True)
class ConnectionEvent:
    """One two-way master <-> slave exchange on a single data channel.

    Attributes:
        event_index: connection event counter (0-based).
        data_channel: data channel index used by both packets.
        frequency_hz: centre frequency of that channel.
        start_time_s: event anchor time since connection establishment.
        master_packet: the packet the master transmits.
        slave_packet: the tag's response packet.
    """

    event_index: int
    data_channel: int
    frequency_hz: float
    start_time_s: float
    master_packet: OnAirPacket
    slave_packet: OnAirPacket


@dataclass
class Connection:
    """An established BLE connection generating localization events.

    Attributes:
        access_address: 32-bit connection identifier.
        crc_init: 24-bit CRC seed agreed at connection setup.
        hop_increment: CSA#1 hop step.
        channel_map: usable data channels.
        connection_interval_s: spacing of connection events.
        run_length: localization tone run length in bits.
        num_pairs: number of 0/1 run pairs per packet.
        whitening_enabled: whether packets are whitened on air.
    """

    access_address: int = 0
    crc_init: int = BLE_CRC_INIT_ADVERTISING
    hop_increment: int = 7
    channel_map: ChannelMap = field(default_factory=ChannelMap.all_channels)
    connection_interval_s: float = DEFAULT_CONNECTION_INTERVAL_S
    run_length: int = 8
    num_pairs: int = 8
    whitening_enabled: bool = True
    start_channel: int = 0
    _hops: HopSequence = field(init=False, repr=False)
    _event_index: int = field(init=False, default=0, repr=False)

    def __post_init__(self):
        if self.connection_interval_s <= 0:
            raise ConfigurationError("connection interval must be > 0")
        self._hops = HopSequence(
            hop_increment=self.hop_increment,
            channel_map=self.channel_map,
            start_channel=self.start_channel,
        )

    def _build_packet(self, channel: int, sn: int, nesn: int) -> OnAirPacket:
        pdu = localization_pdu(
            channel, run_length=self.run_length, num_pairs=self.num_pairs
        )
        pdu = DataPdu(
            payload=pdu.payload, llid=pdu.llid, sn=sn, nesn=nesn, md=0
        )
        return assemble_packet(
            pdu,
            access_address=self.access_address,
            channel_index=channel,
            crc_init=self.crc_init,
            whitening_enabled=self.whitening_enabled,
        )

    def next_event(self) -> ConnectionEvent:
        """Produce the next connection event and advance the hop sequence."""
        channel = self._hops.current()
        index = self._event_index
        sn = index & 1
        event = ConnectionEvent(
            event_index=index,
            data_channel=channel,
            frequency_hz=data_channel_to_frequency(channel),
            start_time_s=index * self.connection_interval_s,
            master_packet=self._build_packet(channel, sn=sn, nesn=sn),
            slave_packet=self._build_packet(channel, sn=sn, nesn=sn ^ 1),
        )
        self._hops.advance()
        self._event_index += 1
        return event

    def receive(self, bits, data_channel: int) -> OnAirPacket:
        """Parse and CRC-check received on-air bits for this connection.

        The connection-follower's receive path: bits demodulated on a data
        channel are de-whitened with the channel index and checked against
        the connection's CRC init.  Packet and CRC-failure totals feed the
        ``ble.packets_received`` / ``ble.crc_failures`` counters when
        observability is enabled.

        Raises:
            CrcError: when the CRC check fails (still counted).
            ProtocolError: on framing errors.
        """
        observer = get_observer()
        if observer.enabled:
            observer.metrics.counter("ble.packets_received").inc()
        try:
            return disassemble_packet(
                bits,
                channel_index=data_channel,
                crc_init=self.crc_init,
                whitening_enabled=self.whitening_enabled,
            )
        except CrcError:
            if observer.enabled:
                observer.metrics.counter("ble.crc_failures").inc()
            raise

    def events(self, count: int) -> Iterator[ConnectionEvent]:
        """Yield the next ``count`` connection events."""
        for _ in range(count):
            yield self.next_event()

    def localization_sweep(self) -> List[ConnectionEvent]:
        """Events of one full 37-hop cycle (covers every usable channel).

        This is one BLoc measurement round: afterwards every channel in the
        map has at least one two-way exchange (Section 5.1).
        """
        return list(self.events(BLE_NUM_DATA_CHANNELS))


def establish_connection(
    rng: RngLike = None,
    hop_increment: Optional[int] = None,
    channel_map: Optional[ChannelMap] = None,
    **kwargs,
) -> Connection:
    """Simulate connection establishment: pick an access address, CRC init
    and hop increment the way a master would, then return the connection.
    """
    generator = make_rng(rng)
    if hop_increment is None:
        hop_increment = int(generator.integers(5, 17))
    if channel_map is None:
        channel_map = ChannelMap.all_channels()
    return Connection(
        access_address=random_access_address(generator),
        crc_init=int(generator.integers(0, 1 << 24)),
        hop_increment=hop_increment,
        channel_map=channel_map,
        start_channel=int(generator.integers(0, BLE_NUM_DATA_CHANNELS)),
        **kwargs,
    )
