"""Localization packet design: long 0/1 runs that survive the PHY.

Section 4 of the paper: to measure CSI despite GFSK's ever-moving
frequency, BLoc sends packets whose payload contains long runs of 0 bits
(so the transmitter settles on the f0 tone) followed by long runs of 1
bits (settling on f1).  Two practical wrinkles this module handles:

* **Whitening.**  The spec whitens PDU bits per channel, which would
  scramble a constant payload.  Since the whitening stream is known and
  deterministic per channel, we pre-compensate: the payload is chosen as
  ``desired_air_bits XOR whitening_stream`` so the *on-air* bits contain
  the runs.  (The paper is silent on this detail; pre-compensation keeps
  the packets fully spec-compliant.)
* **Settling.**  The Gaussian filter needs ~1-2 symbols to settle after a
  transition, so only the interior of each run is usable for CSI.  The
  stable-segment finder returns those interiors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ble.pdu import DataPdu, bits_to_bytes
from repro.ble.whitening import whitening_sequence


@dataclass(frozen=True)
class ToneSegment:
    """A run of identical on-air bits usable for a CSI measurement.

    Attributes:
        bit_value: 0 (f0 tone) or 1 (f1 tone).
        start_bit: index of the first *stable* bit within the packet bits.
        num_bits: number of stable bits in the segment.
    """

    bit_value: int
    start_bit: int
    num_bits: int

    def sample_slice(self, samples_per_symbol: int) -> slice:
        """The IQ sample range covered by the stable bits."""
        start = self.start_bit * samples_per_symbol
        stop = (self.start_bit + self.num_bits) * samples_per_symbol
        return slice(start, stop)


def tone_pattern(run_length: int, num_pairs: int) -> np.ndarray:
    """The desired on-air payload bits: alternating 0-runs and 1-runs.

    Args:
        run_length: bits per run (the paper demonstrates 5; at 1 Mbps the
            8 us dwell of Section 6 corresponds to run_length = 8).
        num_pairs: how many (0-run, 1-run) pairs to emit.
    """
    if run_length < 2:
        raise ConfigurationError("run_length must be >= 2")
    if num_pairs < 1:
        raise ConfigurationError("num_pairs must be >= 1")
    pair = np.concatenate(
        [np.zeros(run_length, dtype=np.uint8), np.ones(run_length, dtype=np.uint8)]
    )
    return np.tile(pair, num_pairs)


def design_payload(
    channel_index: int,
    run_length: int = 8,
    num_pairs: int = 8,
    header_bits: int = 16,
) -> bytes:
    """Payload octets whose *whitened* image is the tone pattern.

    The whitening stream position for the payload starts after the 16
    header bits (the header is whitened too, but we only control the
    payload).  The pattern length is rounded up to whole octets; the tail
    padding repeats the final run value.

    Args:
        channel_index: channel the packet will be sent on.
        run_length: bits per 0/1 run on air.
        num_pairs: number of run pairs.
        header_bits: whitening-stream offset of the payload (16 for data
            PDUs).
    """
    desired = tone_pattern(run_length, num_pairs)
    remainder = (-desired.size) % 8
    if remainder:
        pad_value = desired[-1]
        desired = np.concatenate(
            [desired, np.full(remainder, pad_value, dtype=np.uint8)]
        )
    stream = whitening_sequence(channel_index, header_bits + desired.size)
    payload_bits = desired ^ stream[header_bits:]
    return bits_to_bytes(payload_bits)


def localization_pdu(
    channel_index: int,
    run_length: int = 8,
    num_pairs: int = 8,
) -> DataPdu:
    """A ready-to-send data PDU carrying the localization tone pattern."""
    payload = design_payload(
        channel_index, run_length=run_length, num_pairs=num_pairs
    )
    return DataPdu(payload=payload)


def find_tone_segments(
    air_bits: Sequence[int],
    min_run: int = 4,
    settle_bits: int = 2,
) -> List[ToneSegment]:
    """Locate stable tone segments in an on-air bit stream.

    Args:
        air_bits: the transmitted (whitened) bits, in air order.
        min_run: shortest run considered usable.
        settle_bits: bits trimmed from the start of each run to let the
            Gaussian filter settle; one extra bit is trimmed from the end
            because the filter starts slewing *before* the transition.

    Returns:
        Segments ordered by position; possibly empty for random data.
    """
    if min_run <= settle_bits + 1:
        raise ConfigurationError(
            "min_run must exceed settle_bits + 1 to leave stable bits"
        )
    arr = np.asarray(air_bits, dtype=np.uint8) & 1
    segments: List[ToneSegment] = []
    if arr.size == 0:
        return segments
    run_start = 0
    for i in range(1, arr.size + 1):
        at_end = i == arr.size
        if at_end or arr[i] != arr[run_start]:
            run_len = i - run_start
            if run_len >= min_run:
                stable_start = run_start + settle_bits
                stable_len = run_len - settle_bits - 1
                if at_end:
                    stable_len += 1  # no trailing transition to slew into
                if stable_len > 0:
                    segments.append(
                        ToneSegment(
                            bit_value=int(arr[run_start]),
                            start_bit=stable_start,
                            num_bits=stable_len,
                        )
                    )
            run_start = i
    return segments


def segments_per_tone(
    segments: Sequence[ToneSegment],
) -> Tuple[List[ToneSegment], List[ToneSegment]]:
    """Split segments into (f0 segments, f1 segments)."""
    zeros = [s for s in segments if s.bit_value == 0]
    ones = [s for s in segments if s.bit_value == 1]
    return zeros, ones
