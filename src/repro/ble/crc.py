"""BLE CRC-24 (Core spec Vol 6, Part B, 3.1.1).

Every PDU carries a 24-bit CRC computed over the PDU bits with polynomial
x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1.  The shift register is seeded
with 0x555555 on advertising channels and with a connection-specific CRC
init value on data channels.

Bits are processed in air order (LSB of each octet first); the register is
implemented positionally like the spec figure so the bit ordering is
unambiguous.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import BLE_CRC_INIT_ADVERTISING
from repro.errors import CrcError, ProtocolError

#: Feedback tap positions of the CRC-24 LFSR (inputs of these positions are
#: XORed with the feedback bit); position 0's input always takes feedback.
_TAP_POSITIONS = (1, 3, 4, 6, 9, 10)


def _init_state(crc_init: int) -> list:
    """Load the 24-bit init value into the register, position 0 = LSB."""
    if not 0 <= crc_init < (1 << 24):
        raise ProtocolError(f"crc init must fit in 24 bits, got {crc_init:#x}")
    return [(crc_init >> k) & 1 for k in range(24)]


def crc24(bits: Sequence[int], crc_init: int = BLE_CRC_INIT_ADVERTISING) -> int:
    """CRC-24 of a PDU bit stream, returned as a 24-bit integer.

    Args:
        bits: PDU bits in air (transmission) order.
        crc_init: 24-bit initial register value.
    """
    state = _init_state(crc_init)
    for bit in np.asarray(bits, dtype=np.uint8) & 1:
        feedback = state[23] ^ int(bit)
        state = [feedback] + state[:23]
        for position in _TAP_POSITIONS:
            state[position] ^= feedback
    value = 0
    for k in range(24):
        value |= state[k] << k
    return value


def crc24_bits(
    bits: Sequence[int], crc_init: int = BLE_CRC_INIT_ADVERTISING
) -> np.ndarray:
    """CRC-24 as the 24 bits appended on air (position 23 first, per spec)."""
    value = crc24(bits, crc_init)
    return np.array([(value >> (23 - k)) & 1 for k in range(24)], dtype=np.uint8)


def append_crc(
    pdu_bits: Sequence[int], crc_init: int = BLE_CRC_INIT_ADVERTISING
) -> np.ndarray:
    """PDU bits with the CRC appended, ready for whitening/modulation."""
    pdu = np.asarray(pdu_bits, dtype=np.uint8) & 1
    return np.concatenate([pdu, crc24_bits(pdu, crc_init)])


def check_crc(
    pdu_and_crc_bits: Sequence[int],
    crc_init: int = BLE_CRC_INIT_ADVERTISING,
) -> np.ndarray:
    """Verify and strip the trailing CRC; return the bare PDU bits.

    Raises:
        CrcError: when the received CRC does not match the recomputed one.
        ProtocolError: when the stream is too short to contain a CRC.
    """
    arr = np.asarray(pdu_and_crc_bits, dtype=np.uint8) & 1
    if arr.size < 24:
        raise ProtocolError("bit stream shorter than a CRC")
    pdu, received = arr[:-24], arr[-24:]
    expected_bits = crc24_bits(pdu, crc_init)
    if not np.array_equal(received, expected_bits):
        expected = crc24(pdu, crc_init)
        actual = 0
        for k, bit in enumerate(received):
            actual |= int(bit) << (23 - k)
        raise CrcError(expected=expected, actual=actual)
    return pdu
