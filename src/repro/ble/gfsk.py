"""GFSK modulation and demodulation for the BLE 1M PHY.

BLE encodes bits as frequency: bit 1 is a +250 kHz tone, bit 0 a -250 kHz
tone relative to the channel centre, with a Gaussian filter (BT = 0.5)
smoothing the transitions (paper Section 4, Fig. 4).  Because of that
filter the instantaneous frequency is *never* static for random data --
the very obstacle BLoc's long-run localization packets work around.

The modulator produces complex baseband IQ; the demodulator is a classic
quadrature frequency discriminator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import (
    BLE_FREQ_DEVIATION_HZ,
    BLE_GAUSSIAN_BT,
    BLE_SYMBOL_RATE,
)
from repro.errors import ConfigurationError, DemodulationError
from repro.obs import STANDARD_METRICS, get_observer


def gaussian_pulse(
    bt: float = BLE_GAUSSIAN_BT,
    samples_per_symbol: int = 8,
    span_symbols: int = 3,
) -> np.ndarray:
    """Unit-area Gaussian pulse used as the GFSK pre-modulation filter.

    Args:
        bt: bandwidth-time product (0.5 for BLE).
        samples_per_symbol: oversampling factor.
        span_symbols: filter length in symbols on each side of the centre.

    Returns:
        Impulse response normalised to unit sum, so convolving the NRZ
        sequence with it keeps the plateau level at exactly +-1.
    """
    if bt <= 0:
        raise ConfigurationError(f"BT must be > 0, got {bt}")
    if samples_per_symbol < 2:
        raise ConfigurationError("need at least 2 samples per symbol")
    if span_symbols < 1:
        raise ConfigurationError("filter span must be >= 1 symbol")
    # Standard GMSK pulse: g(t) = (1/2T) * [Q(a(t - T/2)) - Q(a(t + T/2))]
    # with a = 2 pi BT / (T sqrt(ln 2)); implemented via the Gaussian
    # impulse response h(t) ~ exp(-t^2 a^2 / 2) convolved with a T-wide
    # rectangle, which is what sampling + normalisation below achieves.
    t = (
        np.arange(-span_symbols * samples_per_symbol,
                  span_symbols * samples_per_symbol + 1, dtype=float)
        / samples_per_symbol
    )
    alpha = 2.0 * math.pi * bt / math.sqrt(math.log(2.0))
    h = np.exp(-0.5 * (alpha * t) ** 2)
    # Convolve with one-symbol rectangle so a single bit reaches full level.
    rect = np.ones(samples_per_symbol, dtype=float)
    pulse = np.convolve(h, rect)
    return pulse / pulse.sum()


def nrz(bits: Sequence[int]) -> np.ndarray:
    """Map bits {0, 1} to NRZ levels {-1.0, +1.0}."""
    arr = np.asarray(bits, dtype=np.uint8) & 1
    return arr.astype(float) * 2.0 - 1.0


@dataclass
class GfskModulator:
    """Bits -> complex-baseband GFSK IQ.

    Attributes:
        samples_per_symbol: oversampling factor (sample rate = this x 1 MHz).
        bt: Gaussian filter bandwidth-time product.
        deviation_hz: peak frequency deviation.
        span_symbols: Gaussian filter span.
    """

    samples_per_symbol: int = 8
    bt: float = BLE_GAUSSIAN_BT
    deviation_hz: float = BLE_FREQ_DEVIATION_HZ
    span_symbols: int = 3
    _pulse: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        self._pulse = gaussian_pulse(
            bt=self.bt,
            samples_per_symbol=self.samples_per_symbol,
            span_symbols=self.span_symbols,
        )

    @property
    def sample_rate(self) -> float:
        """Baseband sample rate [Hz]."""
        return BLE_SYMBOL_RATE * self.samples_per_symbol

    def filtered_levels(self, bits: Sequence[int]) -> np.ndarray:
        """Gaussian-filtered NRZ waveform (the curve plotted in Fig. 4).

        The returned array has ``samples_per_symbol`` samples per bit and
        is aligned so sample ``k * samples_per_symbol`` is the start of
        bit ``k``.  Edge bits are extended to avoid filter roll-off at the
        packet boundaries.
        """
        levels = nrz(bits)
        if levels.size == 0:
            return np.zeros(0)
        pad = self.span_symbols
        padded = np.concatenate(
            [np.full(pad, levels[0]), levels, np.full(pad, levels[-1])]
        )
        upsampled = np.repeat(padded, self.samples_per_symbol)
        filtered = np.convolve(upsampled, self._pulse, mode="same")
        start = pad * self.samples_per_symbol
        return filtered[start:start + levels.size * self.samples_per_symbol]

    def instantaneous_frequency(self, bits: Sequence[int]) -> np.ndarray:
        """Per-sample frequency offset [Hz] the modulator will transmit."""
        return self.filtered_levels(bits) * self.deviation_hz

    def modulate(self, bits: Sequence[int], amplitude: float = 1.0) -> np.ndarray:
        """Produce complex baseband IQ for a bit sequence.

        The phase is the running integral of the instantaneous frequency,
        starting from zero phase at the first sample.
        """
        freq = self.instantaneous_frequency(bits)
        if freq.size == 0:
            return np.zeros(0, dtype=complex)
        phase_increments = 2.0 * np.pi * freq / self.sample_rate
        phase = np.cumsum(phase_increments)
        return amplitude * np.exp(1j * phase)


@dataclass
class GfskDemodulator:
    """Complex-baseband GFSK IQ -> bits, via a frequency discriminator.

    Attributes:
        samples_per_symbol: must match the modulator / receiver decimation.
    """

    samples_per_symbol: int = 8
    #: Decision-level SNR [dB] of the most recent :meth:`demodulate` call
    #: (None before the first call).  The measurement layer reads this to
    #: attach per-(anchor, band) demodulation quality to its observations.
    last_snr_db: Optional[float] = field(init=False, default=None)

    def __post_init__(self):
        if self.samples_per_symbol < 2:
            raise ConfigurationError("need at least 2 samples per symbol")

    @property
    def sample_rate(self) -> float:
        """Baseband sample rate [Hz]."""
        return BLE_SYMBOL_RATE * self.samples_per_symbol

    def discriminate(self, iq: np.ndarray) -> np.ndarray:
        """Instantaneous frequency estimate [Hz] per sample.

        Uses the arg of the one-sample lag product, the standard polar
        discriminator; the first sample repeats the second so the output
        length matches the input.
        """
        samples = np.asarray(iq, dtype=complex)
        if samples.size < 2:
            raise DemodulationError("need at least 2 IQ samples")
        lag = samples[1:] * np.conj(samples[:-1])
        freq = np.angle(lag) * self.sample_rate / (2.0 * np.pi)
        return np.concatenate([[freq[0]], freq])

    def demodulate(self, iq: np.ndarray, num_bits: int) -> np.ndarray:
        """Recover ``num_bits`` hard decisions from IQ aligned at sample 0.

        Each bit is decided from the discriminator output averaged over the
        central half of its symbol period, which tolerates moderate noise
        and residual filtering ISI.
        """
        midspan = self._midspan(iq, num_bits)
        snr_db = self._decision_snr_db(midspan)
        self.last_snr_db = snr_db
        observer = get_observer()
        if observer.enabled:
            observer.metrics.histogram(
                "ble.demod_snr_db", STANDARD_METRICS["ble.demod_snr_db"][1]
            ).observe(snr_db)
            observer.metrics.counter("ble.demod_symbols").inc(num_bits)
        return (midspan[:, 0] > 0).astype(np.uint8)

    def decision_snr_db(self, iq: np.ndarray, num_bits: int) -> float:
        """Decision-level SNR estimate [dB] without committing to bits.

        Mean squared decision value vs in-symbol scatter around it: a
        clean loopback saturates the estimate; interference/noise drags
        it down long before the hard decisions start flipping.  Used by
        the measurement layer to tag each (anchor, band) CSI cell with
        the demodulation quality it was measured at.
        """
        return self._decision_snr_db(self._midspan(iq, num_bits))

    def _midspan(self, iq: np.ndarray, num_bits: int) -> np.ndarray:
        """Central-half discriminator samples per symbol + their means.

        Returns an ``(num_bits, 1 + span)`` array whose first column is
        the per-symbol decision value and remaining columns the raw
        central-half samples it was averaged from.
        """
        freq = self.discriminate(iq)
        sps = self.samples_per_symbol
        needed = num_bits * sps
        if freq.size < needed:
            raise DemodulationError(
                f"need {needed} samples for {num_bits} bits, got {freq.size}"
            )
        per_symbol = freq[:needed].reshape(num_bits, sps)
        lo = sps // 4
        hi = sps - lo
        central = per_symbol[:, lo:hi]
        return np.column_stack([central.mean(axis=1), central])

    @staticmethod
    def _decision_snr_db(midspan: np.ndarray) -> float:
        decisions = midspan[:, 0]
        central = midspan[:, 1:]
        signal_power = float(np.mean(decisions**2))
        noise_power = float(np.mean((central - decisions[:, None]) ** 2))
        if signal_power <= 0.0:
            return -60.0
        return 10.0 * math.log10(
            signal_power / max(noise_power, 1e-12 * signal_power)
        )


def frequency_error_rms(
    modulator: GfskModulator, bits: Sequence[int], iq: np.ndarray
) -> float:
    """RMS error [Hz] between ideal and observed instantaneous frequency.

    A diagnostic used by the PHY tests: for a clean loopback this should be
    at the numerical-noise level.
    """
    demod = GfskDemodulator(samples_per_symbol=modulator.samples_per_symbol)
    ideal = modulator.instantaneous_frequency(bits)
    observed = demod.discriminate(iq)[: ideal.size]
    if observed.size != ideal.size:
        raise DemodulationError("IQ shorter than the ideal waveform")
    # The discriminator output lags the ideal waveform by half a sample;
    # compare on the overlap, skipping the first symbol transient.
    sps = modulator.samples_per_symbol
    return float(
        np.sqrt(np.mean((ideal[sps:-sps] - observed[sps:-sps]) ** 2))
    )
