"""Access-address generation and validation (Core spec Vol 6, Part B, 2.1.2).

Each BLE connection is identified by a 32-bit access address chosen by the
master.  The spec constrains the choice so that addresses are easy to
correlate against and unlikely to alias one another; BLoc's slave anchors
rely on the access address to follow the master <-> tag conversation they
are overhearing (paper Section 3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import BLE_ADVERTISING_ACCESS_ADDRESS
from repro.errors import ProtocolError
from repro.utils.rng import RngLike, make_rng


def address_to_bits(address: int) -> np.ndarray:
    """32 access-address bits in air order (LSB first)."""
    if not 0 <= address < (1 << 32):
        raise ProtocolError(f"access address must fit in 32 bits: {address:#x}")
    return np.array([(address >> k) & 1 for k in range(32)], dtype=np.uint8)


def bits_to_address(bits: Sequence[int]) -> int:
    """Inverse of :func:`address_to_bits`."""
    arr = np.asarray(bits, dtype=np.uint8) & 1
    if arr.size != 32:
        raise ProtocolError(f"expected 32 bits, got {arr.size}")
    value = 0
    for k, bit in enumerate(arr):
        value |= int(bit) << k
    return value


def _transitions(bits: np.ndarray) -> int:
    return int(np.count_nonzero(np.diff(bits)))


def is_valid_access_address(address: int) -> bool:
    """Check the spec's validity rules for a data-channel access address.

    Rules (2.1.2): no more than six consecutive identical bits; not the
    advertising address; not differing from the advertising address by only
    one bit; all four octets distinct from each other is NOT required, but
    the four octets must not all be equal; no more than 24 transitions; at
    least two transitions in the six most significant bits.
    """
    try:
        bits = address_to_bits(address)
    except ProtocolError:
        return False
    if address == BLE_ADVERTISING_ACCESS_ADDRESS:
        return False
    diff = address ^ BLE_ADVERTISING_ACCESS_ADDRESS
    if diff != 0 and (diff & (diff - 1)) == 0:
        return False
    octets = [(address >> (8 * k)) & 0xFF for k in range(4)]
    if len(set(octets)) == 1:
        return False
    longest = 1
    current = 1
    for previous, this in zip(bits[:-1], bits[1:]):
        current = current + 1 if this == previous else 1
        longest = max(longest, current)
    if longest > 6:
        return False
    if _transitions(bits) > 24:
        return False
    if _transitions(bits[26:]) < 2:
        return False
    return True


def random_access_address(rng: RngLike = None) -> int:
    """Draw a uniformly random *valid* access address."""
    generator = make_rng(rng)
    while True:
        candidate = int(generator.integers(0, 1 << 32))
        if is_valid_access_address(candidate):
            return candidate
