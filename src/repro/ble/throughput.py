"""Throughput accounting for localization overhead (paper Section 6).

The paper argues BLoc barely dents BLE throughput: "BLE hops through all
channels 40 times every second.  Thus, even if one complete hop is used
for localization, the other hops can be used to communicate data as
usual", and a CSI estimate needs only ~8 us per tone.  This module makes
that argument computable: given a connection configuration and a
localization duty (sweeps per second), it reports the airtime the
localization packets cost and the data throughput that remains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    BLE_CRC_LENGTH_BITS,
    BLE_NUM_DATA_CHANNELS,
    BLE_SYMBOL_RATE,
    BLOC_TONE_DWELL_S,
)
from repro.errors import ConfigurationError

#: Framing overhead bits: preamble + access address + data PDU header.
FRAMING_BITS = 8 + 32 + 16

#: Inter-frame space between the two packets of an event [s] (spec T_IFS).
T_IFS_S = 150e-6


@dataclass(frozen=True)
class ThroughputReport:
    """Airtime budget of a connection running BLoc localization.

    Attributes:
        localization_airtime_fraction: share of airtime spent on
            localization packets.
        data_throughput_bps: application payload throughput that remains.
        sweeps_per_second: localization position-fix rate achieved.
        localization_packet_us: duration of one localization packet.
    """

    localization_airtime_fraction: float
    data_throughput_bps: float
    sweeps_per_second: float
    localization_packet_us: float


def localization_packet_duration_s(
    run_length: int = 8, num_pairs: int = 8
) -> float:
    """On-air duration of one localization packet.

    The payload carries ``num_pairs`` pairs of ``run_length``-bit tones;
    8 us per tone at 1 Mbps is exactly ``run_length = 8`` (Section 6).
    """
    if run_length < 2 or num_pairs < 1:
        raise ConfigurationError("invalid tone pattern")
    payload_bits = 2 * run_length * num_pairs
    # Round up to whole octets like the packet builder does.
    payload_bits += (-payload_bits) % 8
    total_bits = FRAMING_BITS + payload_bits + BLE_CRC_LENGTH_BITS
    return total_bits / BLE_SYMBOL_RATE


def throughput_with_localization(
    connection_interval_s: float = 7.5e-3,
    sweeps_per_second: float = 1.0,
    data_payload_octets: int = 100,
    run_length: int = 8,
    num_pairs: int = 8,
) -> ThroughputReport:
    """Airtime/throughput budget for a connection that localizes.

    Args:
        connection_interval_s: BLE connection interval (7.5 ms is the
            minimum; the paper's "40 hops per second" corresponds to a
            full 37-event cycle every ~25 ms... i.e. back-to-back events).
        sweeps_per_second: full 37-channel localization sweeps per second
            (1 sweep = 1 position fix).
        data_payload_octets: payload of a normal data event.
        run_length / num_pairs: localization packet shape.
    """
    if connection_interval_s <= 0:
        raise ConfigurationError("connection interval must be > 0")
    if sweeps_per_second < 0:
        raise ConfigurationError("sweep rate must be >= 0")
    events_per_second = 1.0 / connection_interval_s
    localization_events = sweeps_per_second * BLE_NUM_DATA_CHANNELS
    if localization_events > events_per_second:
        raise ConfigurationError(
            f"{sweeps_per_second} sweeps/s needs "
            f"{localization_events:.0f} events/s but the interval only "
            f"provides {events_per_second:.0f}"
        )
    data_events = events_per_second - localization_events
    # Each event carries master + slave packets separated by T_IFS.
    localization_packet = localization_packet_duration_s(
        run_length, num_pairs
    )
    data_packet = (
        FRAMING_BITS + 8 * data_payload_octets + BLE_CRC_LENGTH_BITS
    ) / BLE_SYMBOL_RATE
    localization_airtime = localization_events * (
        2 * localization_packet + T_IFS_S
    )
    data_airtime = data_events * (2 * data_packet + T_IFS_S)
    total_airtime = localization_airtime + data_airtime
    fraction = (
        localization_airtime / total_airtime if total_airtime > 0 else 0.0
    )
    # Application throughput: payload bits of the data events (both ways).
    throughput = data_events * 2 * 8 * data_payload_octets
    return ThroughputReport(
        localization_airtime_fraction=fraction,
        data_throughput_bps=throughput,
        sweeps_per_second=sweeps_per_second,
        localization_packet_us=localization_packet * 1e6,
    )


def tone_dwell_matches_paper(run_length: int = 8) -> bool:
    """Check Section 6's "8 usec for each 0 and 1" at 1 Mbps."""
    return abs(run_length / BLE_SYMBOL_RATE - BLOC_TONE_DWELL_S) < 1e-9
