"""BLE protocol substrate: channels, hopping, framing, GFSK, link layer.

Implements the subset of the Bluetooth Core Specification that BLoc
(CoNEXT '18) depends on, faithfully enough that the CSI-measurement code
operates on realistic on-air bit streams and baseband IQ.
"""

from repro.ble.access_address import (
    is_valid_access_address,
    random_access_address,
)
from repro.ble.channels import (
    ChannelMap,
    all_data_channel_frequencies,
    channel_index_to_frequency,
    data_channel_to_frequency,
    frequency_to_data_channel,
    is_advertising_channel,
)
from repro.ble.crc import append_crc, check_crc, crc24
from repro.ble.gfsk import GfskDemodulator, GfskModulator, gaussian_pulse
from repro.ble.hopping import HopSequence, hop_cycle
from repro.ble.link_layer import (
    Connection,
    ConnectionEvent,
    establish_connection,
)
from repro.ble.localization import (
    ToneSegment,
    design_payload,
    find_tone_segments,
    localization_pdu,
    tone_pattern,
)
from repro.ble.pdu import (
    DataPdu,
    OnAirPacket,
    assemble_packet,
    bits_to_bytes,
    bytes_to_bits,
    disassemble_packet,
)
from repro.ble.throughput import (
    ThroughputReport,
    localization_packet_duration_s,
    throughput_with_localization,
)
from repro.ble.whitening import dewhiten, longest_run, whiten

__all__ = [
    "ChannelMap",
    "Connection",
    "ConnectionEvent",
    "DataPdu",
    "GfskDemodulator",
    "GfskModulator",
    "HopSequence",
    "OnAirPacket",
    "ThroughputReport",
    "ToneSegment",
    "all_data_channel_frequencies",
    "append_crc",
    "assemble_packet",
    "bits_to_bytes",
    "bytes_to_bits",
    "channel_index_to_frequency",
    "check_crc",
    "crc24",
    "data_channel_to_frequency",
    "design_payload",
    "dewhiten",
    "disassemble_packet",
    "establish_connection",
    "find_tone_segments",
    "frequency_to_data_channel",
    "gaussian_pulse",
    "hop_cycle",
    "is_advertising_channel",
    "is_valid_access_address",
    "localization_packet_duration_s",
    "localization_pdu",
    "longest_run",
    "random_access_address",
    "throughput_with_localization",
    "tone_pattern",
    "whiten",
]
