"""BLE data whitening (Core spec Vol 6, Part B, 3.2).

BLE scrambles PDU+CRC bits with a 7-bit LFSR (polynomial x^7 + x^4 + 1)
seeded from the channel index, to avoid long runs of identical bits on air.

This matters to BLoc: the paper's localization packets *need* long runs of
identical bits on air (Section 4), which standard whitening would destroy.
:mod:`repro.ble.localization` therefore chooses payloads whose *whitened*
image contains the runs, or disables whitening for raw-PHY experiments; both
paths go through this module.

The LFSR follows the spec figure exactly: positions 0..6 shift towards
position 6, whose output is the whitening bit; it feeds back into position 0
and XORs into the input of position 4.  Position 0 is initialised to 1 and
positions 1..6 hold the channel index, MSB in position 1.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ProtocolError

#: Period of the x^7 + x^4 + 1 LFSR (primitive, so maximal length).
WHITENING_PERIOD = 127


def whitening_initial_state(channel_index: int) -> Tuple[int, ...]:
    """Initial LFSR state (position 0, ..., position 6) for a channel."""
    if not 0 <= channel_index < 40:
        raise ProtocolError(
            f"channel index must be 0..39, got {channel_index}"
        )
    state = [1] + [(channel_index >> (5 - k)) & 1 for k in range(6)]
    return tuple(state)


def whitening_sequence(channel_index: int, num_bits: int) -> np.ndarray:
    """The first ``num_bits`` of the whitening bit stream for a channel."""
    if num_bits < 0:
        raise ProtocolError("num_bits must be >= 0")
    s = list(whitening_initial_state(channel_index))
    out = np.empty(num_bits, dtype=np.uint8)
    for i in range(num_bits):
        bit = s[6]
        out[i] = bit
        s = [bit, s[0], s[1], s[2], s[3] ^ bit, s[4], s[5]]
    return out


def whiten(bits: Sequence[int], channel_index: int) -> np.ndarray:
    """XOR ``bits`` with the whitening stream of ``channel_index``.

    Whitening is an involution: ``whiten(whiten(b, ch), ch) == b``.
    """
    arr = np.asarray(bits, dtype=np.uint8) & 1
    stream = whitening_sequence(channel_index, arr.size)
    return arr ^ stream


#: De-whitening is the same operation.
dewhiten = whiten


def longest_run(bits: Sequence[int]) -> int:
    """Length of the longest run of identical bits (localization metric)."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size == 0:
        return 0
    change = np.flatnonzero(np.diff(arr))
    edges = np.concatenate([[-1], change, [arr.size - 1]])
    return int(np.max(np.diff(edges)))


def runs(bits: Sequence[int]) -> List[tuple]:
    """Run-length encoding: list of ``(bit_value, run_length)`` tuples."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size == 0:
        return []
    change = np.flatnonzero(np.diff(arr))
    starts = np.concatenate([[0], change + 1])
    ends = np.concatenate([change + 1, [arr.size]])
    return [
        (int(arr[s]), int(e - s)) for s, e in zip(starts, ends)
    ]
