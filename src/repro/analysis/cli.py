"""`repro lint`: run the RPR rule set from the command line.

Wired into ``python -m repro`` (see :mod:`repro.__main__`).  Exit codes:

* 0 -- no active findings,
* 1 -- at least one active (non-suppressed) finding,
* 2 -- a file could not be parsed.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.linting import PARSE_ERROR_RULE, LintEngine, LintReport
from repro.analysis.rules import ALL_RULES, default_rules


def add_lint_arguments(parser) -> None:
    """Attach the `repro lint` arguments to an argparse subparser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the JSON report to PATH (for CI artifacts)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="list noqa-suppressed findings in the text report",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule finding counts",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def _selected_rules(select: Optional[str], ignore: Optional[str]) -> List:
    rules = default_rules()
    if select:
        wanted = {s.strip().upper() for s in select.split(",") if s.strip()}
        unknown = wanted - {r.id for r in rules}
        if unknown:
            raise SystemExit(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        rules = [r for r in rules if r.id in wanted]
    if ignore:
        skipped = {s.strip().upper() for s in ignore.split(",") if s.strip()}
        rules = [r for r in rules if r.id not in skipped]
    return rules


def _rule_table() -> str:
    from repro.obs.export import format_table

    rows = [
        [cls.id, cls.title, "all" if cls.scopes is None else ",".join(cls.scopes)]
        for cls in ALL_RULES
    ]
    return format_table(["rule", "checks for", "scope"], rows)


def run_lint(args) -> int:
    """Entry point for the `repro lint` subcommand."""
    if args.list_rules:
        print(_rule_table())
        return 0
    engine = LintEngine(rules=_selected_rules(args.select, args.ignore))
    report = engine.lint_paths([Path(p) for p in args.paths])
    if args.output:
        Path(args.output).write_text(
            report.to_json() + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(report.to_json())
    else:
        _print_text_report(report, show_suppressed=args.show_suppressed)
    if args.statistics and args.format == "text":
        for rule_id, count in sorted(report.counts_by_rule().items()):
            print(f"{rule_id:<8} {count}")
    if report.parse_errors:
        return 2
    return 1 if report.active else 0


def _print_text_report(report: LintReport, show_suppressed: bool) -> None:
    for finding in report.active:
        print(finding.render())
    if show_suppressed:
        for finding in report.suppressed:
            print(finding.render())
    active = len(report.active)
    print(
        f"repro lint: {report.files_checked} file(s), "
        f"{active} finding(s), {len(report.suppressed)} suppressed",
        file=sys.stderr if active else sys.stdout,
    )
