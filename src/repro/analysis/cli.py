"""`repro lint`: run the RPR rule set from the command line.

Wired into ``python -m repro`` (see :mod:`repro.__main__`).  Exit codes:

* 0 -- no failing findings (baselined/suppressed findings are fine),
* 1 -- at least one failing (active, non-baselined) finding,
* 2 -- a file could not be parsed.

``--concurrency`` adds the opt-in RPR013-015 rules and, when the
committed ``concurrency_baseline.json`` exists, automatically applies it
as the waiver baseline (disable with ``--no-baseline``; point elsewhere
with ``--baseline``; regenerate with ``--update-baseline``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    apply_baseline,
    baseline_from_report,
    load_baseline,
    write_baseline,
)
from repro.analysis.concurrency import CONCURRENCY_RULES, concurrency_rules
from repro.analysis.linting import LintEngine, LintReport, Rule
from repro.analysis.rules import ALL_RULES, default_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the `repro lint` arguments to an argparse subparser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="also run the concurrency rules (RPR013-RPR015)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "waiver baseline file (default with --concurrency: "
            f"{DEFAULT_BASELINE_PATH} if it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any waiver baseline (report all findings as failing)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the JSON report to PATH (for CI artifacts)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="list noqa-suppressed findings in the text report",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule finding counts",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def _selected_rules(
    select: Optional[str],
    ignore: Optional[str],
    concurrency: bool = False,
) -> List[Rule]:
    rules = default_rules()
    if concurrency:
        rules = rules + concurrency_rules()
    if select:
        wanted = {s.strip().upper() for s in select.split(",") if s.strip()}
        # An explicit --select of a concurrency rule enables it even
        # without the --concurrency flag.
        have = {r.id for r in rules}
        for extra in concurrency_rules():
            if extra.id in wanted and extra.id not in have:
                rules.append(extra)
                have.add(extra.id)
        unknown = wanted - {r.id for r in rules}
        if unknown:
            raise SystemExit(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))}"
            )
        rules = [r for r in rules if r.id in wanted]
    if ignore:
        skipped = {s.strip().upper() for s in ignore.split(",") if s.strip()}
        rules = [r for r in rules if r.id not in skipped]
    return rules


def _rule_table() -> str:
    from repro.obs.export import format_table

    rows = [
        [
            cls.id,
            cls.title,
            "all" if cls.scopes is None else ",".join(cls.scopes),
        ]
        for cls in (*ALL_RULES, *CONCURRENCY_RULES)
    ]
    return format_table(["rule", "checks for", "scope"], rows)


def _baseline_path(args: argparse.Namespace) -> Optional[Path]:
    """The baseline file to apply, or None."""
    if args.no_baseline:
        return None
    if args.baseline:
        return Path(args.baseline)
    if args.concurrency or args.update_baseline:
        default = Path(DEFAULT_BASELINE_PATH)
        if default.exists() or args.update_baseline:
            return default
    return None


def run_lint(args: argparse.Namespace) -> int:
    """Entry point for the `repro lint` subcommand."""
    if args.list_rules:
        print(_rule_table())
        return 0
    engine = LintEngine(
        rules=_selected_rules(
            args.select, args.ignore, concurrency=args.concurrency
        )
    )
    report = engine.lint_paths([Path(p) for p in args.paths])
    baseline_path = _baseline_path(args)
    if args.update_baseline:
        if baseline_path is None:
            raise SystemExit(
                "error: --update-baseline needs a baseline path "
                "(--baseline or the default)"
            )
        write_baseline(baseline_path, baseline_from_report(report))
        print(
            f"repro lint: wrote {len(report.active)} waiver(s) to "
            f"{baseline_path}"
        )
        return 2 if report.parse_errors else 0
    if baseline_path is not None and baseline_path.exists():
        report = apply_baseline(report, load_baseline(baseline_path))
    if args.output:
        Path(args.output).write_text(
            report.to_json() + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(report.to_json())
    else:
        _print_text_report(report, show_suppressed=args.show_suppressed)
    if args.statistics and args.format == "text":
        for rule_id, count in sorted(report.counts_by_rule().items()):
            print(f"{rule_id:<8} {count}")
    if report.parse_errors:
        return 2
    return 1 if report.failing else 0


def _print_text_report(report: LintReport, show_suppressed: bool) -> None:
    for finding in report.active:
        print(finding.render())
    if show_suppressed:
        for finding in report.suppressed:
            print(finding.render())
    failing = len(report.failing)
    summary = (
        f"repro lint: {report.files_checked} file(s), "
        f"{failing} failing finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed"
    )
    print(summary, file=sys.stderr if failing else sys.stdout)
