"""Ratchet-style waiver baseline for lint findings.

The concurrency rules (RPR013-015) were turned on against a codebase
with existing debt; the baseline is how that debt is *waived without
being allowed to grow*, mirroring ``typing_baseline.json``:

* the committed file maps ``"<path>::<rule>"`` to a finding count,
* at lint time the first N findings under each key are marked
  :attr:`~repro.analysis.linting.Finding.baselined` (reported, but not
  failing),
* finding N+1 under a key -- or any finding under a new key -- fails
  the run.  Fixing debt and re-running ``--update-baseline`` shrinks
  the file; it never grows silently.

Paths are repo-root-relative posix strings (the CI invocation is
``repro lint src --concurrency`` from the repo root), so the file is
stable across machines.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

from repro.analysis.linting import PARSE_ERROR_RULE, Finding, LintReport

#: On-disk format marker, mirroring the typing ratchet baseline.
BASELINE_FORMAT = "repro-lint-baseline"

#: Default committed baseline consumed by ``repro lint --concurrency``.
DEFAULT_BASELINE_PATH = "concurrency_baseline.json"


def _key(finding: Finding) -> str:
    return f"{finding.path.replace(chr(92), '/')}::{finding.rule}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into its ``path::rule -> count`` mapping.

    Raises:
        ValueError: the file is not a repro lint baseline.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"{path} is not a {BASELINE_FORMAT} file "
            f"(format={data.get('format')!r})"
        )
    waivers = data.get("waivers", {})
    return {str(k): int(v) for k, v in waivers.items()}


def baseline_from_report(report: LintReport) -> Dict[str, int]:
    """The ``path::rule -> count`` waiver table for a report's active
    findings (what ``--update-baseline`` writes)."""
    counts: Dict[str, int] = {}
    for finding in report.active:
        if finding.rule == PARSE_ERROR_RULE:
            continue
        key = _key(finding)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(path: Path, waivers: Dict[str, int]) -> None:
    """Write a baseline file (sorted keys, trailing newline)."""
    payload = {
        "format": BASELINE_FORMAT,
        "version": 1,
        "comment": (
            "Waived pre-existing lint findings, path::rule -> count. "
            "Counts may only shrink; regenerate with "
            "'repro lint --concurrency --update-baseline' after fixing "
            "debt."
        ),
        "waivers": dict(sorted(waivers.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    report: LintReport, waivers: Dict[str, int]
) -> LintReport:
    """Mark baselined findings in place and return the report.

    The first N active findings under each ``path::rule`` key (in the
    report's deterministic path/line order) are marked
    :attr:`~repro.analysis.linting.Finding.baselined`; anything beyond
    the waived count stays failing.  Suppressed (noqa) findings do not
    consume waivers.
    """
    remaining = dict(waivers)
    rewritten: List[Finding] = []
    for finding in report.findings:
        if not finding.suppressed and finding.rule != PARSE_ERROR_RULE:
            key = _key(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                finding = replace(finding, baselined=True)
        rewritten.append(finding)
    report.findings[:] = rewritten
    return report
