"""tsan-lite: runtime lock-order and guarded-field checking.

The static concurrency rules (:mod:`repro.analysis.concurrency`) prove
what they can see lexically; this module catches what they cannot -- the
*observed* behaviour of the running system.  Three pieces:

* :func:`make_lock` -- the lock factory every lock-holding module in the
  repository routes through.  Disabled (the default) it returns a plain
  ``threading.Lock``; enabled it returns a :class:`CheckedLock` that
  reports every acquisition to the process-wide
  :class:`LockOrderRegistry`.
* :class:`LockOrderRegistry` -- records the acquisition DAG per lock
  *name* (the lock's rank, e.g. ``"SteeringCache._lock"``): an edge
  ``A -> B`` means some thread acquired B while holding A.  Acquiring in
  an order whose reverse edge is already on record raises
  :class:`~repro.errors.ConcurrencyViolation` *before* the acquisition
  can deadlock -- the classic single-run lock-order checker: the
  inversion is caught even when the interleaving that would deadlock
  never happens.
* :func:`guarded_by` / :func:`holds_lock` -- declaration decorators.
  ``@guarded_by("_lock", "_refs")`` on a class declares that ``_refs``
  may only be written while ``self._lock`` is held; the declaration is
  read statically by lint rule RPR013 and, when checks are enabled,
  enforced at runtime through a ``__setattr__`` wrapper.
  ``@holds_lock("_lock")`` on a method declares (and, enabled, asserts)
  that callers enter it with the lock already held.

Like the ``@shaped`` contracts, the whole layer is **zero-cost when
disabled**: gating happens when the lock is created / the class is
decorated, driven by the ``REPRO_LOCK_CHECKS`` environment variable.
``tests/conftest.py`` enables it for the whole suite, so every tier-1
run doubles as a lock-discipline audit.

Scope notes (deliberate):

* Ranking is by lock *name*, not instance -- two instruments of the
  same class share a rank, so cross-instance nesting of same-ranked
  locks is reported as an inversion (it is one: two threads nesting
  opposite instances deadlock).
* Only attribute *rebinds* are checked at runtime (``self._x = ...``);
  in-place container mutation and reads are the static pass's job.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, Union

from repro.errors import ConcurrencyViolation, ConfigurationError

#: Environment variable gating the runtime lock checks ("1"/"true"/"on").
LOCK_CHECKS_ENV_VAR = "REPRO_LOCK_CHECKS"

_TRUTHY = {"1", "true", "on", "yes"}

#: Attribute set on instances of @guarded_by classes once __init__ has
#: finished; guarded-field writes are only checked after construction.
_READY_FLAG = "_repro_guard_ready"


def lock_checks_enabled() -> bool:
    """Whether tsan-lite is active (read at lock-creation time)."""
    return (
        os.environ.get(LOCK_CHECKS_ENV_VAR, "").strip().lower() in _TRUTHY
    )


def _call_site() -> str:
    """``file:line`` of the nearest caller outside this module."""
    for frame in reversed(traceback.extract_stack(limit=12)):
        if not frame.filename.endswith("runtime_locks.py"):
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


class LockOrderRegistry:
    """Process-wide observed lock-acquisition DAG, keyed by lock name.

    Thread-safety: the edge table is guarded by an internal plain
    ``threading.Lock`` (never a :class:`CheckedLock` -- the checker must
    not check itself); each thread's held-lock stack is thread-local.
    """

    def __init__(self) -> None:
        # (held name, acquired name) -> site string of first observation.
        self._edges: Dict[Tuple[str, str], str] = {}
        self._held = threading.local()
        self._guard = threading.Lock()

    def _stack(self) -> List[Tuple[str, "CheckedLock"]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def held_names(self) -> Tuple[str, ...]:
        """Names of locks the calling thread currently holds, in
        acquisition order."""
        return tuple(name for name, _ in self._stack())

    def observed_edges(self) -> Dict[Tuple[str, str], str]:
        """Copy of the observed DAG: ``(held, acquired) -> first site``."""
        with self._guard:
            return dict(self._edges)

    def reset(self) -> None:
        """Forget every observed edge (held stacks are per-thread and
        drain naturally)."""
        with self._guard:
            self._edges.clear()

    # ------------------------------------------------------------ hooks

    def note_acquire(self, lock: "CheckedLock") -> None:
        """Pre-acquisition check: runs *before* blocking on the lock.

        Raises:
            ConcurrencyViolation: re-acquiring a held non-reentrant lock
                (certain deadlock), nesting two locks of the same rank,
                or acquiring against an order already observed reversed.
        """
        stack = self._stack()
        site = _call_site()
        for held_name, held_lock in stack:
            if held_lock is lock:
                raise ConcurrencyViolation(
                    f"lock {lock.name!r} re-acquired by the thread that "
                    f"already holds it at {site} -- threading.Lock is "
                    f"not reentrant; this deadlocks"
                )
            if held_name == lock.name:
                raise ConcurrencyViolation(
                    f"two locks of rank {lock.name!r} nested at {site} "
                    f"-- same-rank nesting deadlocks when two threads "
                    f"take the instances in opposite order"
                )
        with self._guard:
            for held_name, _ in stack:
                reverse = self._edges.get((lock.name, held_name))
                if reverse is not None:
                    chain = " -> ".join(
                        [*(n for n, _ in stack), lock.name]
                    )
                    raise ConcurrencyViolation(
                        f"lock-order inversion: acquiring {lock.name!r} "
                        f"while holding {held_name!r} at {site}, but the "
                        f"opposite order {lock.name!r} -> {held_name!r} "
                        f"was observed at {reverse} (held chain: {chain})"
                    )
            for held_name, _ in stack:
                self._edges.setdefault((held_name, lock.name), site)

    def note_acquired(self, lock: "CheckedLock") -> None:
        """Record a successful acquisition on the thread's held stack."""
        self._stack().append((lock.name, lock))

    def note_release(self, lock: "CheckedLock") -> None:
        """Drop the lock from the thread's held stack (by identity)."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][1] is lock:
                del stack[index]
                return


_DEFAULT_REGISTRY = LockOrderRegistry()


def default_registry() -> LockOrderRegistry:
    """The process-wide registry every :func:`make_lock` lock reports to."""
    return _DEFAULT_REGISTRY


class CheckedLock:
    """A named, order-checked, owner-tracking ``threading.Lock`` stand-in.

    Drop-in for the ``with self._lock:`` discipline used across the
    repository.  Every acquisition is checked against the registry's
    observed DAG first (see :meth:`LockOrderRegistry.note_acquire`), so
    an inversion raises instead of (maybe, someday) deadlocking.

    Attributes:
        name: the lock's rank in the acquisition DAG.
    """

    __slots__ = ("name", "_inner", "_registry", "_owner")

    def __init__(
        self, name: str, registry: Optional[LockOrderRegistry] = None
    ):
        if not name:
            raise ConfigurationError("a CheckedLock needs a non-empty name")
        self.name = name
        self._inner = threading.Lock()
        self._registry = registry if registry is not None else _DEFAULT_REGISTRY
        self._owner: Optional[int] = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire after the order check; mirrors ``Lock.acquire``."""
        self._registry.note_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._registry.note_acquired(self)
        return acquired

    def release(self) -> None:
        """Release and clear ownership; mirrors ``Lock.release``."""
        self._owner = None
        self._registry.note_release(self)
        self._inner.release()

    def locked(self) -> bool:
        """Whether any thread holds the lock."""
        return self._inner.locked()

    def held_by_current_thread(self) -> bool:
        """Whether the *calling* thread holds the lock."""
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self.locked() else "unlocked"
        return f"<CheckedLock {self.name!r} {state}>"


#: What lock-holding modules annotate their lock attributes as.
LockLike = Union[threading.Lock, CheckedLock]


def make_lock(name: str) -> LockLike:
    """The repository's lock factory.

    Returns a plain ``threading.Lock`` when the checks are disabled (the
    production default: zero overhead, zero behaviour change) and a
    :class:`CheckedLock` ranked ``name`` when ``REPRO_LOCK_CHECKS`` is
    truthy.  The environment is read per call, so objects constructed
    inside an enabled test run are checked even though their module was
    imported earlier.
    """
    if lock_checks_enabled():
        return CheckedLock(name)
    return threading.Lock()


# ---------------------------------------------------------------------------
# Guard declarations
# ---------------------------------------------------------------------------


def guarded_by(lock_attr: str, *fields: str) -> Callable[[type], type]:
    """Class decorator declaring fields guarded by a lock attribute.

    ``@guarded_by("_lock", "_refs", "_shm")`` declares that ``_refs``
    and ``_shm`` may only be accessed while ``self._lock`` is held.  The
    declaration is recorded on the class as ``__guarded_fields__``
    (``field -> lock attribute``) where both the static RPR013 pass and
    this module's runtime enforcement read it.  Decorators stack: a
    class may declare different fields under different locks.

    Runtime enforcement (only when ``REPRO_LOCK_CHECKS`` was truthy at
    class-decoration time) wraps ``__setattr__``: rebinding a guarded
    field after ``__init__`` finishes, while the guard is a
    :class:`CheckedLock` the calling thread does not hold, raises
    :class:`~repro.errors.ConcurrencyViolation`.  Reads and in-place
    container mutation are checked statically, not here.
    """
    if not fields:
        raise ConfigurationError(
            "@guarded_by needs at least one field name after the lock"
        )

    def decorate(cls: type) -> type:
        declared = dict(getattr(cls, "__guarded_fields__", {}))
        for field_name in fields:
            declared[field_name] = lock_attr
        cls.__guarded_fields__ = declared  # type: ignore[attr-defined]
        if not lock_checks_enabled():
            return cls
        if getattr(cls, "_repro_guard_installed", None) is not cls:
            _install_guard_enforcement(cls)
        return cls

    return decorate


def _install_guard_enforcement(cls: type) -> None:
    """Wrap ``__init__``/``__setattr__`` to enforce guarded writes."""
    original_init = cls.__init__
    original_setattr = cls.__setattr__

    def checked_init(self: Any, *args: Any, **kwargs: Any) -> None:
        original_init(self, *args, **kwargs)
        object.__setattr__(self, _READY_FLAG, True)

    def checked_setattr(self: Any, name: str, value: Any) -> None:
        guard_attr = type(self).__guarded_fields__.get(name)
        if guard_attr is not None and getattr(self, _READY_FLAG, False):
            guard = getattr(self, guard_attr, None)
            if isinstance(guard, CheckedLock) and not (
                guard.held_by_current_thread()
            ):
                raise ConcurrencyViolation(
                    f"{type(self).__name__}.{name} is guarded by "
                    f"{guard_attr!r} but was written at {_call_site()} "
                    f"without the lock held"
                )
        original_setattr(self, name, value)

    cls.__init__ = checked_init  # type: ignore[method-assign]
    cls.__setattr__ = checked_setattr  # type: ignore[method-assign]
    cls._repro_guard_installed = cls  # type: ignore[attr-defined]


def holds_lock(lock_attr: str) -> Callable[[Callable], Callable]:
    """Method decorator: callers must already hold ``self.<lock_attr>``.

    The static RPR013 pass treats a ``@holds_lock("_lock")`` method's
    guarded-field accesses as lock-held (the tag is the method's
    contract); at runtime (checks enabled at decoration time) entering
    the method with a :class:`CheckedLock` guard the calling thread does
    not hold raises :class:`~repro.errors.ConcurrencyViolation` -- so a
    stale tag cannot quietly outlive the call sites that honoured it.
    """

    def decorate(fn: Callable) -> Callable:
        fn.__repro_holds_lock__ = lock_attr  # type: ignore[attr-defined]
        if not lock_checks_enabled():
            return fn

        import functools

        @functools.wraps(fn)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            guard = getattr(self, lock_attr, None)
            if isinstance(guard, CheckedLock) and not (
                guard.held_by_current_thread()
            ):
                raise ConcurrencyViolation(
                    f"{type(self).__name__}.{fn.__name__} is tagged "
                    f"@holds_lock({lock_attr!r}) but was entered at "
                    f"{_call_site()} without the lock held"
                )
            return fn(self, *args, **kwargs)

        wrapper.__repro_holds_lock__ = lock_attr  # type: ignore[attr-defined]
        return wrapper

    return decorate
