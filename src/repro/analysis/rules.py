"""The RPR rule set: repo-specific hazards, one rule each.

Every rule here encodes a way this codebase has been (or could
realistically be) broken -- see DESIGN.md's "Static analysis" section
for the physics/concurrency story behind each one.  Rules are pure AST
checks: no imports of the linted code, no execution.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.analysis.linting import FileContext, Finding, Rule

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The base variable of an attribute/subscript/call chain.

    ``alpha[i].real`` -> ``alpha``; ``self.alpha.copy()`` -> ``alpha``
    (the leading ``self`` is skipped so instance state matches too).
    """
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _attr_root(node: ast.AST) -> Optional[str]:
    """Like :func:`root_name` but also looks through ``self.<name>``."""
    name = dotted_name(node)
    if name is None:
        return root_name(node)
    parts = name.split(".")
    if parts[0] in ("self", "cls") and len(parts) > 1:
        return parts[1]
    return parts[0]


def enclosing_function(
    ctx: FileContext, node: ast.AST
) -> Optional[ast.AST]:
    """The innermost FunctionDef/AsyncFunctionDef containing the node."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def qualname(ctx: FileContext, func: ast.AST) -> str:
    """``Class.method`` / ``function`` for a FunctionDef node."""
    parts = [func.name]
    for ancestor in ctx.ancestors(func):
        if isinstance(
            ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            parts.append(ancestor.name)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# RPR001 -- complex-dtype loss on CSI arrays
# ---------------------------------------------------------------------------

#: Variable names that (in core/ and rf/) hold complex CSI / corrected
#: channel data.  The whole point of Eq. 10 is that these stay complex128
#: until an explicitly whitelisted magnitude/phase sink.
CSI_NAMES: Set[str] = {
    "alpha",
    "alpha_anchor",
    "csi",
    "h",
    "h_hat",
    "hhat",
    "channels",
    "tag",
    "tag_to_anchor",
    "master_to_anchor",
}

#: Dtypes that silently narrow complex128 phase math.
_NARROWING_DTYPES: Set[str] = {
    "float32",
    "float16",
    "half",
    "single",
    "complex64",
    "csingle",
    "np.float32",
    "np.float16",
    "np.half",
    "np.single",
    "np.complex64",
    "np.csingle",
    "numpy.float32",
    "numpy.float16",
    "numpy.half",
    "numpy.single",
    "numpy.complex64",
    "numpy.csingle",
}

#: Dtypes that are real-valued (dropping the imaginary part entirely).
_REAL_DTYPES: Set[str] = {
    "float",
    "float64",
    "double",
    "np.float64",
    "np.double",
    "np.floating",
    "numpy.float64",
    "numpy.double",
}


def _dtype_token(node: ast.AST) -> Optional[str]:
    """A comparable string for a dtype expression (name or literal)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return dotted_name(node)


class ComplexDtypeLoss(Rule):
    """RPR001: complex CSI data narrowed or realified in phase paths."""

    id = "RPR001"
    title = "complex-dtype loss on CSI arrays"
    rationale = (
        "A float32/complex64 narrowing or a real-part cast inside the "
        "core/rf phase paths silently wrecks the Eq. 10 triple-product "
        "correction; magnitude sinks must be explicit and whitelisted."
    )
    scopes = ("core", "rf")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            # np.float32(x) / np.complex64(x) constructor-style casts.
            if name in _NARROWING_DTYPES:
                yield ctx.finding(
                    self.id,
                    node,
                    f"narrowing cast {name}() in a phase path; CSI math "
                    f"must stay complex128",
                )
                continue
            # np.abs / np.real / np.imag directly on a CSI-named array.
            if name in ("np.abs", "numpy.abs", "np.real", "numpy.real",
                        "np.imag", "numpy.imag") and node.args:
                target = _attr_root(node.args[0])
                if target in CSI_NAMES:
                    op = name.split(".")[-1]
                    yield ctx.finding(
                        self.id,
                        node,
                        f"np.{op}({target}) discards CSI phase/complex "
                        f"structure outside a whitelisted sink",
                    )
                continue
            # x.astype(<real or narrowing dtype>)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                dtype_arg: Optional[ast.AST] = None
                if node.args:
                    dtype_arg = node.args[0]
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        dtype_arg = kw.value
                token = _dtype_token(dtype_arg) if dtype_arg is not None else None
                if token in _NARROWING_DTYPES:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"astype({token}) narrows precision in a phase path",
                    )
                elif token in _REAL_DTYPES:
                    target = _attr_root(node.func.value)
                    if target in CSI_NAMES:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"{target}.astype({token}) drops the imaginary "
                            f"part of a CSI array",
                        )
                continue
            # dtype=<narrowing> keyword on any numpy constructor.
            for kw in node.keywords:
                if kw.arg == "dtype":
                    token = _dtype_token(kw.value)
                    if token in _NARROWING_DTYPES:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"dtype={token} narrows precision in a phase "
                            f"path",
                        )


# ---------------------------------------------------------------------------
# RPR002 -- nondeterminism in physics code
# ---------------------------------------------------------------------------

#: ``np.random`` members that are fine: Generator construction, not draws.
_ALLOWED_NP_RANDOM: Set[str] = {"default_rng", "Generator", "SeedSequence"}


class NondeterministicCall(Rule):
    """RPR002: global-RNG draws or wall-clock reads in physics code."""

    id = "RPR002"
    title = "nondeterminism in physics code"
    rationale = (
        "Physics and protocol code must be reproducible from a seed: "
        "randomness comes from an injected np.random.Generator "
        "(utils.rng), time from an injected clock.  Global-RNG draws "
        "and time.time() make reruns and CI non-comparable."
    )
    scopes = ("core", "rf", "sim", "ble", "sdr", "experiments", "baselines")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports_random = any(
            (isinstance(node, ast.Import)
             and any(a.name == "random" for a in node.names))
            or (isinstance(node, ast.ImportFrom)
                and node.module == "random")
            for node in ast.walk(ctx.tree)
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            for prefix in ("np.random.", "numpy.random."):
                if name.startswith(prefix):
                    member = name[len(prefix):].split(".")[0]
                    if member not in _ALLOWED_NP_RANDOM:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"{name}() draws from the global RNG; inject "
                            f"a np.random.Generator (utils.rng.make_rng)",
                        )
                    break
            else:
                if imports_random and name.startswith("random."):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{name}() uses the stdlib global RNG; inject a "
                        f"np.random.Generator instead",
                    )
                elif name == "time.time":
                    yield ctx.finding(
                        self.id,
                        node,
                        "time.time() in physics/experiment code; use "
                        "time.perf_counter() for durations or inject a "
                        "clock",
                    )


# ---------------------------------------------------------------------------
# RPR003 -- unlocked mutation of module-level mutable state
# ---------------------------------------------------------------------------

_MUTATOR_METHODS: Set[str] = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
}

_MUTABLE_FACTORIES: Set[str] = {
    "list",
    "dict",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
    "collections.OrderedDict",
    "collections.defaultdict",
    "collections.deque",
}


class UnlockedSharedMutation(Rule):
    """RPR003: module-level mutable state mutated without a lock."""

    id = "RPR003"
    title = "unlocked mutation of module-level mutable state"
    rationale = (
        "evaluate(workers=N) fans fixes out over a thread pool; any "
        "module-level dict/list a worker-reachable function mutates "
        "without holding a lock is a data race (lost updates, torn "
        "iteration).  Mutations must sit inside `with <lock>:` or be "
        "explicitly waived with a justification."
    )
    scopes = ("core", "obs", "sim", "rf")

    def _module_mutables(self, ctx: FileContext) -> Set[str]:
        names: Set[str] = set()
        for stmt in ctx.tree.body:
            targets: Sequence[ast.AST] = ()
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = (stmt.target,), stmt.value
            if value is None:
                continue
            is_mutable = isinstance(
                value,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ) or (
                isinstance(value, ast.Call)
                and dotted_name(value.func) in _MUTABLE_FACTORIES
            )
            if not is_mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not target.id.startswith(
                    "__"
                ):
                    names.add(target.id)
        return names

    @staticmethod
    def _under_lock(ctx: FileContext, node: ast.AST) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    name = dotted_name(item.context_expr) or dotted_name(
                        getattr(item.context_expr, "func", ast.Pass())
                    )
                    if name is not None and "lock" in name.lower():
                        return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        mutables = self._module_mutables(ctx)
        if not mutables:
            return
        for node in ast.walk(ctx.tree):
            if enclosing_function(ctx, node) is None:
                continue  # module-level init writes are fine
            target_name: Optional[str] = None
            what = ""
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        base = root_name(target.value)
                        if base in mutables:
                            target_name, what = base, "item assignment"
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATOR_METHODS:
                    base = root_name(node.func.value)
                    if base in mutables:
                        target_name = base
                        what = f".{node.func.attr}()"
            elif isinstance(node, ast.Global):
                func = enclosing_function(ctx, node)
                for name in node.names:
                    if name in mutables or _assigns_global(func, name):
                        target_name, what = name, "global rebind"
            if target_name is None:
                continue
            if self._under_lock(ctx, node):
                continue
            yield ctx.finding(
                self.id,
                node,
                f"module-level mutable {target_name!r} mutated "
                f"({what}) outside a lock; worker threads reach this "
                f"module",
            )


def _assigns_global(func: Optional[ast.AST], name: str) -> bool:
    """Whether a function body assigns the given (global) name."""
    if func is None:
        return False
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
        elif isinstance(node, ast.AugAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == name
            ):
                return True
    return False


# ---------------------------------------------------------------------------
# RPR004 -- unbalanced Span usage
# ---------------------------------------------------------------------------


class UnbalancedSpan(Rule):
    """RPR004: `.span(...)` created but not entered as a context manager."""

    id = "RPR004"
    title = "span created without a context manager"
    rationale = (
        "A Span only records its duration and pops the thread-local "
        "stack on __exit__; a span created as a bare statement (or "
        "parked in a variable) never finishes, corrupting the parent "
        "chain of every later span on that thread."
    )
    scopes = None  # observability is used everywhere

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
            ):
                continue
            parent = ctx.parent(node)
            # `with obs.span(...):` -- correct usage.
            if isinstance(parent, ast.withitem):
                continue
            # `return self.tracer.span(...)` -- factory delegation.
            if isinstance(parent, ast.Return):
                continue
            if isinstance(parent, ast.Expr):
                yield ctx.finding(
                    self.id,
                    node,
                    "span created and discarded; enter it with "
                    "`with ...span(...):`",
                )
            elif isinstance(parent, (ast.Assign, ast.AnnAssign)):
                yield ctx.finding(
                    self.id,
                    node,
                    "span parked in a variable; enter it directly with "
                    "`with ...span(...):` so it always closes",
                )


# ---------------------------------------------------------------------------
# RPR005 -- metric-name convention
# ---------------------------------------------------------------------------

#: Registered metric namespaces (first dotted segment).
METRIC_NAMESPACES: Set[str] = {
    "anchor",
    "bench",
    "ble",
    "correction",
    "diag",
    "engine",
    "eval",
    "fix",
    "health",
    "obs",
    "peaks",
    "service",
    "telemetry",
}

_METRIC_FACTORIES: Set[str] = {"counter", "gauge", "histogram"}


class MetricNameConvention(Rule):
    """RPR005: metric names must be dotted and namespaced."""

    id = "RPR005"
    title = "metric name outside the registered namespaces"
    rationale = (
        "Dashboards and the bench-regression guard key on stable metric "
        "names; free-form names silently fork the timeseries.  Names "
        "must be `namespace.snake_case[...]` with a registered "
        "namespace (see METRIC_NAMESPACES)."
    )
    scopes = None

    @staticmethod
    def _literal_prefix(node: ast.AST) -> Optional[Tuple[str, bool]]:
        """(literal text, is_complete) for a str/f-string first arg."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, True
        if isinstance(node, ast.JoinedStr):
            prefix = []
            for part in node.values:
                if isinstance(part, ast.Constant) and isinstance(
                    part.value, str
                ):
                    prefix.append(part.value)
                else:
                    return "".join(prefix), False
            return "".join(prefix), True
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_FACTORIES
                and node.args
            ):
                continue
            extracted = self._literal_prefix(node.args[0])
            if extracted is None:
                continue  # dynamic name: cannot check statically
            literal, complete = extracted
            segments = literal.split(".")
            namespace = segments[0]
            problem: Optional[str] = None
            if namespace not in METRIC_NAMESPACES:
                problem = (
                    f"namespace {namespace!r} is not registered "
                    f"(allowed: {', '.join(sorted(METRIC_NAMESPACES))})"
                )
            elif complete and len(segments) < 2:
                problem = "name needs at least `namespace.metric`"
            else:
                checkable = segments[1:] if complete else segments[1:-1]
                for segment in checkable:
                    if segment and not all(
                        c.islower() or c.isdigit() or c == "_"
                        for c in segment
                    ):
                        problem = (
                            f"segment {segment!r} is not lower_snake_case"
                        )
                        break
                else:
                    if complete and any(not s for s in segments):
                        problem = "empty dotted segment"
            if problem is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    f"metric name {literal!r}: {problem}",
                )


# ---------------------------------------------------------------------------
# RPR006 -- float equality
# ---------------------------------------------------------------------------


class FloatEquality(Rule):
    """RPR006: `==` / `!=` against a float literal."""

    id = "RPR006"
    title = "exact equality against a float literal"
    rationale = (
        "Phase math accumulates rounding; `x == 0.3`-style comparisons "
        "flip on the last ulp.  Use math.isclose/np.isclose, an "
        "inequality, or an integer representation."
    )
    scopes = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (left, right) in zip(
                node.ops, zip(operands, operands[1:])
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, float
                    ):
                        yield ctx.finding(
                            self.id,
                            node,
                            f"float literal {side.value!r} compared with "
                            f"==/!=; use isclose or an inequality",
                        )
                        break


# ---------------------------------------------------------------------------
# RPR007 -- mutable default arguments
# ---------------------------------------------------------------------------


class MutableDefaultArg(Rule):
    """RPR007: list/dict/set literals as parameter defaults."""

    id = "RPR007"
    title = "mutable default argument"
    rationale = (
        "Defaults are evaluated once at import; a mutable default is "
        "shared across every call *and every worker thread*.  Use None "
        "plus an in-function default, or dataclass field factories."
    )
    scopes = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            defaults = [
                *node.args.defaults,
                *[d for d in node.args.kw_defaults if d is not None],
            ]
            for default in defaults:
                mutable = isinstance(
                    default,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp),
                ) or (
                    isinstance(default, ast.Call)
                    and dotted_name(default.func) in _MUTABLE_FACTORIES
                )
                if mutable:
                    yield ctx.finding(
                        self.id,
                        default,
                        f"mutable default in {node.name}(); use None and "
                        f"default inside the body",
                    )


# ---------------------------------------------------------------------------
# RPR008 -- bare / overbroad except
# ---------------------------------------------------------------------------


class OverbroadExcept(Rule):
    """RPR008: `except:` / `except Exception:` hides real failures."""

    id = "RPR008"
    title = "bare or overbroad except clause"
    rationale = (
        "The library has a single-root exception hierarchy (ReproError) "
        "precisely so callers never need `except Exception`; an "
        "overbroad clause swallows programming errors (and "
        "KeyboardInterrupt, for bare excepts) and turns them into bogus "
        "data points."
    )
    scopes = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self.id, node, "bare `except:`; catch ReproError or a "
                    "specific exception",
                )
                continue
            names = []
            exprs = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in exprs:
                name = dotted_name(expr)
                if name in ("Exception", "BaseException"):
                    names.append(name)
            for name in names:
                yield ctx.finding(
                    self.id,
                    node,
                    f"`except {name}` is overbroad; catch ReproError or "
                    f"a specific exception",
                )


# ---------------------------------------------------------------------------
# RPR009 -- hard-coded BLE constants
# ---------------------------------------------------------------------------

#: Literal value -> the repro.constants name that should be used instead.
#: This table must hold the raw values (it *defines* what RPR009 looks
#: for), so each entry suppresses the rule on itself.
BLE_CONSTANT_VALUES: Dict[float, str] = {
    299_792_458.0: "SPEED_OF_LIGHT",  # repro: noqa[RPR009]
    2.402e9: "BLE_BAND_START_HZ",  # repro: noqa[RPR009]
    2.480e9: "BLE_BAND_END_HZ",  # repro: noqa[RPR009]
    2.404e9: "BLE_DATA_LOW_BASE_HZ",  # repro: noqa[RPR009]
    2.426e9: "BLE_CHANNEL_38_FREQ_HZ",  # repro: noqa[RPR009]
    2.428e9: "BLE_DATA_HIGH_BASE_HZ",  # repro: noqa[RPR009]
    80.0e6: "BLE_TOTAL_SPAN_HZ",  # repro: noqa[RPR009]
    float(0x8E89BED6): "BLE_ADVERTISING_ACCESS_ADDRESS",  # repro: noqa[RPR009]
    float(0x555555): "BLE_CRC_INIT_ADVERTISING",  # repro: noqa[RPR009]
    float(0x00065B): "BLE_CRC_POLYNOMIAL",  # repro: noqa[RPR009]
    251.0: "BLE_MAX_PAYLOAD_OCTETS",  # repro: noqa[RPR009]
}


class MagicBleConstant(Rule):
    """RPR009: BLE magic numbers that exist in repro/constants.py."""

    id = "RPR009"
    title = "hard-coded BLE constant"
    rationale = (
        "The 37/40-band stitch, the 2 MHz lattice, and the ch-38 gap "
        "all hang off a handful of spectrum constants; a drifted local "
        "copy desynchronises the band plan from the steering engine.  "
        "Single source of truth: repro/constants.py."
    )
    scopes = None

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.rel.replace("\\", "/").endswith("repro/constants.py"):
            return False  # the definitions themselves
        return super().applies_to(ctx)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                continue
            name = BLE_CONSTANT_VALUES.get(float(node.value))
            if name is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    f"magic number {node.value!r}; use "
                    f"repro.constants.{name}",
                )


# ---------------------------------------------------------------------------
# RPR010 -- missing thread-safety tag on worker-reachable functions
# ---------------------------------------------------------------------------

#: Functions reachable from the evaluate(workers=N) thread pool that must
#: document their thread-safety contract, keyed by path suffix.
WORKER_REACHABLE: Dict[str, Tuple[str, ...]] = {
    "repro/core/engine.py": (
        "SteeringCache.entry_for",
        "SteeringCache.seed",
    ),
    "repro/core/localizer.py": (
        "BlocLocalizer.locate",
        "BlocLocalizer.locate_batch",
    ),
    "repro/core/parallel.py": (
        "SharedSteeringSegment.retain",
        "SharedSteeringSegment.close",
    ),
    "repro/obs/metrics.py": (
        "Counter.inc",
        "Counter.merge",
        "Gauge.set",
        "Gauge.merge",
        "Histogram.observe",
        "Histogram.merge",
        "Histogram.merge_snapshot",
        "MetricsRegistry.merge",
        "MetricsRegistry.merge_snapshot",
    ),
    "repro/obs/ledger.py": ("RunLedger.append",),
    "repro/obs/prof.py": (
        "SamplingProfiler.sample_once",
        "SamplingProfiler.stop",
    ),
    "repro/obs/trace.py": (
        "Tracer.absorb",
        "Tracer.active_stacks",
    ),
    "repro/sim/runner.py": (
        "DiagnosticsCapture.collect",
        "_WorkerRegistries.current",
    ),
}

_THREAD_TAG_WORDS = ("thread-safe", "thread-safety", "thread safety")


class MissingThreadSafetyTag(Rule):
    """RPR010: worker-reachable function without a thread-safety tag."""

    id = "RPR010"
    title = "worker-reachable function lacks a thread-safety docstring tag"
    rationale = (
        "evaluate(workers=N) calls these functions from pool threads; "
        "their docstrings must state the thread-safety contract "
        "(lock-protected, thread-local, or caller-serialised) so the "
        "next concurrency change knows what it may assume."
    )
    scopes = None

    def __init__(self, required: Optional[Dict[str, Tuple[str, ...]]] = None):
        super().__init__()
        self.required = WORKER_REACHABLE if required is None else required

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        wanted: Optional[Tuple[str, ...]] = None
        for suffix, names in self.required.items():
            if ctx.rel.endswith(suffix):
                wanted = names
                break
        if wanted is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            qual = qualname(ctx, node)
            if qual not in wanted:
                continue
            docstring = ast.get_docstring(node) or ""
            lowered = docstring.lower()
            if not any(tag in lowered for tag in _THREAD_TAG_WORDS):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{qual} is reachable from the evaluate() worker "
                    f"pool but its docstring does not document "
                    f"thread-safety",
                )


# ---------------------------------------------------------------------------
# RPR011 -- SharedMemory construction outside the shm engine module
# ---------------------------------------------------------------------------


class DirectSharedMemory(Rule):
    """RPR011: direct SharedMemory use outside repro/core/parallel.py."""

    id = "RPR011"
    title = "SharedMemory constructed outside the shm engine module"
    rationale = (
        "Segment ownership -- who unlinks, who merely unmaps, how the "
        "3.11 resource tracker is kept from unlinking a live segment -- "
        "is centralised in repro/core/parallel.py; a stray "
        "SharedMemory(...) elsewhere re-opens every /dev/shm leak and "
        "double-unlink bug that module exists to close.  Publish with "
        "publish_steering_entry(), attach with attach_steering()."
    )
    scopes = None

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.rel.replace("\\", "/").endswith("repro/core/parallel.py"):
            return False  # the one sanctioned constructor site
        return super().applies_to(ctx)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name == "SharedMemory" or name.endswith(".SharedMemory"):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{name}(...) outside repro/core/parallel.py -- "
                    "publish with publish_steering_entry(), attach with "
                    "attach_steering()",
                )


# ---------------------------------------------------------------------------
# RPR012 -- service request handlers must open a trace-carrying span
# ---------------------------------------------------------------------------


class UntracedServiceHandler(Rule):
    """RPR012: a service request handler without a trace_id-bearing span."""

    id = "RPR012"
    title = "service request handler does not open a span with a trace_id"
    rationale = (
        "Every HTTP handler anchors its request's distributed trace: "
        "the span it opens with an explicit trace_id= is what makes "
        "`repro obs trace <id>` reconstruct the request and what feeds "
        "the /metrics exemplars.  A handler that skips it (or lets the "
        "tracer invent a fresh root id) produces orphaned spans that "
        "no response trace_id can find."
    )
    scopes = None

    #: Handlers this rule covers, by (path suffix, name prefix).
    handler_files: Tuple[str, ...] = ("repro/service/app.py",)
    handler_prefix = "handle_"

    def applies_to(self, ctx: FileContext) -> bool:
        rel = ctx.rel.replace("\\", "/")
        if not any(rel.endswith(f) for f in self.handler_files):
            return False
        return super().applies_to(ctx)

    def _opens_traced_span(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            # Match any `<expr>.span(...)` -- the receiver is often a
            # call chain (`get_observer().span(...)`), which a dotted
            # name match would miss.
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
            ):
                continue
            if any(kw.arg == "trace_id" for kw in node.keywords):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not node.name.startswith(self.handler_prefix):
                continue
            if not self._opens_traced_span(node):
                yield ctx.finding(
                    self.id,
                    node,
                    f"{qualname(ctx, node)} handles a service request "
                    f"but never opens a span with an explicit "
                    f"trace_id= -- its spans would be orphaned from "
                    f"the request's trace",
                )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

ALL_RULES = (
    ComplexDtypeLoss,
    NondeterministicCall,
    UnlockedSharedMutation,
    UnbalancedSpan,
    MetricNameConvention,
    FloatEquality,
    MutableDefaultArg,
    OverbroadExcept,
    MagicBleConstant,
    MissingThreadSafetyTag,
    DirectSharedMemory,
    UntracedServiceHandler,
)


def default_rules() -> list:
    """Fresh instances of every rule, in id order."""
    return [rule_cls() for rule_cls in ALL_RULES]
