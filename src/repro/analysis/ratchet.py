"""Typing ratchet: per-module error counts may only go down.

Strict typing cannot land on a 160-file codebase in one PR, and a plain
"mypy must pass" gate would either be disabled or block unrelated work.
The ratchet is the standard middle path: a committed baseline records
the per-module error count of the tree as of the last update, CI fails
when any module's count *grows*, and improvements are committed by
re-running ``update``.  Annotation coverage therefore only moves
forward.

Two checkers are supported:

* ``mypy`` -- the real thing, run as a subprocess when the package is
  importable (CI installs it; the pinned dev container may not have
  it).
* ``annotations`` -- a dependency-free AST fallback that counts missing
  parameter/return annotations per module.  Deterministic, fast, and
  available everywhere, so the *committed* baseline uses it; CI
  additionally runs the mypy checker against a baseline captured in the
  same job (see .github/workflows/ci.yml).

Baselines record which checker produced them; ``check`` refuses to
compare counts across checkers.

Exit codes: 0 ok, 1 ratchet violation, 2 usage error, 3 checker
unavailable.
"""

from __future__ import annotations

import argparse
import ast
import importlib.util
import json
import re
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

BASELINE_FORMAT = "repro-typing-baseline"
BASELINE_VERSION = 1

_MYPY_LINE = re.compile(r"^(?P<path>[^:\n]+\.py):\d+(?::\d+)?: error:")


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------


def annotation_gap_count(tree: ast.Module) -> int:
    """Number of typing gaps in one module (AST fallback checker).

    A gap is a function parameter without an annotation (``self``/``cls``
    in methods are exempt) or a missing return annotation (``__init__``
    is exempt: its return is always None).
    """
    gaps = 0
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                gaps += 1
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                gaps += 1
        for arg in (args.vararg, args.kwarg):
            if arg is not None and arg.annotation is None:
                gaps += 1
        if node.returns is None and node.name != "__init__":
            gaps += 1
    return gaps


def collect_annotation_counts(root: Path) -> Dict[str, int]:
    """Per-module gap counts for every ``*.py`` under ``root``."""
    counts: Dict[str, int] = {}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root.parent).as_posix()
        tree = ast.parse(path.read_text(encoding="utf-8"))
        counts[rel] = annotation_gap_count(tree)
    return counts


def mypy_available() -> bool:
    """Whether the mypy package can be imported in this interpreter."""
    return importlib.util.find_spec("mypy") is not None


def collect_mypy_counts(root: Path) -> Dict[str, int]:
    """Per-module mypy error counts for the tree under ``root``.

    Raises:
        RuntimeError: when mypy is not installed.
    """
    if not mypy_available():
        raise RuntimeError(
            "mypy is not installed in this environment; use "
            "--checker annotations or install the `dev` extra"
        )
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--no-error-summary",
            "--hide-error-context",
            str(root),
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    counts: Dict[str, int] = {
        path.relative_to(root.parent).as_posix(): 0
        for path in sorted(root.rglob("*.py"))
    }
    anchor = root.parent.resolve()
    for line in result.stdout.splitlines():
        match = _MYPY_LINE.match(line.strip())
        if match is None:
            continue
        reported = Path(match.group("path"))
        try:
            rel = (
                reported.resolve().relative_to(anchor).as_posix()
                if reported.is_absolute()
                else Path(*reported.parts).as_posix()
            )
        except ValueError:
            rel = reported.as_posix()
        # Normalise "src/repro/x.py" style output to the baseline key.
        for candidate in (rel, rel.split("/", 1)[-1]):
            if candidate in counts:
                rel = candidate
                break
        counts[rel] = counts.get(rel, 0) + 1
    return counts


CHECKERS = {
    "annotations": collect_annotation_counts,
    "mypy": collect_mypy_counts,
}


def resolve_checker(requested: str, baseline: Optional[dict]) -> str:
    """Pick the effective checker for ``auto`` / explicit requests."""
    if requested != "auto":
        return requested
    if baseline is not None and baseline.get("checker") in CHECKERS:
        return baseline["checker"]
    return "mypy" if mypy_available() else "annotations"


# ---------------------------------------------------------------------------
# Baseline I/O and comparison
# ---------------------------------------------------------------------------


def load_baseline(path: Path) -> dict:
    """Parse and validate a committed baseline file."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != BASELINE_FORMAT:
        raise ValueError(f"{path}: not a {BASELINE_FORMAT} file")
    if payload.get("checker") not in CHECKERS:
        raise ValueError(f"{path}: unknown checker {payload.get('checker')!r}")
    if not isinstance(payload.get("modules"), dict):
        raise ValueError(f"{path}: missing per-module counts")
    return payload


def write_baseline(
    path: Path, checker: str, root: Path, counts: Dict[str, int]
) -> None:
    """Write a baseline file (sorted, stable diffs)."""
    payload = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "checker": checker,
        "root": root.as_posix(),
        "total": int(sum(counts.values())),
        "modules": {k: counts[k] for k in sorted(counts)},
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def compare(
    current: Dict[str, int], baseline: Dict[str, int]
) -> Dict[str, List[str]]:
    """Classify per-module deltas against the baseline.

    Modules absent from the baseline (new files) get a budget of 0: new
    code starts fully annotated and stays that way.  Modules that
    disappeared are reported so stale baselines get cleaned up.
    """
    regressions, improvements, removed = [], [], []
    for module in sorted(set(current) | set(baseline)):
        now = current.get(module)
        allowed = baseline.get(module, 0)
        if now is None:
            removed.append(module)
        elif now > allowed:
            regressions.append(
                f"{module}: {now} error(s), baseline allows {allowed}"
            )
        elif now < allowed:
            improvements.append(
                f"{module}: {now} error(s), baseline had {allowed}"
            )
    return {
        "regressions": regressions,
        "improvements": improvements,
        "removed": removed,
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.ratchet",
        description="typing ratchet: per-module error counts only go down",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("check", "compare the tree against a committed baseline"),
        ("update", "(re)write the baseline from the current tree"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument(
            "--baseline",
            metavar="PATH",
            default="typing_baseline.json",
            help="baseline file (default: typing_baseline.json)",
        )
        command.add_argument(
            "--root",
            metavar="DIR",
            default="src/repro",
            help="package root to analyse (default: src/repro)",
        )
        command.add_argument(
            "--checker",
            choices=("auto", "mypy", "annotations"),
            default="auto",
            help="auto follows the baseline's checker (update: mypy "
            "when installed, else annotations)",
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"error: root {root} is not a directory", file=sys.stderr)
        return 2
    baseline_path = Path(args.baseline)

    if args.command == "update":
        checker = resolve_checker(args.checker, None)
        try:
            counts = CHECKERS[checker](root)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3
        write_baseline(baseline_path, checker, root, counts)
        print(
            f"[ratchet] wrote {baseline_path} ({checker}): "
            f"{sum(counts.values())} error(s) across {len(counts)} modules"
        )
        return 0

    try:
        baseline = load_baseline(baseline_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: cannot load baseline: {exc}", file=sys.stderr)
        return 2
    checker = resolve_checker(args.checker, baseline)
    if checker != baseline["checker"]:
        print(
            f"error: baseline was produced by {baseline['checker']!r} "
            f"but --checker {checker!r} was requested; counts are not "
            f"comparable",
            file=sys.stderr,
        )
        return 2
    try:
        counts = CHECKERS[checker](root)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    outcome = compare(counts, baseline["modules"])
    for line in outcome["improvements"]:
        print(f"[ratchet] improved  {line}")
    for module in outcome["removed"]:
        print(f"[ratchet] removed   {module} (re-run update to clean up)")
    for line in outcome["regressions"]:
        print(f"[ratchet] REGRESSED {line}", file=sys.stderr)
    total = sum(counts.values())
    print(
        f"[ratchet] {checker}: {total} error(s) across "
        f"{len(counts)} modules "
        f"(baseline {baseline.get('total', '?')})"
    )
    if outcome["regressions"]:
        print(
            "[ratchet] typing regressed; annotate the flagged modules "
            "(or, for a deliberate trade-off, re-run "
            "`python -m repro.analysis.ratchet update`)",
            file=sys.stderr,
        )
        return 1
    if outcome["improvements"]:
        print(
            "[ratchet] coverage improved -- run `update` and commit the "
            "new baseline to lock it in"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
