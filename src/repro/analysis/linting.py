"""AST lint engine: pluggable rules + per-line noqa suppression.

The engine parses each file once, annotates every node with its parent
(so rules can walk *up* as well as down), runs every applicable rule,
and matches the resulting findings against the file's suppression
comments.  Suppressed findings are kept -- reports show how much is
being waived and why -- but they do not fail a run.

Suppression syntax (one comment per line, applies to that line)::

    risky_thing()  # repro: noqa[RPR001] -- amplitude sink, phase unused
    anything_at_all()  # repro: noqa  (blanket: suppresses every rule)

The justification after ``--`` is free text; the convention (enforced by
review, not the parser) is that every blanket or rule-specific noqa
carries one.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Rule id used for files the engine cannot parse.
PARSE_ERROR_RULE = "PARSE"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel entry meaning "every rule is suppressed on this line".
BLANKET = "*"


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    Attributes:
        rule: rule id (``RPR001``...).
        path: file the finding is in (as given to the engine).
        line: 1-indexed source line.
        col: 0-indexed column.
        message: human-readable description.
        suppressed: True when a ``# repro: noqa`` comment waives it.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    baselined: bool = False

    def render(self) -> str:
        """``path:line:col: RULE message`` (plus a suppression marker)."""
        tag = ""
        if self.suppressed:
            tag = "  [suppressed]"
        elif self.baselined:
            tag = "  [baselined]"
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"

    def to_dict(self) -> dict:
        """Plain-data view for the JSON report."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


def parse_noqa(source: str) -> Dict[int, Set[str]]:
    """Per-line suppression table: line number -> suppressed rule ids.

    A bare ``# repro: noqa`` maps to the :data:`BLANKET` sentinel.  Rule
    lists are comma-separated and case-normalised to upper case.
    """
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        if "repro:" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = {BLANKET}
        else:
            table.setdefault(lineno, set()).update(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
    return table


class FileContext:
    """Everything a rule needs about one parsed file.

    Attributes:
        path: filesystem path (used in findings).
        rel: normalised posix-style path used for scope matching.
        source: raw file text.
        tree: parsed module with parent links annotated
            (``node._repro_parent``).
    """

    def __init__(
        self,
        source: str,
        tree: ast.Module,
        path: str,
        rel: Optional[str] = None,
    ):
        self.path = path
        self.rel = (rel or path).replace("\\", "/")
        self.source = source
        self.tree = tree
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                child._repro_parent = node  # type: ignore[attr-defined]

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The node's parent (None for the module root)."""
        return getattr(node, "_repro_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from the node's parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def in_dirs(self, *segments: str) -> bool:
        """Whether the file lives under any of the given directories."""
        haystack = "/" + self.rel
        return any(f"/{segment}/" in haystack for segment in segments)

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """A finding anchored at a node's location."""
        return Finding(
            rule=rule_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` / :attr:`title` / :attr:`rationale`,
    optionally restrict themselves to directory ``scopes``, and
    implement :meth:`check` as a generator of findings.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: Directory segments the rule applies to (None: every file).
    scopes: Optional[Sequence[str]] = None

    def __init__(self, scopes: Optional[Sequence[str]] = "default"):
        if scopes != "default":
            self.scopes = scopes

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether the rule should run on this file."""
        if self.scopes is None:
            return True
        return ctx.in_dirs(*self.scopes)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs to see the whole linted file set at once.

    Per-file rules answer "is this line wrong?"; a project rule answers
    questions whose evidence is spread across modules -- lock-order
    inversion (RPR014) is the canonical case: the two conflicting
    acquisition paths usually live in different files.  The engine
    collects every parsed :class:`FileContext` first, filters by
    :meth:`Rule.applies_to`, and hands the survivors to
    :meth:`check_project` in one call.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Per-file entry point: a project of one file."""
        return self.check_project([ctx])

    def check_project(
        self, ctxs: Sequence[FileContext]
    ) -> Iterator[Finding]:
        """Yield findings for the whole file set."""
        raise NotImplementedError


@dataclass
class LintReport:
    """Outcome of linting a set of files.

    Attributes:
        findings: every finding, suppressed ones included, in
            (path, line, col) order.
        files_checked: number of files parsed and linted.
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings not waived by a noqa comment."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        """Findings waived by a noqa comment."""
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        """Active findings covered by the waiver baseline."""
        return [f for f in self.active if f.baselined]

    @property
    def failing(self) -> List[Finding]:
        """Findings that should fail the run: active and not baselined."""
        return [f for f in self.active if not f.baselined]

    @property
    def parse_errors(self) -> List[Finding]:
        """Files the engine could not parse."""
        return [f for f in self.findings if f.rule == PARSE_ERROR_RULE]

    def counts_by_rule(self) -> Dict[str, int]:
        """Active finding count per rule id."""
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """Plain-data view for the JSON report / CI artifact."""
        return {
            "format": "repro-lint",
            "version": 2,
            "files_checked": self.files_checked,
            "num_findings": len(self.active),
            "num_failing": len(self.failing),
            "num_baselined": len(self.baselined),
            "num_suppressed": len(self.suppressed),
            "counts_by_rule": self.counts_by_rule(),
            "findings": [f.to_dict() for f in self.active],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def to_json(self) -> str:
        """The JSON report, pretty-printed."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


class LintEngine:
    """Run a rule set over sources, files or directory trees."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None):
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: List[Rule] = list(rules)
        seen: Set[str] = set()
        for rule in self.rules:
            if not rule.id:
                raise ValueError(f"rule {rule!r} has no id")
            if rule.id in seen:
                raise ValueError(f"duplicate rule id {rule.id}")
            seen.add(rule.id)

    def _parse(
        self,
        source: str,
        path: str,
        rel: Optional[str],
    ) -> "Tuple[Optional[FileContext], Optional[Finding]]":
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return None, Finding(
                rule=PARSE_ERROR_RULE,
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"cannot parse: {exc.msg}",
            )
        return FileContext(source, tree, path=path, rel=rel), None

    def _run(self, ctxs: Sequence[FileContext]) -> List[Finding]:
        """Run every rule: per-file rules per context, project rules
        once over all applicable contexts."""
        findings: List[Finding] = []
        for rule in self.rules:
            applicable = [c for c in ctxs if rule.applies_to(c)]
            if isinstance(rule, ProjectRule):
                if applicable:
                    findings.extend(rule.check_project(applicable))
            else:
                for ctx in applicable:
                    findings.extend(rule.check(ctx))
        noqa_by_path: Dict[str, Dict[int, Set[str]]] = {
            ctx.path: parse_noqa(ctx.source) for ctx in ctxs
        }
        out: List[Finding] = []
        for finding in findings:
            waived = noqa_by_path.get(finding.path, {}).get(
                finding.line, ()
            )
            if BLANKET in waived or finding.rule.upper() in waived:
                finding = replace(finding, suppressed=True)
            out.append(finding)
        out.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return out

    def lint_source(
        self,
        source: str,
        path: str = "<string>",
        rel: Optional[str] = None,
    ) -> List[Finding]:
        """Lint one in-memory source blob.

        Args:
            source: the Python source text.
            path: path used in findings.
            rel: path used for rule scope matching (defaults to
                ``path``); lets tests lint fixture text *as if* it lived
                under ``src/repro/core/``.
        """
        ctx, error = self._parse(source, path, rel)
        if ctx is None:
            return [error] if error is not None else []
        return self._run([ctx])

    def lint_file(self, path: Path) -> List[Finding]:
        """Lint one file on disk."""
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, path=str(path))

    def lint_paths(self, paths: Sequence[Path]) -> LintReport:
        """Lint files and/or directory trees (``**/*.py``).

        All files are parsed up front so :class:`ProjectRule` rules see
        the whole set at once; per-file rules behave exactly as before.
        """
        report = LintReport()
        ctxs: List[FileContext] = []
        for path in _expand(paths):
            text = Path(path).read_text(encoding="utf-8")
            ctx, error = self._parse(text, str(path), rel=None)
            if error is not None:
                report.findings.append(error)
            if ctx is not None:
                ctxs.append(ctx)
            report.files_checked += 1
        report.findings.extend(self._run(ctxs))
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report


def _expand(paths: Sequence[Path]) -> Iterator[Path]:
    """Files from a mix of file and directory paths, sorted."""
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path
