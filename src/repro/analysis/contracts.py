"""Runtime shape/dtype contracts for the hot numeric signatures.

The Python type system cannot see that ``alpha`` must be a complex128
``(I, J, K)`` array or that a steering block must be ``(N, K)``; a
silent shape broadcast or dtype downcast instead produces a *wrong
answer*, not an exception.  The :func:`shaped` decorator turns those
invariants into checks::

    @shaped(dtype=np.complexfloating, alpha=("I", "J", "K"))
    def linear_phase_residual(alpha): ...

Dimension tokens are strings bound on first use and checked for
consistency across every parameter of the same call, integers are exact
sizes, and ``None`` matches anything.  Dtypes are checked with
``np.issubdtype`` so an abstract kind (``np.complexfloating``,
``np.floating``) accepts any width of that kind while a concrete dtype
(``np.complex128``) demands an exact match.

The whole layer is **zero-cost when disabled**: unless the
``REPRO_CONTRACTS`` environment variable is truthy at import (i.e.
decoration) time, :func:`shaped` returns the function unchanged -- no
wrapper, no per-call overhead.  The test suite enables it in
``tests/conftest.py``, so every tier-1 run exercises the contracts.
"""

from __future__ import annotations

import functools
import inspect
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, ContractViolation

#: Environment variable gating the contract layer ("1"/"true"/"on").
CONTRACTS_ENV_VAR = "REPRO_CONTRACTS"

_TRUTHY = {"1", "true", "on", "yes"}

DimSpec = Union[int, str, None]
ShapeSpec = Tuple[DimSpec, ...]


def contracts_enabled() -> bool:
    """Whether the contract layer is active (read per decoration)."""
    return (
        os.environ.get(CONTRACTS_ENV_VAR, "").strip().lower() in _TRUTHY
    )


@dataclass(frozen=True)
class ArraySpec:
    """Contract for one array parameter.

    Attributes:
        shape: per-axis spec -- int (exact), str (dimension variable
            shared across parameters), None (any size); None overall
            skips the shape check.
        dtype: numpy dtype or abstract kind the array must satisfy via
            ``np.issubdtype``; None skips the dtype check.
    """

    shape: Optional[ShapeSpec] = None
    dtype: Optional[Any] = None


def arr(shape: Optional[Tuple[DimSpec, ...]] = None, dtype: Any = None) -> ArraySpec:
    """Shorthand for an :class:`ArraySpec` with a per-param dtype."""
    return ArraySpec(
        shape=tuple(shape) if shape is not None else None, dtype=dtype
    )


def _check_param(
    qualname: str,
    name: str,
    value: Any,
    spec: ArraySpec,
    dims: Dict[str, int],
) -> None:
    """Validate one argument against its spec, binding dimension vars."""
    array = np.asarray(value)
    if spec.dtype is not None and not np.issubdtype(array.dtype, spec.dtype):
        expected = getattr(spec.dtype, "__name__", str(spec.dtype))
        raise ContractViolation(
            f"{qualname}(): parameter {name!r} has dtype {array.dtype}, "
            f"contract requires {expected}"
        )
    if spec.shape is None:
        return
    if array.ndim != len(spec.shape):
        raise ContractViolation(
            f"{qualname}(): parameter {name!r} has shape {array.shape} "
            f"({array.ndim}-D), contract requires {len(spec.shape)}-D "
            f"{spec.shape}"
        )
    for axis, dim in enumerate(spec.shape):
        actual = int(array.shape[axis])
        if dim is None:
            continue
        if isinstance(dim, int):
            if actual != dim:
                raise ContractViolation(
                    f"{qualname}(): parameter {name!r} axis {axis} has "
                    f"size {actual}, contract requires {dim}"
                )
        else:
            bound = dims.setdefault(dim, actual)
            if actual != bound:
                raise ContractViolation(
                    f"{qualname}(): parameter {name!r} axis {axis} has "
                    f"size {actual}, but dimension {dim!r} is already "
                    f"{bound} in this call"
                )


def shaped(dtype: Any = None, **param_specs: Union[ArraySpec, Tuple[DimSpec, ...]]):
    """Declare shape/dtype contracts on a function's array parameters.

    Args:
        dtype: default dtype requirement applied to every listed
            parameter (an :class:`ArraySpec` value overrides it).
        **param_specs: parameter name -> shape tuple (with the shared
            default dtype) or a full :class:`ArraySpec` / :func:`arr`.

    Returns:
        The decorator.  When contracts are disabled (no
        ``REPRO_CONTRACTS`` in the environment) the decorated function
        is returned unchanged.

    Raises:
        ConfigurationError: at decoration time, for a spec naming a
            parameter the function does not have.
        ContractViolation: at call time, when an argument breaks its
            contract (None arguments and omitted parameters are
            skipped).
    """

    def decorate(fn):
        if not contracts_enabled():
            return fn
        signature = inspect.signature(fn)
        unknown = set(param_specs) - set(signature.parameters)
        if unknown:
            raise ConfigurationError(
                f"@shaped on {fn.__qualname__}: unknown parameter(s) "
                f"{sorted(unknown)}"
            )
        specs: Dict[str, ArraySpec] = {}
        for name, raw in param_specs.items():
            if isinstance(raw, ArraySpec):
                spec = raw
                if spec.dtype is None and dtype is not None:
                    spec = ArraySpec(shape=spec.shape, dtype=dtype)
            else:
                spec = ArraySpec(shape=tuple(raw), dtype=dtype)
            specs[name] = spec

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            try:
                bound = signature.bind(*args, **kwargs)
            except TypeError:
                # Let Python raise its own (clearer) signature error.
                return fn(*args, **kwargs)
            dims: Dict[str, int] = {}
            for name, spec in specs.items():
                if name not in bound.arguments:
                    continue
                value = bound.arguments[name]
                if value is None:
                    continue
                _check_param(fn.__qualname__, name, value, spec, dims)
            return fn(*args, **kwargs)

        wrapper.__repro_contracts__ = specs  # introspection for tests
        return wrapper

    return decorate
