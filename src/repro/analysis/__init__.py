"""Repo-specific static analysis and runtime contracts.

BLoc's correctness rests on invariants the Python type system cannot
express: phase math must stay complex128 end-to-end, physics code must be
deterministic under an injected RNG, and the thread-pooled evaluation
paths must not mutate shared state unlocked.  This package holds the
tooling that enforces those invariants *before* they show up as a bench
regression:

* :mod:`repro.analysis.linting` -- an AST lint engine with pluggable
  rules and per-line ``# repro: noqa[RULE]`` suppression, driven by the
  ``repro lint`` CLI subcommand.
* :mod:`repro.analysis.rules` -- the RPR001..RPR010 rule set, each one
  grounded in a real hazard of this codebase (see DESIGN.md).
* :mod:`repro.analysis.contracts` -- the env-gated ``@shaped`` runtime
  shape/dtype contract decorator applied to the hottest core/rf
  signatures (zero cost unless ``REPRO_CONTRACTS`` is set; the test
  suite enables it).
* :mod:`repro.analysis.ratchet` -- the typing ratchet: per-module error
  counts (mypy when available, a built-in annotation-coverage checker
  otherwise) compared against the committed ``typing_baseline.json`` so
  annotation coverage only moves forward.
"""

from repro.analysis.contracts import (
    CONTRACTS_ENV_VAR,
    ArraySpec,
    arr,
    contracts_enabled,
    shaped,
)
from repro.analysis.linting import (
    Finding,
    LintEngine,
    LintReport,
    Rule,
    parse_noqa,
)
from repro.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "ArraySpec",
    "CONTRACTS_ENV_VAR",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "arr",
    "contracts_enabled",
    "default_rules",
    "parse_noqa",
    "shaped",
]
