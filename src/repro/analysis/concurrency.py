"""Concurrency-safety rules: RPR013 (guarded-by), RPR014 (lock order),
RPR015 (resource lifetime).

These rules make the repository's thread-safety contract machine-checked:

* **RPR013** reads the guard declarations that
  :func:`repro.analysis.runtime_locks.guarded_by` records (plus
  ``# guarded-by: NAME`` trailing comments for module globals and
  ``__init__``-assigned fields) and verifies every access to a guarded
  attribute happens lexically inside ``with self.<lock>:`` -- or inside
  a method tagged ``@holds_lock``, whose contract is that callers bring
  the lock.
* **RPR014** extracts each function's lock-acquisition graph from its
  ``with`` statements, propagates acquisitions through the intra-package
  call graph, and flags cycles in the resulting held->acquired graph:
  the static shadow of the tsan-lite runtime checker, catching
  inversions in paths the test suite never interleaves.
* **RPR015** tracks ``open``/``SharedMemory``/``socket`` acquisitions
  through a function and flags resources that are not released on all
  paths: not a ``with`` context, not closed in a ``finally``, and never
  handed off (returned, stored on ``self``, passed to another call).

RPR013/RPR015 are per-file :class:`~repro.analysis.linting.Rule`\\ s;
RPR014 is a :class:`~repro.analysis.linting.ProjectRule` because an
inversion is, by definition, a property of two call paths that may live
in different modules.  All three are opt-in via ``repro lint
--concurrency`` and ratcheted by the committed waiver baseline
(``concurrency_baseline.json``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.linting import FileContext, Finding, ProjectRule, Rule
from repro.analysis.rules import dotted_name, enclosing_function, qualname

#: Trailing-comment guard declaration: ``self._x = {}  # guarded-by: _lock``.
_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>\w+)")

#: Method names that release a resource for RPR015 purposes.
_CLOSER_METHODS: Set[str] = {
    "close",
    "unlink",
    "shutdown",
    "terminate",
    "release",
    "stop",
    "join",
}

#: Callables whose result owns a releasable OS resource.
_ACQUIRING_BARE: Set[str] = {"open", "SharedMemory", "socket"}
_ACQUIRING_DOTTED: Set[str] = {
    "os.fdopen",
    "socket.socket",
    "shared_memory.SharedMemory",
}
#: Attribute-call tails that acquire (``path.open(...)``, ``*.SharedMemory``).
_ACQUIRING_ATTRS: Set[str] = {"open", "SharedMemory"}


def _decorator_call(node: ast.expr, name: str) -> Optional[ast.Call]:
    """The decorator as a Call if it is ``name(...)`` / ``mod.name(...)``."""
    if not isinstance(node, ast.Call):
        return None
    func = dotted_name(node.func)
    if func is not None and func.split(".")[-1] == name:
        return node
    return None


def _str_args(call: ast.Call) -> List[str]:
    """The call's positional string-constant arguments, in order."""
    out: List[str] = []
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.append(arg.value)
    return out


def _guard_comments(ctx: FileContext) -> Dict[int, str]:
    """``# guarded-by: NAME`` declarations by source line number."""
    table: Dict[int, str] = {}
    for lineno, line in enumerate(ctx.source.splitlines(), 1):
        match = _GUARDED_BY_RE.search(line)
        if match is not None:
            table[lineno] = match.group("lock")
    return table


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when the node is exactly ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _holds_lock_attr(func: ast.AST) -> Optional[str]:
    """The lock attr of a ``@holds_lock("...")`` decorator, if present."""
    for dec in getattr(func, "decorator_list", []):
        call = _decorator_call(dec, "holds_lock")
        if call is not None:
            args = _str_args(call)
            if args:
                return args[0]
    return None


def _with_holds(ctx: FileContext, node: ast.AST, lock_expr: str) -> bool:
    """Whether an ancestor ``with`` statement acquires ``lock_expr``
    (a dotted name such as ``self._lock`` or a bare module name)."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                if dotted_name(item.context_expr) == lock_expr:
                    return True
    return False


class GuardedFieldDiscipline(Rule):
    """RPR013: guarded fields touched outside their lock."""

    id = "RPR013"
    title = "guarded field accessed without its declared lock held"
    rationale = (
        "@guarded_by / '# guarded-by:' declarations are the thread-safety "
        "contract; an access outside 'with self._lock:' (or a @holds_lock "
        "method) is a data race waiting for traffic."
    )
    scopes = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        comments = _guard_comments(ctx)
        yield from self._check_module_globals(ctx, comments)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node, comments)

    # ------------------------------------------------------------ class

    def _class_guards(
        self, cls: ast.ClassDef, comments: Dict[int, str]
    ) -> Dict[str, str]:
        """``field -> lock attr`` for one class (decorators + comments)."""
        guards: Dict[str, str] = {}
        for dec in cls.decorator_list:
            call = _decorator_call(dec, "guarded_by")
            if call is None:
                continue
            args = _str_args(call)
            if len(args) >= 2:
                lock_attr = args[0]
                for field_name in args[1:]:
                    guards[field_name] = lock_attr
        # Trailing comments on `self.X = ...` statements inside the class.
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            lock = comments.get(node.lineno)
            if lock is None:
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                field_name = _self_attr(target)
                if field_name is not None:
                    guards[field_name] = lock
        return guards

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef, comments: Dict[int, str]
    ) -> Iterator[Finding]:
        guards = self._class_guards(cls, comments)
        if not guards:
            return
        for node in ast.walk(cls):
            field_name = _self_attr(node)
            if field_name is None or field_name not in guards:
                continue
            lock_attr = guards[field_name]
            func = enclosing_function(ctx, node)
            if func is None:
                continue  # class-level default, not instance state
            if func.name in ("__init__", "__post_init__"):
                continue  # construction happens-before sharing
            if _holds_lock_attr(func) == lock_attr:
                continue
            if _with_holds(ctx, node, f"self.{lock_attr}"):
                continue
            verb = (
                "written"
                if isinstance(getattr(node, "ctx", None), (ast.Store, ast.Del))
                else "read"
            )
            yield ctx.finding(
                self.id,
                node,
                f"{cls.name}.{field_name} is guarded by "
                f"{lock_attr!r} but {verb} in {qualname(ctx, func)} "
                f"without 'with self.{lock_attr}:'",
            )

    # ---------------------------------------------------------- globals

    def _module_guards(
        self, ctx: FileContext, comments: Dict[int, str]
    ) -> Dict[str, str]:
        """``global name -> lock name`` from module-level declarations."""
        guards: Dict[str, str] = {}
        for node in ctx.tree.body:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            lock = comments.get(node.lineno)
            if lock is None:
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    guards[target.id] = lock
        return guards

    def _check_module_globals(
        self, ctx: FileContext, comments: Dict[int, str]
    ) -> Iterator[Finding]:
        guards = self._module_guards(ctx, comments)
        if not guards:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Name) or node.id not in guards:
                continue
            func = enclosing_function(ctx, node)
            if func is None:
                continue  # module-level init happens-before threads
            lock_name = guards[node.id]
            if _with_holds(ctx, node, lock_name):
                continue
            verb = (
                "written"
                if isinstance(node.ctx, (ast.Store, ast.Del))
                else "read"
            )
            yield ctx.finding(
                self.id,
                node,
                f"module global {node.id!r} is guarded by {lock_name!r} "
                f"but {verb} in {qualname(ctx, func)} without "
                f"'with {lock_name}:'",
            )


# ---------------------------------------------------------------------------
# RPR014 -- lock-order inversion cycles
# ---------------------------------------------------------------------------


def _looks_like_lock(name: str) -> bool:
    return "lock" in name.lower()


class _FunctionLocks:
    """One function's acquisition events and outgoing calls."""

    def __init__(self, key: str, ctx: FileContext, node: ast.AST):
        self.key = key
        self.ctx = ctx
        self.node = node
        #: (held ranks at that point, acquired rank, with node)
        self.acquires: List[Tuple[Tuple[str, ...], str, ast.AST]] = []
        #: (held ranks at the call site, callee key candidates)
        self.calls: List[Tuple[Tuple[str, ...], str]] = []


class LockOrderInversion(ProjectRule):
    """RPR014: cycles in the package-wide lock-acquisition graph."""

    id = "RPR014"
    title = "potential lock-order inversion (cycle in acquisition graph)"
    rationale = (
        "if one path acquires A then B and another B then A, two threads "
        "can deadlock; the cycle is visible statically long before the "
        "interleaving that hangs the service"
    )
    scopes = None

    def check_project(
        self, ctxs: Sequence[FileContext]
    ) -> Iterator[Finding]:
        functions: Dict[str, _FunctionLocks] = {}
        for ctx in ctxs:
            self._scan_file(ctx, functions)
        closure = self._transitive_acquisitions(functions)
        edges: Dict[Tuple[str, str], Tuple[FileContext, ast.AST]] = {}
        for info in functions.values():
            for held, acquired, node in info.acquires:
                for rank in held:
                    edges.setdefault((rank, acquired), (info.ctx, node))
            for held, callee in info.calls:
                target = functions.get(callee)
                if target is None or not held:
                    continue
                for rank in held:
                    for acquired in closure.get(callee, set()):
                        edges.setdefault(
                            (rank, acquired), (info.ctx, target.node)
                        )
        yield from self._report_cycles(edges)

    # ------------------------------------------------------------- scan

    def _module_key(self, ctx: FileContext) -> str:
        return ctx.rel.rsplit("/", 1)[-1].rsplit(".", 1)[0]

    def _lock_rank(
        self,
        ctx: FileContext,
        expr: ast.expr,
        cls: Optional[ast.ClassDef],
    ) -> Optional[str]:
        """Canonical rank for a ``with`` context expression, or None.

        ``self.X`` inside class C -> ``C.X``; a method parameter's
        ``.X`` where class C also has an ``X``-named lock -> ``C.X``
        (the ``merge(self, other)`` idiom); a bare module-level name ->
        ``module:NAME``.  Only names containing "lock" count.
        """
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            if not _looks_like_lock(attr):
                return None
            if isinstance(expr.value, ast.Name) and cls is not None:
                return f"{cls.name}.{attr}"
            return None
        if isinstance(expr, ast.Name) and _looks_like_lock(expr.id):
            return f"{self._module_key(ctx)}:{expr.id}"
        return None

    def _scan_file(
        self, ctx: FileContext, functions: Dict[str, _FunctionLocks]
    ) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cls = next(
                (
                    a
                    for a in ctx.ancestors(node)
                    if isinstance(a, ast.ClassDef)
                ),
                None,
            )
            key = f"{self._module_key(ctx)}:{qualname(ctx, node)}"
            info = _FunctionLocks(key, ctx, node)
            for child in ast.iter_child_nodes(node):
                self._visit(ctx, child, cls, info, held=())
            functions[info.key] = info

    def _visit(
        self,
        ctx: FileContext,
        node: ast.AST,
        cls: Optional[ast.ClassDef],
        info: _FunctionLocks,
        held: Tuple[str, ...],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs run later, with their own stack
        if isinstance(node, ast.With):
            inner = held
            for item in node.items:
                self._visit(ctx, item.context_expr, cls, info, inner)
                rank = self._lock_rank(ctx, item.context_expr, cls)
                if rank is not None:
                    info.acquires.append((inner, rank, node))
                    inner = inner + (rank,)
            for stmt in node.body:
                self._visit(ctx, stmt, cls, info, inner)
            return
        if isinstance(node, ast.Call):
            self._note_call(ctx, node, cls, info, held)
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, cls, info, held)

    def _note_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        cls: Optional[ast.ClassDef],
        info: _FunctionLocks,
        held: Tuple[str, ...],
    ) -> None:
        module = self._module_key(ctx)
        attr = _self_attr(node.func)
        if attr is not None and cls is not None:
            info.calls.append((held, f"{module}:{cls.name}.{attr}"))
        elif isinstance(node.func, ast.Name):
            info.calls.append((held, f"{module}:{node.func.id}"))

    # -------------------------------------------------------- propagate

    def _transitive_acquisitions(
        self, functions: Dict[str, _FunctionLocks]
    ) -> Dict[str, Set[str]]:
        closure: Dict[str, Set[str]] = {
            key: {rank for _, rank, _ in info.acquires}
            for key, info in functions.items()
        }
        changed = True
        while changed:
            changed = False
            for key, info in functions.items():
                mine = closure[key]
                before = len(mine)
                for _, callee in info.calls:
                    callee_set = closure.get(callee)
                    if callee_set:
                        mine |= callee_set
                if len(mine) != before:
                    changed = True
        return closure

    # ----------------------------------------------------------- cycles

    def _report_cycles(
        self,
        edges: Dict[Tuple[str, str], Tuple[FileContext, ast.AST]],
    ) -> Iterator[Finding]:
        graph: Dict[str, Set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        reported: Set[Tuple[str, ...]] = set()
        for a, b in sorted(edges):
            if a == b:
                ctx, node = edges[(a, b)]
                yield ctx.finding(
                    self.id,
                    node,
                    f"lock {a!r} acquired while already held "
                    f"(same-rank nesting deadlocks across instances)",
                )
                continue
            path = self._find_path(graph, b, a)
            if path is None:
                continue
            cycle = tuple(sorted({a, *path}))
            if cycle in reported:
                continue
            reported.add(cycle)
            ctx, node = edges[(a, b)]
            chain = " -> ".join([a, *path])
            yield ctx.finding(
                self.id,
                node,
                f"lock-order inversion cycle: {chain} (edge "
                f"{a!r} -> {b!r} here closes the cycle)",
            )

    @staticmethod
    def _find_path(
        graph: Dict[str, Set[str]], start: str, goal: str
    ) -> Optional[List[str]]:
        """Shortest rank path start -> ... -> goal, or None."""
        frontier: List[List[str]] = [[start]]
        seen = {start}
        while frontier:
            nxt: List[List[str]] = []
            for path in frontier:
                for succ in sorted(graph.get(path[-1], ())):
                    if succ == goal:
                        return path + [succ]
                    if succ not in seen:
                        seen.add(succ)
                        nxt.append(path + [succ])
            frontier = nxt
        return None


# ---------------------------------------------------------------------------
# RPR015 -- resource lifetime
# ---------------------------------------------------------------------------


class ResourceLifetime(Rule):
    """RPR015: acquired OS resources not released on all paths."""

    id = "RPR015"
    title = "resource not closed on all paths"
    rationale = (
        "an open()/SharedMemory()/socket() whose close lives outside a "
        "'with' or 'finally' leaks the handle on the exception path -- "
        "under real traffic that is fd exhaustion or a leaked segment"
    )
    scopes = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, node)

    def _acquires(self, call: ast.Call) -> Optional[str]:
        """The resource kind a call acquires, or None."""
        name = dotted_name(call.func)
        if name in _ACQUIRING_BARE or name in _ACQUIRING_DOTTED:
            return name
        if isinstance(call.func, ast.Attribute):
            if call.func.attr in _ACQUIRING_ATTRS:
                tail = call.func.attr
                return f"*.{tail}"
        return None

    def _check_function(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if enclosing_function(ctx, node) is not func:
                continue  # belongs to a nested def
            kind = self._acquires(node)
            if kind is None:
                continue
            parent = ctx.parent(node)
            if self._transferred(ctx, node, parent):
                continue
            if isinstance(parent, ast.Assign):
                yield from self._check_assigned(
                    ctx, func, node, parent, kind
                )
                continue
            yield ctx.finding(
                self.id,
                node,
                f"{kind}(...) result in {qualname(ctx, func)} is never "
                f"closed (not a 'with' target, not handed off)",
            )

    @staticmethod
    def _transferred(
        ctx: FileContext, call: ast.Call, parent: Optional[ast.AST]
    ) -> bool:
        """Whether the fresh resource immediately leaves our hands."""
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(parent, ast.Call) and parent is not call:
            return True  # argument: ownership transferred to the callee
        if isinstance(parent, ast.Attribute):
            return True  # immediately chained (e.g. Path(...).open handled)
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True  # stored on an object: object's lifetime
        return False

    def _check_assigned(
        self,
        ctx: FileContext,
        func: ast.AST,
        call: ast.Call,
        assign: ast.Assign,
        kind: str,
    ) -> Iterator[Finding]:
        target = assign.targets[0]
        if not isinstance(target, ast.Name):
            return
        name = target.id
        closed_in_finally = False
        closed_elsewhere = False
        for node in ast.walk(func):
            if node is call:
                continue
            if self._is_closer(node, name):
                if self._in_finally(ctx, node, func):
                    closed_in_finally = True
                else:
                    closed_elsewhere = True
            elif self._escapes(node, name, assign):
                return  # handed off / with-managed: not ours to close
        if closed_in_finally:
            return
        if closed_elsewhere:
            yield ctx.finding(
                self.id,
                call,
                f"{kind}(...) bound to {name!r} in {qualname(ctx, func)} "
                f"is closed only on the success path (use 'with' or "
                f"'try/finally')",
            )
        else:
            yield ctx.finding(
                self.id,
                call,
                f"{kind}(...) bound to {name!r} in {qualname(ctx, func)} "
                f"is never closed",
            )

    @staticmethod
    def _is_closer(node: ast.AST, name: str) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CLOSER_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        )

    @staticmethod
    def _in_finally(
        ctx: FileContext, node: ast.AST, func: ast.AST
    ) -> bool:
        child = node
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.Try) and any(
                child is stmt or _contains(stmt, child)
                for stmt in ancestor.finalbody
            ):
                return True
            if ancestor is func:
                return False
            child = ancestor
        return False

    @staticmethod
    def _escapes(node: ast.AST, name: str, assign: ast.Assign) -> bool:
        """Whether the named resource is handed off after acquisition."""
        if isinstance(node, ast.withitem):
            expr = node.context_expr
            if isinstance(expr, ast.Name) and expr.id == name:
                return True
        if isinstance(node, (ast.Return, ast.Yield)) and node is not assign:
            value = node.value
            if isinstance(value, ast.Name) and value.id == name:
                return True
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        if isinstance(node, ast.Assign) and node is not assign:
            if isinstance(node.value, ast.Name) and node.value.id == name:
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        return True
        return False


def _contains(tree: ast.AST, needle: ast.AST) -> bool:
    return any(node is needle for node in ast.walk(tree))


#: The opt-in concurrency rule classes, CLI/report order.
CONCURRENCY_RULES: Tuple[type, ...] = (
    GuardedFieldDiscipline,
    LockOrderInversion,
    ResourceLifetime,
)


def concurrency_rules() -> List[Rule]:
    """Fresh instances of the concurrency rule set."""
    return [cls() for cls in CONCURRENCY_RULES]
