"""Tests for repro.ble.link_layer: connections and event scheduling."""

from __future__ import annotations

import pytest

from repro.ble.channels import ChannelMap
from repro.ble.link_layer import Connection, establish_connection
from repro.ble.localization import find_tone_segments
from repro.errors import ConfigurationError


class TestConnection:
    def test_events_follow_hop_sequence(self):
        conn = Connection(hop_increment=7, start_channel=0)
        channels = [conn.next_event().data_channel for _ in range(4)]
        assert channels == [0, 7, 14, 21]

    def test_event_timing(self):
        conn = Connection(connection_interval_s=0.01)
        first = conn.next_event()
        second = conn.next_event()
        assert first.start_time_s == pytest.approx(0.0)
        assert second.start_time_s == pytest.approx(0.01)

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            Connection(connection_interval_s=0)

    def test_sweep_covers_all_channels(self):
        conn = Connection(hop_increment=11)
        events = conn.localization_sweep()
        assert sorted(e.data_channel for e in events) == list(range(37))

    def test_sweep_with_reduced_map_stays_in_map(self):
        cm = ChannelMap((0, 5, 10, 15, 20))
        conn = Connection(hop_increment=7, channel_map=cm)
        for event in conn.localization_sweep():
            assert cm.contains(event.data_channel)

    def test_both_packets_on_same_channel(self):
        conn = Connection()
        event = conn.next_event()
        assert (
            event.master_packet.channel_index
            == event.slave_packet.channel_index
            == event.data_channel
        )

    def test_packets_contain_tone_runs(self):
        conn = Connection(run_length=8, num_pairs=4)
        event = conn.next_event()
        on_air_pdu = event.master_packet.bits[40:]
        # De-whitening the PDU region is unnecessary: the payload was
        # pre-compensated, so the *transmitted* bits carry the runs.
        segments = find_tone_segments(
            event.master_packet.bits, min_run=4, settle_bits=2
        )
        assert len(segments) >= 4

    def test_sequence_numbers_alternate(self):
        conn = Connection()
        first = conn.next_event()
        second = conn.next_event()
        assert first.master_packet.pdu.sn == 0
        assert second.master_packet.pdu.sn == 1


class TestEstablishConnection:
    def test_deterministic_given_seed(self):
        a = establish_connection(rng=9)
        b = establish_connection(rng=9)
        assert a.access_address == b.access_address
        assert a.hop_increment == b.hop_increment

    def test_hop_increment_in_spec_range(self):
        for seed in range(10):
            conn = establish_connection(rng=seed)
            assert 5 <= conn.hop_increment <= 16

    def test_custom_channel_map_respected(self):
        cm = ChannelMap((1, 2, 3))
        conn = establish_connection(rng=0, channel_map=cm)
        assert conn.channel_map is cm

    def test_kwargs_forwarded(self):
        conn = establish_connection(rng=0, run_length=10)
        assert conn.run_length == 10


class TestReceive:
    def test_roundtrip_own_packet(self):
        conn = Connection(access_address=0x5A3B9C71)
        event = conn.next_event()
        packet = conn.receive(event.master_packet.bits, event.data_channel)
        assert packet.pdu.payload == event.master_packet.pdu.payload

    def test_corrupted_bits_raise_crc_error(self):
        from repro.errors import CrcError

        conn = Connection(access_address=0x5A3B9C71)
        event = conn.next_event()
        bits = event.master_packet.bits.copy()
        bits[60] ^= 1  # flip one payload bit
        with pytest.raises(CrcError):
            conn.receive(bits, event.data_channel)

    def test_crc_failures_counted(self):
        from repro.errors import CrcError
        from repro.obs import observed

        conn = Connection(access_address=0x5A3B9C71)
        event = conn.next_event()
        bad = event.master_packet.bits.copy()
        bad[60] ^= 1
        with observed() as obs:
            conn.receive(event.master_packet.bits, event.data_channel)
            with pytest.raises(CrcError):
                conn.receive(bad, event.data_channel)
        assert obs.metrics.get("ble.packets_received").value == 2
        assert obs.metrics.get("ble.crc_failures").value == 1
