"""Tests for repro.ble.pdu: framing, whitening integration, CRC checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ble.pdu import (
    DataPdu,
    Llid,
    assemble_packet,
    bits_to_bytes,
    bytes_to_bits,
    disassemble_packet,
    preamble_bits,
)
from repro.errors import CrcError, ProtocolError

payloads = st.binary(max_size=60)
channels = st.integers(min_value=0, max_value=36)

AA = 0x5A3B9C71


class TestBitBytes:
    def test_lsb_first_per_octet(self):
        bits = bytes_to_bits(b"\x01\x80")
        assert bits[0] == 1
        assert bits[15] == 1
        assert bits[1:8].sum() == 0

    @given(payloads)
    @settings(max_examples=50)
    def test_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_rejects_partial_octet(self):
        with pytest.raises(ProtocolError):
            bits_to_bytes([1, 0, 1])

    def test_empty(self):
        assert bytes_to_bits(b"").size == 0


class TestDataPdu:
    def test_header_encodes_flags_and_length(self):
        pdu = DataPdu(payload=b"abc", llid=Llid.START, nesn=1, sn=0, md=1)
        header = pdu.header_bytes()
        assert header[1] == 3
        assert header[0] & 0b11 == Llid.START
        assert (header[0] >> 2) & 1 == 1  # nesn
        assert (header[0] >> 4) & 1 == 1  # md

    def test_rejects_reserved_llid(self):
        with pytest.raises(ProtocolError):
            DataPdu(llid=0)

    def test_rejects_bad_flag(self):
        with pytest.raises(ProtocolError):
            DataPdu(sn=2)

    def test_rejects_oversized_payload(self):
        with pytest.raises(ProtocolError):
            DataPdu(payload=bytes(252))

    @given(payloads)
    @settings(max_examples=50)
    def test_bits_roundtrip(self, payload):
        pdu = DataPdu(payload=payload, llid=Llid.CONTINUATION, sn=1)
        recovered = DataPdu.from_bits(pdu.to_bits())
        assert recovered.payload == payload
        assert recovered.sn == 1
        assert recovered.llid == Llid.CONTINUATION

    def test_from_bits_rejects_truncated(self):
        pdu = DataPdu(payload=b"hello")
        bits = pdu.to_bits()[:-8]
        with pytest.raises(ProtocolError):
            DataPdu.from_bits(bits)

    def test_from_bits_rejects_short_header(self):
        with pytest.raises(ProtocolError):
            DataPdu.from_bits([0] * 8)


class TestPreamble:
    def test_alternating(self):
        for aa in (AA, AA ^ 1):
            pre = preamble_bits(aa)
            assert pre.size == 8
            assert all(pre[i] != pre[i + 1] for i in range(7))


class TestPacketAssembly:
    @given(payloads, channels)
    @settings(max_examples=40)
    def test_assemble_disassemble_roundtrip(self, payload, channel):
        pdu = DataPdu(payload=payload)
        packet = assemble_packet(pdu, access_address=AA, channel_index=channel)
        back = disassemble_packet(packet.bits, channel_index=channel)
        assert back.pdu.payload == payload
        assert back.access_address == AA

    def test_bit_budget(self):
        pdu = DataPdu(payload=b"xyz")
        packet = assemble_packet(pdu, access_address=AA, channel_index=0)
        expected = 8 + 32 + (16 + 24) + 24
        assert packet.num_bits == expected

    def test_wrong_channel_dewhitening_fails_crc(self):
        pdu = DataPdu(payload=b"payload")
        packet = assemble_packet(pdu, access_address=AA, channel_index=3)
        with pytest.raises(CrcError):
            disassemble_packet(packet.bits, channel_index=4)

    def test_whitening_disabled_roundtrip(self):
        pdu = DataPdu(payload=b"raw")
        packet = assemble_packet(
            pdu, access_address=AA, channel_index=3, whitening_enabled=False
        )
        back = disassemble_packet(
            packet.bits, channel_index=3, whitening_enabled=False
        )
        assert back.pdu.payload == b"raw"

    def test_corruption_detected(self):
        pdu = DataPdu(payload=b"data!")
        packet = assemble_packet(pdu, access_address=AA, channel_index=0)
        bits = packet.bits.copy()
        bits[60] ^= 1  # inside the whitened PDU region
        with pytest.raises(CrcError):
            disassemble_packet(bits, channel_index=0)

    def test_too_short_stream(self):
        with pytest.raises(ProtocolError):
            disassemble_packet(np.zeros(40, dtype=np.uint8), channel_index=0)

    def test_payload_bit_offset(self):
        pdu = DataPdu(payload=b"q")
        packet = assemble_packet(pdu, access_address=AA, channel_index=0)
        assert packet.payload_bit_offset() == 56
