"""Tests for repro.ble.access_address generation and validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ble.access_address import (
    address_to_bits,
    bits_to_address,
    is_valid_access_address,
    random_access_address,
)
from repro.constants import BLE_ADVERTISING_ACCESS_ADDRESS
from repro.errors import ProtocolError

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestBitConversion:
    def test_lsb_first(self):
        bits = address_to_bits(0x00000001)
        assert bits[0] == 1
        assert bits[1:].sum() == 0

    @given(addresses)
    @settings(max_examples=60)
    def test_roundtrip(self, address):
        assert bits_to_address(address_to_bits(address)) == address

    def test_rejects_wide_value(self):
        with pytest.raises(ProtocolError):
            address_to_bits(1 << 32)

    def test_rejects_wrong_bit_count(self):
        with pytest.raises(ProtocolError):
            bits_to_address([0] * 31)


class TestValidity:
    def test_advertising_address_invalid_for_data(self):
        assert not is_valid_access_address(BLE_ADVERTISING_ACCESS_ADDRESS)

    def test_one_bit_from_advertising_invalid(self):
        assert not is_valid_access_address(
            BLE_ADVERTISING_ACCESS_ADDRESS ^ 0x00010000
        )

    def test_all_equal_octets_invalid(self):
        assert not is_valid_access_address(0xAAAAAAAA)

    def test_long_run_invalid(self):
        assert not is_valid_access_address(0x0000007F)  # seven 1s + zeros

    def test_known_good_address(self):
        # 0x8E89BED6 with several bits changed; verified manually against
        # the rules (<=6-run, <=24 transitions, 2+ transitions in top 6).
        assert is_valid_access_address(0x5A3B9C71)


class TestGeneration:
    def test_random_addresses_are_valid(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            assert is_valid_access_address(random_access_address(rng))

    def test_deterministic_given_seed(self):
        assert random_access_address(3) == random_access_address(3)

    def test_distinct_across_seeds(self):
        assert random_access_address(1) != random_access_address(2)
