"""Tests for repro.ble.crc: the 24-bit link-layer CRC."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ble.crc import append_crc, check_crc, crc24, crc24_bits
from repro.errors import CrcError, ProtocolError

bit_lists = st.lists(
    st.integers(min_value=0, max_value=1), min_size=1, max_size=200
)


class TestCrc24:
    def test_deterministic(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert crc24(bits) == crc24(bits)

    def test_fits_24_bits(self):
        assert 0 <= crc24([1, 0, 1]) < (1 << 24)

    def test_init_value_matters(self):
        bits = [1, 0, 1, 1]
        assert crc24(bits, 0x555555) != crc24(bits, 0x123456)

    def test_invalid_init(self):
        with pytest.raises(ProtocolError):
            crc24([1], crc_init=1 << 24)

    def test_crc_bits_msb_first(self):
        value = crc24([1, 0, 1])
        bits = crc24_bits([1, 0, 1])
        assert bits[0] == (value >> 23) & 1
        assert bits[-1] == value & 1

    def test_empty_pdu_crc_is_init_permutation(self):
        # CRC of an empty message is just the untouched register.
        assert crc24([], crc_init=0x555555) == 0x555555


class TestRoundtrip:
    @given(bit_lists)
    @settings(max_examples=60)
    def test_append_then_check(self, bits):
        framed = append_crc(bits)
        recovered = check_crc(framed)
        assert np.array_equal(recovered, np.asarray(bits, dtype=np.uint8))

    @given(bit_lists, st.integers(min_value=0))
    @settings(max_examples=60)
    def test_single_bit_error_detected(self, bits, flip_seed):
        """A CRC with (x+1) | poly-like structure catches any 1-bit error;
        CRC-24 certainly does."""
        framed = append_crc(bits)
        position = flip_seed % framed.size
        corrupted = framed.copy()
        corrupted[position] ^= 1
        with pytest.raises(CrcError):
            check_crc(corrupted)

    def test_burst_error_detected(self):
        framed = append_crc([1, 0, 1, 1, 0, 1, 0, 0] * 4)
        corrupted = framed.copy()
        corrupted[5:15] ^= 1
        with pytest.raises(CrcError):
            check_crc(corrupted)

    def test_too_short_stream(self):
        with pytest.raises(ProtocolError):
            check_crc([1] * 20)

    def test_crc_error_reports_values(self):
        framed = append_crc([1, 1, 0, 0])
        corrupted = framed.copy()
        corrupted[0] ^= 1
        with pytest.raises(CrcError) as excinfo:
            check_crc(corrupted)
        assert excinfo.value.expected != excinfo.value.actual


class TestLinearity:
    @given(bit_lists)
    @settings(max_examples=30)
    def test_crc_of_xor_relates_to_xor_of_crcs(self, bits):
        """CRC is affine: crc(a ^ b) ^ crc(0) == crc(a) ^ crc(b) for
        equal-length messages (all with the same init)."""
        a = np.asarray(bits, dtype=np.uint8)
        b = np.roll(a, 1)
        zero = np.zeros_like(a)
        lhs = crc24(a ^ b) ^ crc24(zero)
        rhs = crc24(a) ^ crc24(b)
        assert lhs == rhs
