"""Tests for repro.ble.localization: tone-run packet design."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ble.localization import (
    ToneSegment,
    design_payload,
    find_tone_segments,
    localization_pdu,
    segments_per_tone,
    tone_pattern,
)
from repro.ble.pdu import DataPdu
from repro.ble.whitening import longest_run, whiten
from repro.errors import ConfigurationError

channels = st.integers(min_value=0, max_value=39)
run_lengths = st.integers(min_value=4, max_value=16)


class TestTonePattern:
    def test_structure(self):
        pattern = tone_pattern(run_length=3, num_pairs=2)
        assert np.array_equal(pattern, [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1])

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            tone_pattern(1, 1)
        with pytest.raises(ConfigurationError):
            tone_pattern(4, 0)


class TestDesignPayload:
    @given(channels, run_lengths)
    @settings(max_examples=40)
    def test_whitened_image_contains_runs(self, channel, run_length):
        """The key property: after standard whitening, the on-air payload
        bits are exactly the tone pattern."""
        payload = design_payload(channel, run_length=run_length, num_pairs=4)
        pdu_bits = DataPdu(payload=payload).to_bits()
        on_air = whiten(pdu_bits, channel)
        payload_air = on_air[16:16 + 8 * run_length]
        expected = tone_pattern(run_length, 4)[: payload_air.size]
        assert np.array_equal(payload_air, expected)

    def test_payload_is_whole_octets(self):
        payload = design_payload(0, run_length=5, num_pairs=3)
        assert len(payload) * 8 >= 30

    def test_localization_pdu_wraps_payload(self):
        pdu = localization_pdu(7, run_length=8, num_pairs=2)
        assert len(pdu.payload) == 4  # 32 bits


class TestFindToneSegments:
    def test_finds_both_tones(self):
        bits = tone_pattern(run_length=8, num_pairs=2)
        segments = find_tone_segments(bits, min_run=4, settle_bits=2)
        zeros, ones = segments_per_tone(segments)
        assert len(zeros) == 2
        assert len(ones) == 2

    def test_settling_trim(self):
        bits = np.concatenate(
            [np.zeros(8, np.uint8), np.ones(8, np.uint8)]
        )
        segments = find_tone_segments(bits, min_run=4, settle_bits=2)
        first = segments[0]
        assert first.start_bit == 2
        # 8-long run minus 2 settle bits minus 1 pre-transition bit.
        assert first.num_bits == 5
        last = segments[-1]
        # Final run keeps its last bit (no following transition).
        assert last.num_bits == 6

    def test_short_runs_skipped(self):
        bits = [0, 1, 0, 1, 1, 0, 0, 1]
        assert find_tone_segments(bits, min_run=4, settle_bits=2) == []

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            find_tone_segments([0, 1], min_run=3, settle_bits=2)

    def test_empty(self):
        assert find_tone_segments([]) == []

    def test_sample_slice(self):
        segment = ToneSegment(bit_value=1, start_bit=4, num_bits=3)
        sl = segment.sample_slice(samples_per_symbol=8)
        assert sl == slice(32, 56)

    @given(run_lengths)
    @settings(max_examples=20)
    def test_segments_cover_only_stable_bits(self, run_length):
        bits = tone_pattern(run_length, 3)
        segments = find_tone_segments(bits, min_run=4, settle_bits=2)
        for segment in segments:
            covered = bits[segment.start_bit:segment.start_bit + segment.num_bits]
            assert np.all(covered == segment.bit_value)
