"""Tests for repro.ble.throughput: the Section 6 overhead accounting."""

from __future__ import annotations

import pytest

from repro.ble.throughput import (
    localization_packet_duration_s,
    throughput_with_localization,
    tone_dwell_matches_paper,
)
from repro.errors import ConfigurationError


class TestPacketDuration:
    def test_duration_scales_with_pattern(self):
        short = localization_packet_duration_s(run_length=4, num_pairs=2)
        long = localization_packet_duration_s(run_length=8, num_pairs=8)
        assert long > short

    def test_default_under_quarter_millisecond(self):
        assert localization_packet_duration_s() < 250e-6

    def test_invalid_pattern(self):
        with pytest.raises(ConfigurationError):
            localization_packet_duration_s(run_length=1)

    def test_paper_tone_dwell(self):
        """Section 6: 8 us per tone at 1 Mbps = 8-bit runs."""
        assert tone_dwell_matches_paper(run_length=8)
        assert not tone_dwell_matches_paper(run_length=5)


class TestThroughput:
    def test_one_sweep_per_second_is_cheap(self):
        """The paper's claim: localization 'should not effect the
        throughput of the usual BLE communication'."""
        report = throughput_with_localization(sweeps_per_second=1.0)
        assert report.localization_airtime_fraction < 0.35
        assert report.data_throughput_bps > 100_000

    def test_zero_sweeps_means_zero_overhead(self):
        report = throughput_with_localization(sweeps_per_second=0.0)
        assert report.localization_airtime_fraction == 0.0

    def test_more_sweeps_more_overhead(self):
        low = throughput_with_localization(sweeps_per_second=0.5)
        high = throughput_with_localization(sweeps_per_second=2.0)
        assert (
            high.localization_airtime_fraction
            > low.localization_airtime_fraction
        )
        assert high.data_throughput_bps < low.data_throughput_bps

    def test_sweep_rate_bounded_by_interval(self):
        with pytest.raises(ConfigurationError):
            throughput_with_localization(
                connection_interval_s=7.5e-3, sweeps_per_second=4.0
            )

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            throughput_with_localization(connection_interval_s=0)
