"""Tests for repro.ble.whitening: the channel-seeded LFSR scrambler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ble.whitening import (
    WHITENING_PERIOD,
    dewhiten,
    longest_run,
    runs,
    whiten,
    whitening_initial_state,
    whitening_sequence,
)
from repro.errors import ProtocolError

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=300)
channels = st.integers(min_value=0, max_value=39)


class TestSequence:
    def test_initial_state_structure(self):
        state = whitening_initial_state(0b100101)  # channel 37
        assert state[0] == 1
        assert state[1:] == (1, 0, 0, 1, 0, 1)

    def test_invalid_channel(self):
        with pytest.raises(ProtocolError):
            whitening_initial_state(40)

    def test_negative_bits(self):
        with pytest.raises(ProtocolError):
            whitening_sequence(0, -1)

    def test_period_127(self):
        seq = whitening_sequence(17, 3 * WHITENING_PERIOD)
        assert np.array_equal(seq[:WHITENING_PERIOD], seq[WHITENING_PERIOD:2 * WHITENING_PERIOD])
        assert np.array_equal(
            seq[:WHITENING_PERIOD], seq[2 * WHITENING_PERIOD:]
        )

    def test_full_period_before_repeat(self):
        """x^7+x^4+1 is primitive: no shorter period divides 127 but 1."""
        seq = whitening_sequence(5, 2 * WHITENING_PERIOD)
        for period in (7, 31, 63):
            assert not np.array_equal(
                seq[:period], seq[period:2 * period]
            ), f"unexpected period {period}"

    def test_channels_differ(self):
        a = whitening_sequence(0, 64)
        b = whitening_sequence(1, 64)
        assert not np.array_equal(a, b)

    def test_balanced_ones(self):
        # A maximal-length LFSR emits 64 ones and 63 zeros per period.
        seq = whitening_sequence(11, WHITENING_PERIOD)
        assert int(seq.sum()) == 64


class TestWhiten:
    @given(bit_lists, channels)
    @settings(max_examples=60)
    def test_involution(self, bits, channel):
        arr = np.asarray(bits, dtype=np.uint8)
        assert np.array_equal(dewhiten(whiten(arr, channel), channel), arr)

    def test_whitening_breaks_runs(self):
        constant = np.zeros(64, dtype=np.uint8)
        whitened = whiten(constant, 3)
        assert longest_run(whitened) < 10

    def test_whiten_empty(self):
        assert whiten(np.array([], dtype=np.uint8), 0).size == 0


class TestRunHelpers:
    def test_longest_run_basic(self):
        assert longest_run([0, 0, 0, 1, 1, 0]) == 3

    def test_longest_run_single_value(self):
        assert longest_run([1] * 7) == 7

    def test_longest_run_empty(self):
        assert longest_run([]) == 0

    def test_runs_rle(self):
        assert runs([0, 0, 1, 1, 1, 0]) == [(0, 2), (1, 3), (0, 1)]

    def test_runs_empty(self):
        assert runs([]) == []

    @given(bit_lists)
    @settings(max_examples=40)
    def test_runs_reconstruct(self, bits):
        arr = np.asarray(bits, dtype=np.uint8)
        rebuilt = np.concatenate(
            [np.full(n, v, dtype=np.uint8) for v, n in runs(arr)]
        ) if arr.size else np.array([], dtype=np.uint8)
        assert np.array_equal(rebuilt, arr)
