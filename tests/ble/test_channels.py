"""Tests for repro.ble.channels: the BLE channel map."""

from __future__ import annotations

import pytest

from repro.ble.channels import (
    ChannelMap,
    all_data_channel_frequencies,
    channel_index_to_frequency,
    data_channel_to_frequency,
    frequency_to_data_channel,
    is_advertising_channel,
)
from repro.errors import ProtocolError


class TestFrequencies:
    def test_first_data_channel(self):
        assert data_channel_to_frequency(0) == pytest.approx(2404e6)

    def test_last_data_channel(self):
        assert data_channel_to_frequency(36) == pytest.approx(2478e6)

    def test_gap_around_channel_38(self):
        # Data channels 10 and 11 straddle advertising channel 38.
        assert data_channel_to_frequency(10) == pytest.approx(2424e6)
        assert data_channel_to_frequency(11) == pytest.approx(2428e6)

    def test_advertising_channels(self):
        assert channel_index_to_frequency(37) == pytest.approx(2402e6)
        assert channel_index_to_frequency(38) == pytest.approx(2426e6)
        assert channel_index_to_frequency(39) == pytest.approx(2480e6)

    @pytest.mark.parametrize("bad", [-1, 37, 40])
    def test_data_channel_out_of_range(self, bad):
        with pytest.raises(ProtocolError):
            data_channel_to_frequency(bad)

    def test_index_out_of_range(self):
        with pytest.raises(ProtocolError):
            channel_index_to_frequency(40)

    def test_all_frequencies_unique_and_spaced(self):
        freqs = all_data_channel_frequencies()
        assert len(freqs) == 37
        assert len(set(freqs)) == 37
        diffs = [b - a for a, b in zip(freqs, freqs[1:])]
        assert all(d >= 2e6 - 1 for d in diffs)

    def test_roundtrip(self):
        for channel in range(37):
            f = data_channel_to_frequency(channel)
            assert frequency_to_data_channel(f) == channel

    def test_frequency_to_channel_rejects_offset(self):
        with pytest.raises(ProtocolError):
            frequency_to_data_channel(2404.5e6)

    def test_is_advertising(self):
        assert is_advertising_channel(37)
        assert not is_advertising_channel(0)

    def test_span_is_80_mhz_with_advertising(self):
        lo = channel_index_to_frequency(37)
        hi = channel_index_to_frequency(39)
        assert hi - lo == pytest.approx(78e6)  # centres span 78, band 80


class TestChannelMap:
    def test_all_channels(self):
        cm = ChannelMap.all_channels()
        assert cm.num_used == 37
        assert cm.contains(0) and cm.contains(36)

    def test_needs_two_channels(self):
        with pytest.raises(ProtocolError):
            ChannelMap((5,))

    def test_rejects_out_of_range(self):
        with pytest.raises(ProtocolError):
            ChannelMap((0, 37))

    def test_deduplicates_and_sorts(self):
        cm = ChannelMap((5, 3, 5, 1))
        assert cm.used == (1, 3, 5)

    def test_remap_identity_for_used(self):
        cm = ChannelMap((0, 1, 2))
        assert cm.remap(1) == 1

    def test_remap_unused_lands_in_map(self):
        cm = ChannelMap((0, 5, 9))
        for unused in (1, 2, 3, 20, 36):
            assert cm.contains(cm.remap(unused))

    def test_remap_matches_spec_formula(self):
        cm = ChannelMap((2, 4, 8))
        assert cm.remap(7) == cm.used[7 % 3]

    def test_subsampled(self):
        cm = ChannelMap.subsampled(4)
        assert cm.used == tuple(range(0, 37, 4))

    def test_subsampled_invalid(self):
        with pytest.raises(ProtocolError):
            ChannelMap.subsampled(0)

    def test_from_blacklist(self):
        cm = ChannelMap.from_blacklist([0, 1, 2])
        assert cm.num_used == 34
        assert not cm.contains(1)

    def test_frequencies_match_channels(self):
        cm = ChannelMap((0, 36))
        assert cm.frequencies() == [
            data_channel_to_frequency(0),
            data_channel_to_frequency(36),
        ]
