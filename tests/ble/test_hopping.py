"""Tests for repro.ble.hopping: CSA#1 and the prime-walk property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ble.channels import ChannelMap
from repro.ble.hopping import (
    HopSequence,
    events_to_cover_channels,
    hop_cycle,
)
from repro.errors import ProtocolError

hop_increments = st.integers(min_value=5, max_value=16)
start_channels = st.integers(min_value=0, max_value=36)


class TestHopSequence:
    def test_advance_formula(self):
        seq = HopSequence(hop_increment=7, start_channel=10)
        assert seq.current() == 10
        assert seq.advance() == 17

    def test_wraps_mod_37(self):
        seq = HopSequence(hop_increment=16, start_channel=30)
        assert seq.advance() == (30 + 16) % 37

    def test_invalid_increment(self):
        with pytest.raises(ProtocolError):
            HopSequence(hop_increment=4)
        with pytest.raises(ProtocolError):
            HopSequence(hop_increment=17)

    def test_invalid_start(self):
        with pytest.raises(ProtocolError):
            HopSequence(start_channel=37)

    def test_reset(self):
        seq = HopSequence(hop_increment=9, start_channel=3)
        seq.advance()
        seq.advance()
        seq.reset()
        assert seq.current() == 3

    def test_events_yields_and_advances(self):
        seq = HopSequence(hop_increment=5, start_channel=0)
        events = list(seq.events(3))
        assert events == [0, 5, 10]
        assert seq.current() == 15

    def test_full_cycle_does_not_disturb_state(self):
        seq = HopSequence(hop_increment=11, start_channel=6)
        before = seq.current()
        seq.full_cycle()
        assert seq.current() == before

    @given(hop_increments, start_channels)
    @settings(max_examples=60)
    def test_prime_walk_visits_every_channel(self, hop, start):
        """The paper's Section 2.1 property: 37 prime => full coverage."""
        cycle = hop_cycle(hop, start)
        assert sorted(cycle) == list(range(37))

    @given(hop_increments, start_channels)
    @settings(max_examples=30)
    def test_cycle_period_is_exactly_37(self, hop, start):
        seq = HopSequence(hop_increment=hop, start_channel=start)
        events = list(seq.events(74))
        assert events[:37] == events[37:]


class TestRemappedHopping:
    def test_remapped_channels_stay_in_map(self):
        cm = ChannelMap((0, 4, 8, 12, 30))
        seq = HopSequence(hop_increment=7, channel_map=cm)
        for channel in seq.events(37):
            assert cm.contains(channel)

    def test_reduced_map_covers_all_used_channels(self):
        cm = ChannelMap(tuple(range(0, 37, 3)))
        seq = HopSequence(hop_increment=7, channel_map=cm)
        visited = set(seq.events(37))
        assert visited == set(cm.used)

    def test_events_to_cover(self):
        assert events_to_cover_channels(ChannelMap.all_channels()) == 37
