"""Tests for repro.ble.gfsk: the GFSK modem."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ble.gfsk import (
    GfskDemodulator,
    GfskModulator,
    frequency_error_rms,
    gaussian_pulse,
    nrz,
)
from repro.constants import BLE_FREQ_DEVIATION_HZ
from repro.errors import ConfigurationError, DemodulationError

bit_arrays = st.lists(
    st.integers(min_value=0, max_value=1), min_size=16, max_size=200
)


class TestGaussianPulse:
    def test_unit_sum(self):
        pulse = gaussian_pulse()
        assert pulse.sum() == pytest.approx(1.0)

    def test_symmetric(self):
        pulse = gaussian_pulse()
        assert np.allclose(pulse, pulse[::-1])

    def test_nonnegative(self):
        assert np.all(gaussian_pulse() >= 0)

    def test_narrower_bt_wider_pulse(self):
        narrow = gaussian_pulse(bt=0.3)
        wide = gaussian_pulse(bt=1.0)
        # Effective width via inverse participation ratio.
        def width(p):
            q = p / p.sum()
            return 1.0 / np.sum(q**2)
        assert width(narrow) > width(wide)

    @pytest.mark.parametrize(
        "kwargs", [{"bt": 0}, {"samples_per_symbol": 1}, {"span_symbols": 0}]
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            gaussian_pulse(**kwargs)


class TestModulator:
    def test_nrz_mapping(self):
        assert np.array_equal(nrz([0, 1, 0]), [-1.0, 1.0, -1.0])

    def test_constant_envelope(self):
        mod = GfskModulator()
        iq = mod.modulate([0, 1, 1, 0, 1, 0, 0, 1] * 4)
        assert np.allclose(np.abs(iq), 1.0)

    def test_sample_count(self):
        mod = GfskModulator(samples_per_symbol=10)
        iq = mod.modulate([1] * 7)
        assert iq.size == 70

    def test_long_run_settles_at_deviation(self):
        mod = GfskModulator()
        freq = mod.instantaneous_frequency([1] * 12)
        middle = freq[4 * mod.samples_per_symbol: 8 * mod.samples_per_symbol]
        assert np.allclose(middle, BLE_FREQ_DEVIATION_HZ, rtol=1e-3)

    def test_random_bits_never_settle_long(self):
        """The Fig. 4a phenomenon: alternating data keeps moving."""
        mod = GfskModulator()
        freq = mod.instantaneous_frequency([0, 1] * 20)
        stable = np.abs(np.abs(freq) - BLE_FREQ_DEVIATION_HZ) < (
            0.02 * BLE_FREQ_DEVIATION_HZ
        )
        assert stable.mean() < 0.2

    def test_filtered_levels_alignment(self):
        mod = GfskModulator()
        levels = mod.filtered_levels([0] * 6 + [1] * 6)
        sps = mod.samples_per_symbol
        # Deep in each run the level is saturated.
        assert levels[3 * sps] == pytest.approx(-1.0, abs=1e-3)
        assert levels[9 * sps] == pytest.approx(1.0, abs=1e-3)

    def test_empty_bits(self):
        mod = GfskModulator()
        assert mod.modulate([]).size == 0

    def test_amplitude_parameter(self):
        mod = GfskModulator()
        iq = mod.modulate([1, 0, 1, 1], amplitude=0.5)
        assert np.allclose(np.abs(iq), 0.5)


class TestDemodulator:
    def test_needs_two_samples(self):
        demod = GfskDemodulator()
        with pytest.raises(DemodulationError):
            demod.discriminate(np.array([1.0 + 0j]))

    def test_invalid_sps(self):
        with pytest.raises(ConfigurationError):
            GfskDemodulator(samples_per_symbol=1)

    def test_discriminator_tracks_tone(self):
        demod = GfskDemodulator(samples_per_symbol=8)
        t = np.arange(256) / demod.sample_rate
        tone = np.exp(2j * np.pi * 250e3 * t)
        freq = demod.discriminate(tone)
        assert np.allclose(freq[1:], 250e3, rtol=1e-6)

    @given(bit_arrays)
    @settings(max_examples=30, deadline=None)
    def test_loopback_exact(self, bits):
        mod = GfskModulator()
        demod = GfskDemodulator()
        iq = mod.modulate(bits)
        recovered = demod.demodulate(iq, len(bits))
        assert np.array_equal(recovered, np.asarray(bits, dtype=np.uint8))

    def test_loopback_with_noise(self, rng):
        from repro.rf.noise import add_awgn

        bits = rng.integers(0, 2, 300)
        mod = GfskModulator()
        demod = GfskDemodulator()
        noisy = add_awgn(mod.modulate(bits), snr_db=15.0, rng=rng)
        recovered = demod.demodulate(noisy, 300)
        ber = np.mean(recovered != bits)
        assert ber < 0.01

    def test_demodulate_too_short(self):
        mod = GfskModulator()
        demod = GfskDemodulator()
        iq = mod.modulate([1, 0, 1])
        with pytest.raises(DemodulationError):
            demod.demodulate(iq, 10)

    def test_frequency_error_rms_clean(self):
        mod = GfskModulator()
        bits = [0, 1, 1, 0, 0, 0, 1, 0, 1, 1] * 4
        iq = mod.modulate(bits)
        assert frequency_error_rms(mod, bits, iq) < 20e3


class TestDemodSnrMetric:
    def test_demod_snr_recorded_when_observed(self):
        from repro.obs import observed

        modulator = GfskModulator()
        demod = GfskDemodulator(samples_per_symbol=modulator.samples_per_symbol)
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0] * 8, dtype=np.uint8)
        iq = modulator.modulate(bits)
        with observed() as obs:
            recovered = demod.demodulate(iq, bits.size)
        assert np.array_equal(recovered, bits)
        snr = obs.metrics.get("ble.demod_snr_db")
        assert snr.count == 1
        assert snr.min > 0  # clean loopback: comfortably positive SNR
        assert obs.metrics.get("ble.demod_symbols").value == bits.size

    def test_demodulate_identical_with_observability(self):
        from repro.obs import observed

        modulator = GfskModulator()
        demod = GfskDemodulator(samples_per_symbol=modulator.samples_per_symbol)
        bits = np.array([0, 1, 1, 0, 1, 0, 0, 1] * 4, dtype=np.uint8)
        iq = modulator.modulate(bits)
        plain = demod.demodulate(iq, bits.size)
        with observed():
            traced = demod.demodulate(iq, bits.size)
        assert np.array_equal(plain, traced)
