"""Tests for repro.rf.materials."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rf.materials import (
    CONCRETE,
    MATERIALS,
    METAL,
    Material,
    material_by_name,
)


class TestMaterial:
    def test_specular_amplitude_scales_with_scatter(self):
        m = Material("m", -0.8, 0.25, 0.3, 0.0)
        assert m.specular_amplitude == pytest.approx(-0.6)
        assert m.scattered_amplitude == pytest.approx(0.2)

    def test_rejects_gain_reflection(self):
        with pytest.raises(ConfigurationError):
            Material("bad", 1.5, 0.0, 0.0, 0.0)

    def test_rejects_bad_scatter_fraction(self):
        with pytest.raises(ConfigurationError):
            Material("bad", 0.5, 1.5, 0.0, 0.0)

    def test_rejects_negative_spread(self):
        with pytest.raises(ConfigurationError):
            Material("bad", 0.5, 0.5, -1.0, 0.0)

    def test_rejects_bad_transmission(self):
        with pytest.raises(ConfigurationError):
            Material("bad", 0.5, 0.5, 0.1, 1.5)


class TestBuiltins:
    def test_metal_is_opaque_strong_reflector(self):
        assert METAL.transmission == 0.0
        assert abs(METAL.reflectivity) > abs(CONCRETE.reflectivity)

    def test_registry_complete(self):
        assert set(MATERIALS) >= {
            "concrete", "drywall", "metal", "glass", "absorber"
        }

    def test_lookup(self):
        assert material_by_name("metal") is METAL

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError, match="available"):
            material_by_name("vibranium")

    def test_all_builtins_passive(self):
        for material in MATERIALS.values():
            # Energy conservation: reflection + transmission <= ~1.
            assert abs(material.reflectivity) <= 1.0
            assert material.transmission <= 1.0
