"""Tests for repro.rf.environment: rooms, reflectors, obstructions."""

from __future__ import annotations

import pytest

from repro.errors import GeometryError
from repro.rf.environment import Environment
from repro.rf.materials import DRYWALL, GLASS, METAL
from repro.utils.geometry2d import Point


@pytest.fixture()
def room():
    return Environment(width=6.0, height=5.0, origin=Point(-3.0, -2.0))


class TestRoom:
    def test_invalid_dimensions(self):
        with pytest.raises(GeometryError):
            Environment(width=0, height=5)

    def test_four_walls(self, room):
        walls = room.walls
        assert len(walls) == 4
        names = {w.name for w in walls}
        assert names == {"wall-south", "wall-east", "wall-north", "wall-west"}

    def test_wall_lengths(self, room):
        lengths = sorted(w.segment.length() for w in room.walls)
        assert lengths == pytest.approx([5.0, 5.0, 6.0, 6.0])

    def test_bounds(self, room):
        assert room.bounds() == (-3.0, 3.0, -2.0, 3.0)

    def test_contains_with_margin(self, room):
        assert room.contains(Point(0, 0))
        assert room.contains(Point(-2.9, 2.9))
        assert not room.contains(Point(-2.9, 2.9), margin=0.2)
        assert not room.contains(Point(4, 0))


class TestReflectors:
    def test_add_reflector(self, room):
        r = room.add_reflector(Point(0, 0), Point(1, 0), METAL, name="r")
        assert r in room.reflectors
        assert r in room.all_faces()

    def test_add_outside_raises(self, room):
        with pytest.raises(GeometryError):
            room.add_reflector(Point(0, 0), Point(10, 0), METAL)

    def test_blocks(self, room):
        metal = room.add_reflector(Point(0, 0), Point(1, 0), METAL)
        glass = room.add_reflector(Point(0, 1), Point(1, 1), GLASS)
        assert metal.blocks()
        assert glass.blocks()  # partially


class TestTransmission:
    def test_clear_path(self, room):
        assert room.transmission_along(Point(-2, -1), Point(2, 2)) == 1.0

    def test_opaque_obstruction(self, room):
        room.add_reflector(Point(0, -1.5), Point(0, 1.5), METAL)
        factor = room.transmission_along(Point(-1, 0), Point(1, 0))
        assert factor == 0.0

    def test_partial_obstruction(self, room):
        room.add_reflector(Point(0, -1.5), Point(0, 1.5), DRYWALL)
        factor = room.transmission_along(Point(-1, 0), Point(1, 0))
        assert factor == pytest.approx(DRYWALL.transmission)

    def test_two_obstructions_multiply(self, room):
        room.add_reflector(Point(-0.5, -1.5), Point(-0.5, 1.5), DRYWALL)
        room.add_reflector(Point(0.5, -1.5), Point(0.5, 1.5), DRYWALL)
        factor = room.transmission_along(Point(-1, 0), Point(1, 0))
        assert factor == pytest.approx(DRYWALL.transmission**2)

    def test_ignore_list(self, room):
        blocker = room.add_reflector(Point(0, -1.5), Point(0, 1.5), METAL)
        factor = room.transmission_along(
            Point(-1, 0), Point(1, 0), ignore=[blocker]
        )
        assert factor == 1.0

    def test_endpoint_on_face_not_a_crossing(self, room):
        blocker = room.add_reflector(Point(0, -1.5), Point(0, 1.5), METAL)
        # Path starting exactly on the face is not attenuated by it.
        factor = room.transmission_along(Point(0, 0), Point(1, 0))
        assert factor == 1.0

    def test_line_of_sight(self, room):
        assert room.line_of_sight(Point(-2, 0), Point(2, 0))
        room.add_reflector(Point(0, -1.5), Point(0, 1.5), METAL)
        assert not room.line_of_sight(Point(-2, 0), Point(2, 0))

    def test_zero_length_path(self, room):
        assert room.transmission_along(Point(0, 0), Point(0, 0)) == 1.0
